//! Enclave metadata and lifecycle (paper Section V-C, Fig. 3).

use crate::error::{SmError, SmResult};
use crate::mailbox::Mailbox;
use crate::measurement::{Measurement, MeasurementContext};
use sanctorum_hal::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use sanctorum_hal::domain::EnclaveId;
use sanctorum_hal::isolation::RegionId;
use std::collections::BTreeSet;

/// Number of mailboxes allocated per enclave.
pub const MAILBOXES_PER_ENCLAVE: usize = 4;

/// Lifecycle states of an enclave (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveLifecycle {
    /// Created; the OS may still load page tables, pages and threads.
    Loading,
    /// Sealed by `init_enclave`; threads may be scheduled, no further
    /// modification through the API is possible.
    Initialized,
}

/// A contiguous physical memory window granted to the enclave (the pages of
/// one granted region, tracked for the bump allocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysWindow {
    /// The platform region backing this window.
    pub region: RegionId,
    /// Base physical address.
    pub base: PhysAddr,
    /// Length in bytes.
    pub len: u64,
}

/// Per-enclave metadata held in SM-owned memory.
///
/// The paper stores this structure at a physical address which doubles as the
/// enclave id; the reproduction keeps that convention by deriving
/// [`EnclaveId`] from the base address of the enclave's first granted region.
#[derive(Debug, Clone)]
pub struct EnclaveMeta {
    /// The enclave's identifier.
    pub id: EnclaveId,
    /// Lifecycle state.
    pub lifecycle: EnclaveLifecycle,
    /// Base of the enclave virtual range.
    pub evrange_base: VirtAddr,
    /// Length of the enclave virtual range in bytes.
    pub evrange_len: u64,
    /// Physical windows granted to the enclave, in ascending base order.
    pub windows: Vec<PhysWindow>,
    /// Root of the enclave-private page table (the first allocated page).
    pub page_table_root: Option<PhysAddr>,
    /// Reserved, still-unused page-table pages (allocated by
    /// `allocate_page_table`, consumed as `load_page` builds mappings).
    pub pt_pool: Vec<PhysAddr>,
    /// Next physical page the bump allocator will hand out.
    pub next_free_page: PhysAddr,
    /// Whether a data page has been loaded yet (page-table pages must all be
    /// allocated before the first data page — paper Section VI-A).
    pub data_loading_started: bool,
    /// Virtual pages already mapped (enforces an injective mapping).
    pub mapped_vpns: BTreeSet<u64>,
    /// In-progress measurement while `Loading`.
    pub measurement_ctx: Option<MeasurementContext>,
    /// Final measurement once `Initialized`.
    pub measurement: Option<Measurement>,
    /// Threads belonging to this enclave.
    pub threads: Vec<u64>,
    /// Mailboxes for local attestation.
    pub mailboxes: Vec<Mailbox>,
    /// Number of threads currently running on cores.
    pub running_threads: usize,
    /// Generation stamp of the last audit-visible mutation, drawn from the
    /// monitor's global enclave counter (values are unique process-wide, so
    /// a recreated enclave can never alias a stale cached audit record).
    /// Maintained by `SecurityMonitor::touch_enclave`; the incremental audit
    /// reuses its cached record while this stamp is unchanged.
    pub audit_generation: u64,
}

impl EnclaveMeta {
    /// Creates metadata for a new enclave in the `Loading` state.
    ///
    /// `windows` must be sorted by base address and non-empty; the caller
    /// (the monitor) has already validated ownership of the regions.
    pub fn new(
        id: EnclaveId,
        evrange_base: VirtAddr,
        evrange_len: u64,
        windows: Vec<PhysWindow>,
        measurement_ctx: MeasurementContext,
    ) -> Self {
        let next_free_page = windows.first().map(|w| w.base).unwrap_or(PhysAddr::new(0));
        Self {
            id,
            lifecycle: EnclaveLifecycle::Loading,
            evrange_base,
            evrange_len,
            windows,
            page_table_root: None,
            pt_pool: Vec::new(),
            next_free_page,
            data_loading_started: false,
            mapped_vpns: BTreeSet::new(),
            measurement_ctx: Some(measurement_ctx),
            measurement: None,
            threads: Vec::new(),
            mailboxes: (0..MAILBOXES_PER_ENCLAVE).map(|_| Mailbox::new()).collect(),
            running_threads: 0,
            audit_generation: 0,
        }
    }

    /// Returns `true` if `vaddr` lies inside the enclave virtual range.
    pub fn in_evrange(&self, vaddr: VirtAddr) -> bool {
        vaddr.in_range(self.evrange_base, self.evrange_len)
    }

    /// Returns `true` if `paddr` lies inside one of the granted windows.
    pub fn owns_phys(&self, paddr: PhysAddr) -> bool {
        self.windows.iter().any(|w| {
            paddr.as_u64() >= w.base.as_u64() && paddr.as_u64() < w.base.as_u64() + w.len
        })
    }

    /// Total physical bytes granted.
    pub fn phys_capacity(&self) -> u64 {
        self.windows.iter().map(|w| w.len).sum()
    }

    /// Allocates the next physical page in ascending order (the bump
    /// allocator that realizes the paper's monotonic-order invariant).
    ///
    /// # Errors
    ///
    /// Returns [`SmError::OutOfResources`] if the enclave's granted memory is
    /// exhausted.
    pub fn alloc_next_page(&mut self) -> SmResult<PhysAddr> {
        let current = self.next_free_page;
        // Find the window containing `current`.
        let window_index = self
            .windows
            .iter()
            .position(|w| {
                current.as_u64() >= w.base.as_u64() && current.as_u64() < w.base.as_u64() + w.len
            })
            .ok_or(SmError::OutOfResources {
                resource: "enclave physical pages",
            })?;
        let window = self.windows[window_index];
        let next = current.offset(PAGE_SIZE as u64);
        self.next_free_page = if next.as_u64() < window.base.as_u64() + window.len {
            next
        } else if let Some(next_window) = self.windows.get(window_index + 1) {
            next_window.base
        } else {
            // Point one past the end; the next allocation will fail.
            next
        };
        Ok(current)
    }

    /// Records that `vpn` has been mapped, enforcing injectivity.
    ///
    /// # Errors
    ///
    /// Returns an error if the virtual page is already mapped.
    pub fn record_mapping(&mut self, vaddr: VirtAddr) -> SmResult<()> {
        if !self.mapped_vpns.insert(vaddr.page_number().index()) {
            return Err(SmError::InvalidArgument {
                reason: "virtual page already mapped (aliasing forbidden)",
            });
        }
        Ok(())
    }

    /// Returns the number of physical pages consumed so far.
    pub fn pages_consumed(&self) -> u64 {
        let mut consumed = 0;
        for w in &self.windows {
            if self.next_free_page.as_u64() >= w.base.as_u64() + w.len {
                consumed += w.len / PAGE_SIZE as u64;
            } else if self.next_free_page.as_u64() > w.base.as_u64() {
                consumed += (self.next_free_page.as_u64() - w.base.as_u64()) / PAGE_SIZE as u64;
            }
        }
        consumed
    }

    /// Returns the finalized measurement.
    ///
    /// # Errors
    ///
    /// Fails if the enclave has not been initialized yet.
    pub fn measurement(&self) -> SmResult<Measurement> {
        self.measurement.ok_or(SmError::InvalidState {
            reason: "enclave not yet initialized",
        })
    }

    /// Requires the enclave to be in the `Loading` state.
    ///
    /// # Errors
    ///
    /// Returns [`SmError::InvalidState`] otherwise.
    pub fn require_loading(&self) -> SmResult<()> {
        if self.lifecycle == EnclaveLifecycle::Loading {
            Ok(())
        } else {
            Err(SmError::InvalidState {
                reason: "enclave is already initialized",
            })
        }
    }

    /// Requires the enclave to be in the `Initialized` state.
    ///
    /// # Errors
    ///
    /// Returns [`SmError::InvalidState`] otherwise.
    pub fn require_initialized(&self) -> SmResult<()> {
        if self.lifecycle == EnclaveLifecycle::Initialized {
            Ok(())
        } else {
            Err(SmError::InvalidState {
                reason: "enclave is still loading",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> EnclaveMeta {
        let ctx = MeasurementContext::start(&[0; 32], VirtAddr::new(0x10000), 0x8000);
        EnclaveMeta::new(
            EnclaveId::new(0x8010_0000),
            VirtAddr::new(0x10000),
            0x8000,
            vec![
                PhysWindow {
                    region: RegionId::new(1),
                    base: PhysAddr::new(0x8010_0000),
                    len: 2 * PAGE_SIZE as u64,
                },
                PhysWindow {
                    region: RegionId::new(2),
                    base: PhysAddr::new(0x8020_0000),
                    len: PAGE_SIZE as u64,
                },
            ],
            ctx,
        )
    }

    #[test]
    fn bump_allocator_is_monotonic_across_windows() {
        let mut m = meta();
        let p1 = m.alloc_next_page().unwrap();
        let p2 = m.alloc_next_page().unwrap();
        let p3 = m.alloc_next_page().unwrap();
        assert_eq!(p1, PhysAddr::new(0x8010_0000));
        assert_eq!(p2, PhysAddr::new(0x8010_1000));
        assert_eq!(p3, PhysAddr::new(0x8020_0000));
        assert!(p1 < p2 && p2 < p3, "allocation order must be ascending");
        assert!(matches!(
            m.alloc_next_page(),
            Err(SmError::OutOfResources { .. })
        ));
        assert_eq!(m.pages_consumed(), 3);
    }

    #[test]
    fn evrange_and_ownership_checks() {
        let m = meta();
        assert!(m.in_evrange(VirtAddr::new(0x10000)));
        assert!(m.in_evrange(VirtAddr::new(0x17fff)));
        assert!(!m.in_evrange(VirtAddr::new(0x18000)));
        assert!(m.owns_phys(PhysAddr::new(0x8010_1fff)));
        assert!(!m.owns_phys(PhysAddr::new(0x8010_2000)));
        assert!(m.owns_phys(PhysAddr::new(0x8020_0000)));
        assert_eq!(m.phys_capacity(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn aliasing_rejected() {
        let mut m = meta();
        m.record_mapping(VirtAddr::new(0x10000)).unwrap();
        assert!(m.record_mapping(VirtAddr::new(0x10008)).is_err());
        m.record_mapping(VirtAddr::new(0x11000)).unwrap();
    }

    #[test]
    fn lifecycle_guards() {
        let mut m = meta();
        m.require_loading().unwrap();
        assert!(m.require_initialized().is_err());
        assert!(m.measurement().is_err());
        m.lifecycle = EnclaveLifecycle::Initialized;
        m.measurement = Some(Measurement([9; 32]));
        m.require_initialized().unwrap();
        assert!(m.require_loading().is_err());
        assert_eq!(m.measurement().unwrap(), Measurement([9; 32]));
    }

    #[test]
    fn mailboxes_preallocated() {
        let m = meta();
        assert_eq!(m.mailboxes.len(), MAILBOXES_PER_ENCLAVE);
    }
}
