//! Bounded model checking for the security monitor's state machine.
//!
//! The explorer (`sanctorum-explorer`) samples the op space with seeded
//! PRNG streams — good at finding bugs, silent about their absence. This
//! crate closes the loop for *small worlds*: it enumerates the feasible op
//! alphabet of a tiny configuration (2 enclaves, 2 harts, 4 regions) via
//! [`OpWorld::enabled_ops`] and walks **every** reachable state up to a
//! depth bound with breadth-first search, pruning revisits through a
//! digest-keyed visited set and running the explorer's full invariant
//! kernel ([`CheckedWorld`]) on every edge. A violation surfaces as a
//! [`Counterexample`]: a minimal (BFS-shortest, then deletion-shrunk) op
//! trace in the explorer's own [`TracedOp`] form, replayable byte for byte
//! through `Explorer::probe` or the text corpus format.
//!
//! Worlds are deliberately *not* cloned: `OpWorld` owns a whole machine,
//! and snapshotting it per node would dwarf the op costs. Instead the
//! search is **stateless** — a node is its op path, and expansion
//! re-materializes the state by booting a fresh world and replaying the
//! path (boot ≈ 300 µs, ops are micro- to milliseconds; see
//! `BENCH_modelcheck.json` for the resulting states/s). Sibling edges that
//! reject (no state change) reuse the already-materialized world, so only
//! state-*changing* edges pay for a replay.
//!
//! The visited-set key must cover every bit of behavior-relevant state or
//! pruning is unsound (two "equal" states with different futures). The key
//! is the concatenation of four digests, each covering a layer the others
//! cannot see: `Machine::state_digest` (harts + DRAM),
//! `Machine::pending_interrupt_digest` (queued, undelivered interrupts),
//! `AuditSnapshot::digest` (monitor metadata, generations excluded), and
//! `OpWorld::model_fingerprint` (free-pool order, live roster, signing
//! service).
//!
//! The companion [`toctou`] module attacks the concurrency axis the
//! single-world search cannot: it drives real SM calls from real threads
//! under every [`Schedule`](sanctorum_os::concurrent::Schedule)
//! interleaving of a short grant-vs-delete window, deterministically.

pub mod search;
pub mod toctou;

pub use search::{search, Counterexample, SearchOutcome};

use sanctorum_core::monitor::TestWeakening;
use sanctorum_machine::MachineConfig;
use sanctorum_os::ops::{ImageKind, Op, OpWorld};
use sanctorum_os::system::PlatformKind;

/// The op labels of the resource-lifecycle core: the transitions the
/// paper's Fig. 2 ownership argument is actually about. The depth-6
/// exhaustive CI run restricts the alphabet to this set — mail, probe and
/// attack ops multiply the branching factor without adding resource-state
/// transitions, and they keep their own (shallower, full-alphabet)
/// self-check configurations.
/// The op labels whose execution records a mutation-journal intent entry —
/// the boundaries where a crash leaves monitor state mid-transition and
/// recovery has real work to do. Crash pseudo-ops are enumerated only at
/// these boundaries: crashing an unjournaled (atomic) op cannot produce a
/// state a plain rejection does not already reach.
pub const CRASH_BOUNDARY_LABELS: &[&str] = &[
    "build",
    "teardown",
    "clean-region",
    "grant-region",
    "delete-enclave",
    "batch",
];

pub const LIFECYCLE_LABELS: &[&str] = &[
    "build",
    "teardown",
    "run",
    "tick",
    "block-region",
    "clean-region",
    "grant-region",
    "delete-enclave",
];

/// Configuration of one bounded search.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Platform the world boots on.
    pub platform: PlatformKind,
    /// Machine geometry (see [`ModelConfig::small_world`]).
    pub machine: MachineConfig,
    /// Deliberate monitor weakening (the checker's self-check path).
    pub weaken: Option<TestWeakening>,
    /// Depth bound: maximum op-path length explored.
    pub max_depth: usize,
    /// State cap: the search stops (and reports itself incomplete) if the
    /// visited set would grow beyond this.
    pub max_states: usize,
    /// Live-enclave cap: `Build` ops are not offered once this many
    /// enclaves are live (the "2 enclaves" of the small world).
    pub max_live: usize,
    /// Harts that hart-sensitive ops are enumerated over.
    pub harts: u32,
    /// Host threads expanding a BFS layer in parallel. The result —
    /// states, edges, and the counterexample, if any — is deterministic
    /// regardless of this value; only wall time changes.
    pub threads: usize,
    /// Op-alphabet restriction by label (`None` = the full canonical
    /// alphabet from [`OpWorld::enabled_ops`]).
    pub labels: Option<&'static [&'static str]>,
    /// Image kinds `Build` ops are enumerated over.
    pub build_kinds: &'static [ImageKind],
    /// Whether a found counterexample is deletion-shrunk before reporting
    /// (BFS already guarantees minimal length over the searched alphabet).
    pub shrink: bool,
    /// Crash enumeration: for every admitted op whose label is in
    /// [`CRASH_BOUNDARY_LABELS`] (the journaled mutation paths), the
    /// alphabet additionally offers [`Op::Crashed`] pseudo-ops for points
    /// `1..=crash_points` — the op crashes at its k-th fault-point crossing,
    /// `SecurityMonitor::recover()` runs, and the search continues in the
    /// recovered state, so BFS explores crash+recover *interleavings*, not
    /// just terminal crashes. A point beyond the op's actual crossing count
    /// degenerates to the plain op and is pruned by the visited set. `0`
    /// (the default) disables crash enumeration.
    pub crash_points: u64,
}

impl ModelConfig {
    /// The canonical small world: 2 MiB of DRAM in 512 KiB regions — four
    /// regions, of which the OS keeps one as staging, leaving a three-deep
    /// free pool — on the default two harts.
    pub fn small_world() -> MachineConfig {
        MachineConfig {
            memory_size: 2 * 1024 * 1024,
            dram_region_size: 512 * 1024,
            ..MachineConfig::small()
        }
    }

    /// The CI configuration: lifecycle alphabet, Hello builds only, depth
    /// 6 — the configuration `BENCH_modelcheck.json` and the exhaustive
    /// acceptance test run.
    pub fn ci() -> Self {
        Self {
            labels: Some(LIFECYCLE_LABELS),
            build_kinds: &[ImageKind::Hello],
            ..Self::default()
        }
    }

    /// Whether this configuration offers `op` in a world with `live` live
    /// enclaves (the restriction layer over [`OpWorld::enabled_ops`]).
    fn admits(&self, live: usize, op: &Op) -> bool {
        // A crash pseudo-op is admitted exactly when its inner op is — the
        // label restriction applies to what the op *does*, not to the
        // crash wrapper.
        if let Op::Crashed { op: inner, .. } = op {
            return self.admits(live, inner);
        }
        if let Some(labels) = self.labels {
            if !labels.contains(&op.label()) {
                return false;
            }
        }
        match op {
            Op::Build { kind, .. } => live < self.max_live && self.build_kinds.contains(kind),
            _ => true,
        }
    }

    /// The branching alphabet of one state: every admitted enabled op,
    /// hart-sensitive ops once per hart, everything else on hart 0.
    pub fn alphabet(&self, world: &OpWorld) -> Vec<(u32, Op)> {
        let mut candidates = Vec::new();
        for op in world.enabled_ops() {
            if !self.admits(world.live.len(), &op) {
                continue;
            }
            if self.crash_points > 0 && CRASH_BOUNDARY_LABELS.contains(&op.label()) {
                for point in 1..=self.crash_points {
                    candidates.push(Op::Crashed { point, op: Box::new(op.clone()) });
                }
            }
            candidates.push(op);
        }
        let mut out = Vec::new();
        for op in candidates {
            if op.hart_sensitive() {
                for hart in 0..self.harts {
                    out.push((hart, op.clone()));
                }
            } else {
                out.push((0, op));
            }
        }
        out
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            platform: PlatformKind::Sanctum,
            machine: Self::small_world(),
            weaken: None,
            max_depth: 6,
            max_states: 60_000,
            max_live: 2,
            harts: 2,
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            labels: None,
            build_kinds: &[
                ImageKind::Hello,
                ImageKind::Compute,
                ImageKind::Faulting,
                ImageKind::FaultHandling,
            ],
            shrink: true,
            crash_points: 0,
        }
    }
}

/// The visited-set key of one world state: four digests, each covering
/// state the others cannot see (see the crate docs for why all four are
/// required for sound pruning).
pub fn state_key(world: &OpWorld) -> u128 {
    fn fold(h: u64, v: u64) -> u64 {
        sanctorum_hal::fnv::fnv1a(h, &v.to_le_bytes())
    }
    let machine_digest = world.system.machine.state_digest();
    let interrupts = world.system.machine.pending_interrupt_digest();
    let audit = world.system.monitor.audit().digest();
    let model = world.model_fingerprint();
    let hi = fold(fold(0x6d63_6869, machine_digest), audit);
    let lo = fold(fold(0x6d63_6c6f, interrupts), model);
    (hi as u128) << 64 | lo as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::CoreId;

    #[test]
    fn state_key_separates_states_the_machine_digest_cannot() {
        let mut a = OpWorld::boot(PlatformKind::Sanctum, ModelConfig::small_world());
        let b = OpWorld::boot(PlatformKind::Sanctum, ModelConfig::small_world());
        assert_eq!(state_key(&a), state_key(&b), "identical boots key equally");

        // A queued-but-undelivered interrupt lives outside `state_digest`;
        // the key must still separate the worlds.
        a.apply(CoreId::new(0), &Op::Tick);
        assert_eq!(
            a.system.machine.state_digest(),
            b.system.machine.state_digest(),
            "the machine digest alone cannot see the queued interrupt \
             (if this fails the digest grew coverage and the key can shed \
             pending_interrupt_digest)"
        );
        assert_ne!(state_key(&a), state_key(&b));

        // Free-pool order: the pool is a stack, so building two enclaves
        // and tearing them down in build order returns the regions
        // reversed, while build-teardown pairs keep the boot order. Same
        // free *set*, different next-build choice.
        let build = Op::Build { kind: ImageKind::Hello, param: 0 };
        let teardown = Op::Teardown { slot: 0 };
        let mut c = OpWorld::boot(PlatformKind::Sanctum, ModelConfig::small_world());
        c.apply(CoreId::new(0), &build);
        c.apply(CoreId::new(0), &build);
        c.apply(CoreId::new(0), &teardown);
        c.apply(CoreId::new(0), &teardown);
        let mut d = OpWorld::boot(PlatformKind::Sanctum, ModelConfig::small_world());
        d.apply(CoreId::new(0), &build);
        d.apply(CoreId::new(0), &teardown);
        d.apply(CoreId::new(0), &build);
        d.apply(CoreId::new(0), &teardown);
        assert_eq!(
            c.os.free_regions().iter().collect::<std::collections::BTreeSet<_>>(),
            d.os.free_regions().iter().collect::<std::collections::BTreeSet<_>>(),
            "same free set"
        );
        assert_ne!(
            c.os.free_regions(),
            d.os.free_regions(),
            "different free order"
        );
        assert_ne!(state_key(&c), state_key(&d));
    }

    #[test]
    fn alphabet_respects_restrictions_and_hart_sensitivity() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, ModelConfig::small_world());
        let config = ModelConfig::ci();
        let boot_alphabet = config.alphabet(&world);
        assert!(boot_alphabet
            .iter()
            .all(|(_, op)| LIFECYCLE_LABELS.contains(&op.label())));
        assert!(
            boot_alphabet.iter().all(|(hart, op)| *hart == 0 || op.hart_sensitive()),
            "hart-agnostic ops are enumerated once"
        );
        assert_eq!(
            boot_alphabet
                .iter()
                .filter(|(_, op)| op.label() == "build")
                .count(),
            1,
            "CI config builds Hello only"
        );

        // Fill to the live cap: Build must leave the alphabet.
        world.apply(CoreId::new(0), &Op::Build { kind: ImageKind::Hello, param: 0 });
        world.apply(CoreId::new(0), &Op::Build { kind: ImageKind::Hello, param: 0 });
        assert_eq!(world.live.len(), 2);
        assert!(config
            .alphabet(&world)
            .iter()
            .all(|(_, op)| op.label() != "build"));
        // Tick appears once per hart.
        assert_eq!(
            config
                .alphabet(&world)
                .iter()
                .filter(|(_, op)| matches!(op, Op::Tick))
                .count(),
            2
        );
    }

    #[test]
    fn crash_points_enumerate_crashes_at_journaled_boundaries_only() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, ModelConfig::small_world());
        world.apply(CoreId::new(0), &Op::Build { kind: ImageKind::Hello, param: 0 });
        let config = ModelConfig { crash_points: 2, ..ModelConfig::ci() };
        let alphabet = config.alphabet(&world);
        let crashed: Vec<&Op> = alphabet
            .iter()
            .filter(|(_, op)| matches!(op, Op::Crashed { .. }))
            .map(|(_, op)| op)
            .collect();
        assert!(!crashed.is_empty(), "crash pseudo-ops are offered");
        for op in &crashed {
            let Op::Crashed { point, op: inner } = op else { unreachable!() };
            assert!((1..=2).contains(point));
            assert!(
                CRASH_BOUNDARY_LABELS.contains(&inner.label()),
                "crash wrapped an unjournaled op: {inner:?}"
            );
        }
        // Every journaled label the plain alphabet offers is also offered
        // crashed, at every point.
        for (_, op) in &alphabet {
            if matches!(op, Op::Crashed { .. })
                || !CRASH_BOUNDARY_LABELS.contains(&op.label())
            {
                continue;
            }
            for point in 1..=2u64 {
                assert!(
                    crashed.iter().any(|c| matches!(
                        c,
                        Op::Crashed { point: p, op: inner } if *p == point && **inner == *op
                    )),
                    "missing crash wrap for {op:?} at point {point}"
                );
            }
        }
        // crash_points: 0 (the default) offers none.
        let plain = ModelConfig::ci().alphabet(&world);
        assert!(plain.iter().all(|(_, op)| !matches!(op, Op::Crashed { .. })));
    }
}
