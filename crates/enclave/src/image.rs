//! The enclave image format and a builder for common test workloads.

use sanctorum_hal::addr::{VirtAddr, PAGE_SIZE};
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::guest::{GuestOp, GuestProgram, REG_A0};
use serde::{Deserialize, Serialize};

/// One thread of an enclave image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// Entry point (an index into the thread's guest program).
    pub entry_pc: u64,
    /// Optional fault-handler entry point.
    pub fault_handler_pc: Option<u64>,
    /// The guest program the thread executes when entered.
    pub program: GuestProgram,
}

/// A buildable enclave image: virtual range, initial page contents and
/// threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnclaveImage {
    /// Human-readable name (appears in traces and benches).
    pub name: String,
    /// Base of the enclave virtual range.
    pub evrange_base: VirtAddr,
    /// Length of the enclave virtual range in bytes.
    pub evrange_len: u64,
    /// Initial private pages: virtual address, permissions and contents
    /// (padded/truncated to one page when loaded).
    pub pages: Vec<(VirtAddr, MemPerms, Vec<u8>)>,
    /// Threads to create.
    pub threads: Vec<ThreadSpec>,
}

impl EnclaveImage {
    /// Starts building an image with the given virtual range.
    pub fn new(name: impl Into<String>, evrange_base: VirtAddr, evrange_len: u64) -> Self {
        Self {
            name: name.into(),
            evrange_base,
            evrange_len,
            pages: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Adds a data page at `vaddr`.
    #[must_use]
    pub fn with_page(mut self, vaddr: VirtAddr, perms: MemPerms, contents: Vec<u8>) -> Self {
        self.pages.push((vaddr, perms, contents));
        self
    }

    /// Adds a thread.
    #[must_use]
    pub fn with_thread(mut self, spec: ThreadSpec) -> Self {
        self.threads.push(spec);
        self
    }

    /// Total number of data pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The default virtual range used by the canned images below.
    pub fn default_evrange() -> (VirtAddr, u64) {
        (VirtAddr::new(0x0000_0000_0010_0000), 64 * PAGE_SIZE as u64)
    }

    /// A minimal "hello" enclave: one data page, one thread that writes a
    /// value into its private page and exits via the SM.
    pub fn hello(secret: u64) -> Self {
        let (base, len) = Self::default_evrange();
        let data_vaddr = base.offset(PAGE_SIZE as u64);
        let program = GuestProgram::new(
            "hello-enclave",
            vec![
                GuestOp::MovImm { dst: 1, value: data_vaddr.as_u64() },
                GuestOp::MovImm { dst: 2, value: secret },
                GuestOp::Store { src: 2, addr: 1 },
                GuestOp::Load { dst: REG_A0, addr: 1 },
                // Voluntary exit through the SM (SmCall::ExitEnclave = 8).
                GuestOp::MovImm { dst: REG_A0, value: 8 },
                GuestOp::Ecall,
                GuestOp::Exit,
            ],
        );
        Self::new("hello", base, len)
            // The secret is part of the initial data, so enclaves built with
            // different secrets have different measurements.
            .with_page(base, MemPerms::RX, b"enclave text page".to_vec())
            .with_page(data_vaddr, MemPerms::RW, secret.to_le_bytes().to_vec())
            .with_thread(ThreadSpec {
                entry_pc: 0,
                fault_handler_pc: None,
                program,
            })
    }

    /// A pure-compute enclave used for timing experiments: `pages` data pages
    /// and one thread that burns `cycles` and exits.
    pub fn compute(pages: usize, cycles: u64) -> Self {
        let (base, len) = Self::default_evrange();
        let program = GuestProgram::new(
            "compute-enclave",
            vec![
                GuestOp::Compute { cycles },
                GuestOp::MovImm { dst: REG_A0, value: 8 },
                GuestOp::Ecall,
                GuestOp::Exit,
            ],
        );
        let mut image = Self::new(format!("compute-{pages}p"), base, len);
        for i in 0..pages {
            image = image.with_page(
                base.offset((i * PAGE_SIZE) as u64),
                MemPerms::RW,
                vec![(i % 251) as u8; PAGE_SIZE],
            );
        }
        image.with_thread(ThreadSpec {
            entry_pc: 0,
            fault_handler_pc: None,
            program,
        })
    }

    /// An enclave that touches memory outside its virtual range, triggering
    /// an isolation/page fault — used to exercise the Fig. 1 fault paths.
    pub fn faulting() -> Self {
        let (base, len) = Self::default_evrange();
        let program = GuestProgram::new(
            "faulting-enclave",
            vec![
                // Store to an address far outside evrange / unmapped.
                GuestOp::MovImm { dst: 1, value: 0xdead_0000 },
                GuestOp::MovImm { dst: 2, value: 1 },
                GuestOp::Store { src: 2, addr: 1 },
                GuestOp::Exit,
            ],
        );
        Self::new("faulting", base, len)
            .with_page(base, MemPerms::RW, vec![0u8; 32])
            .with_thread(ThreadSpec {
                entry_pc: 0,
                fault_handler_pc: None,
                program,
            })
    }

    /// Like [`EnclaveImage::faulting`] but with a registered fault handler:
    /// the handler sets a flag in enclave memory and exits cleanly,
    /// demonstrating enclave-handled exceptions (paper Fig. 1 "enclave has
    /// handler?" arc).
    pub fn fault_handling() -> Self {
        let (base, len) = Self::default_evrange();
        let flag_vaddr = base.offset(8);
        let program = GuestProgram::new(
            "fault-handling-enclave",
            vec![
                // 0: attempt a bad store -> faults, SM redirects to handler (op 4).
                GuestOp::MovImm { dst: 1, value: 0xdead_0000 },
                GuestOp::MovImm { dst: 2, value: 1 },
                GuestOp::Store { src: 2, addr: 1 },
                GuestOp::Exit,
                // 4: fault handler — record that it ran, then exit via the SM.
                GuestOp::MovImm { dst: 1, value: flag_vaddr.as_u64() },
                GuestOp::MovImm { dst: 2, value: 0x600d },
                GuestOp::Store { src: 2, addr: 1 },
                GuestOp::MovImm { dst: REG_A0, value: 8 },
                GuestOp::Ecall,
                GuestOp::Exit,
            ],
        );
        Self::new("fault-handling", base, len)
            .with_page(base, MemPerms::RW, vec![0u8; 32])
            .with_thread(ThreadSpec {
                entry_pc: 0,
                fault_handler_pc: Some(4),
                program,
            })
    }

    /// A long-running enclave that loops forever (used to test OS-forced
    /// de-scheduling via AEX).
    pub fn spinner() -> Self {
        let (base, len) = Self::default_evrange();
        let program = GuestProgram::new(
            "spinner-enclave",
            vec![
                GuestOp::MovImm { dst: 1, value: 1 },
                GuestOp::Compute { cycles: 50 },
                GuestOp::BranchNonZero { reg: 1, target: 1 },
                GuestOp::Exit,
            ],
        );
        Self::new("spinner", base, len)
            .with_page(base, MemPerms::RW, vec![0u8; 16])
            .with_thread(ThreadSpec {
                entry_pc: 0,
                fault_handler_pc: None,
                program,
            })
    }

    /// The signing-enclave image (paper Section VI-C). Its guest program only
    /// enters and exits; the signing logic runs host-side (see the crate
    /// docs) through the same SM API.
    pub fn signing_enclave() -> Self {
        let (base, len) = Self::default_evrange();
        let program = GuestProgram::new(
            "signing-enclave",
            vec![
                GuestOp::Compute { cycles: 100 },
                GuestOp::MovImm { dst: REG_A0, value: 8 },
                GuestOp::Ecall,
                GuestOp::Exit,
            ],
        );
        Self::new("signing-enclave", base, len)
            .with_page(base, MemPerms::RX, b"signing enclave text".to_vec())
            .with_page(base.offset(PAGE_SIZE as u64), MemPerms::RW, vec![0u8; 128])
            .with_thread(ThreadSpec {
                entry_pc: 0,
                fault_handler_pc: None,
                program,
            })
    }

    /// The attestation-client enclave image (the `E1` of paper Figs. 6–7).
    pub fn attestation_client() -> Self {
        let (base, len) = Self::default_evrange();
        let program = GuestProgram::new(
            "attestation-client",
            vec![
                GuestOp::Compute { cycles: 200 },
                GuestOp::MovImm { dst: REG_A0, value: 8 },
                GuestOp::Ecall,
                GuestOp::Exit,
            ],
        );
        Self::new("attestation-client", base, len)
            .with_page(base, MemPerms::RX, b"attestation client text".to_vec())
            .with_page(base.offset(PAGE_SIZE as u64), MemPerms::RW, vec![0u8; 256])
            .with_thread(ThreadSpec {
                entry_pc: 0,
                fault_handler_pc: None,
                program,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_pages_and_threads() {
        let img = EnclaveImage::hello(42);
        assert_eq!(img.page_count(), 2);
        assert_eq!(img.threads.len(), 1);
        assert!(img.evrange_len >= 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn compute_image_scales_with_pages() {
        assert_eq!(EnclaveImage::compute(1, 10).page_count(), 1);
        assert_eq!(EnclaveImage::compute(16, 10).page_count(), 16);
        assert_eq!(EnclaveImage::compute(3, 10).name, "compute-3p");
    }

    #[test]
    fn fault_handling_image_registers_handler() {
        let img = EnclaveImage::fault_handling();
        assert_eq!(img.threads[0].fault_handler_pc, Some(4));
        let faulting = EnclaveImage::faulting();
        assert_eq!(faulting.threads[0].fault_handler_pc, None);
    }

    #[test]
    fn canned_images_use_default_evrange() {
        let (base, len) = EnclaveImage::default_evrange();
        for img in [
            EnclaveImage::hello(1),
            EnclaveImage::signing_enclave(),
            EnclaveImage::attestation_client(),
            EnclaveImage::spinner(),
        ] {
            assert_eq!(img.evrange_base, base);
            assert_eq!(img.evrange_len, len);
            assert!(!img.pages.is_empty());
            assert!(!img.threads.is_empty());
        }
    }
}
