//! Runs the same enclave workload on the Sanctum and Keystone backends and
//! prints the architectural-cycle comparison behind Table 2 of
//! `EXPERIMENTS.md` (the paper's Section VII platform discussion).
//!
//! Run with: `cargo run -p sanctorum-bench --example backend_comparison`

use sanctorum_core::api::SmApi;
use sanctorum_core::resource::ResourceId;
use sanctorum_core::session::CallerSession;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::domain::CoreId;
use sanctorum_os::os::Os;
use sanctorum_os::system::{PlatformKind, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "platform", "build (cyc)", "enter (cyc)", "aex (cyc)", "clean region"
    );
    for platform in PlatformKind::ALL {
        let system = System::boot_small(platform);
        let mut os = Os::new(&system);
        let built = os.build_enclave(&EnclaveImage::compute(8, 10_000), 1)?;

        let entry = system.monitor.enter_enclave(
            CallerSession::os(),
            built.eid,
            built.main_thread(),
        )?;
        let aex = system.monitor.asynchronous_enclave_exit(CoreId::new(0))?;

        // Tear down and measure the cost of cleaning the region.
        system.monitor.delete_enclave(CallerSession::os(), built.eid)?;
        let clean = system
            .monitor
            .clean_resource(CallerSession::os(), ResourceId::Region(built.regions[0]))?;

        println!(
            "{:<12} {:>14} {:>14} {:>14} {:>14}",
            platform.name(),
            built.build_cycles.count(),
            entry.cost.count(),
            aex.count(),
            clean.count()
        );
    }
    println!();
    println!("Sanctum pays the fixed-size-region and partition costs; Keystone pays");
    println!("whole-cache flushes on cleaning and is bounded by PMP entries.");
    Ok(())
}
