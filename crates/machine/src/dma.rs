//! DMA engine model.
//!
//! Paper Section IV-B1 requires that the SM can restrict DMA by untrusted
//! devices to memory owned by the SM or by enclaves. The DMA engine here acts
//! on behalf of the untrusted domain and consults the access-control table's
//! DMA policy for every page it touches, so a transfer straddling a protected
//! range is rejected before any byte moves.

use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use std::fmt;

/// Errors raised by DMA transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// The transfer touches a range protected from DMA.
    Blocked {
        /// The first blocked address encountered.
        addr: PhysAddr,
    },
    /// Source or destination is outside populated memory.
    OutOfRange,
    /// Zero-length transfers are rejected.
    EmptyTransfer,
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::Blocked { addr } => write!(f, "dma blocked at {addr}"),
            DmaError::OutOfRange => write!(f, "dma transfer outside populated memory"),
            DmaError::EmptyTransfer => write!(f, "dma transfer of zero length"),
        }
    }
}

impl std::error::Error for DmaError {}

/// Enumerates every page-granular address a transfer of `len` bytes starting
/// at `base` touches (used to check DMA policy page by page).
pub fn pages_touched(base: PhysAddr, len: u64) -> Vec<PhysAddr> {
    if len == 0 {
        return Vec::new();
    }
    let first = base.align_down().as_u64();
    let last = (base.as_u64() + len - 1) & !(PAGE_SIZE as u64 - 1);
    (first..=last)
        .step_by(PAGE_SIZE)
        .map(PhysAddr::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_touched_single_page() {
        let pages = pages_touched(PhysAddr::new(0x8000_0100), 8);
        assert_eq!(pages, vec![PhysAddr::new(0x8000_0000)]);
    }

    #[test]
    fn pages_touched_straddles_boundary() {
        let pages = pages_touched(PhysAddr::new(0x8000_0ff8), 16);
        assert_eq!(
            pages,
            vec![PhysAddr::new(0x8000_0000), PhysAddr::new(0x8000_1000)]
        );
    }

    #[test]
    fn pages_touched_empty() {
        assert!(pages_touched(PhysAddr::new(0x8000_0000), 0).is_empty());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            format!("{}", DmaError::Blocked { addr: PhysAddr::new(0x1000) }),
            "dma blocked at PA 0x1000"
        );
        assert_eq!(format!("{}", DmaError::EmptyTransfer), "dma transfer of zero length");
    }
}
