//! A partitionable last-level cache model.
//!
//! The MIT Sanctum processor isolates the shared LLC by page colouring: each
//! DRAM region maps onto a disjoint set of cache sets, so protection domains
//! never contend for the same lines (paper Sections IV-B2 and VII-A). The
//! model tracks, per cache set, which partition it belongs to and which lines
//! are resident, and charges [`CostModel`] figures for hits, misses and
//! flushes. Keystone leaves the LLC shared (paper Section VII-B), which the
//! model expresses as a single partition shared by every domain — the
//! difference shows up directly in the Table 2 backend-comparison bench.

use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::cycles::{CostModel, Cycles};
use serde::{Deserialize, Serialize};

/// Identifier of a cache partition (a page colour / set group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

/// Aggregate cache statistics, per partition and total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of lines written back / invalidated by flushes.
    pub flushed_lines: u64,
}

/// Geometry of the modelled cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total number of sets.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: usize,
}

impl CacheGeometry {
    /// A 2 MiB, 8-way, 64-byte-line LLC — small enough to simulate quickly,
    /// large enough that partitioning effects are visible.
    pub const fn default_llc() -> Self {
        Self {
            sets: 4096,
            ways: 8,
            line_size: 64,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheSet {
    /// Tags of resident lines, most recently used last.
    lines: Vec<u64>,
    partition: PartitionId,
}

/// The last-level cache model.
#[derive(Debug, Clone)]
pub struct CacheModel {
    geometry: CacheGeometry,
    sets: Vec<CacheSet>,
    cost: CostModel,
    stats: CacheStats,
}

impl CacheModel {
    /// Creates a cache with all sets assigned to partition 0.
    pub fn new(geometry: CacheGeometry, cost: CostModel) -> Self {
        let sets = (0..geometry.sets)
            .map(|_| CacheSet {
                lines: Vec::with_capacity(geometry.ways),
                partition: PartitionId(0),
            })
            .collect();
        Self {
            geometry,
            sets,
            cost,
            stats: CacheStats::default(),
        }
    }

    /// Returns the cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Assigns an equal, contiguous slice of sets to each of `partitions`
    /// partitions (the Sanctum page-colouring configuration).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero or larger than the number of sets.
    pub fn partition_evenly(&mut self, partitions: u32) {
        assert!(partitions > 0, "at least one partition required");
        assert!(
            (partitions as usize) <= self.geometry.sets,
            "more partitions than cache sets"
        );
        let per = self.geometry.sets / partitions as usize;
        for (i, set) in self.sets.iter_mut().enumerate() {
            let p = (i / per).min(partitions as usize - 1) as u32;
            set.partition = PartitionId(p);
        }
    }

    fn set_index(&self, addr: PhysAddr, partition: PartitionId) -> usize {
        // Restrict the index to the sets belonging to the partition so that
        // domains in different partitions can never evict each other.
        let owned: Vec<usize> = self
            .sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.partition == partition)
            .map(|(i, _)| i)
            .collect();
        if owned.is_empty() {
            // Partition currently owns no sets; fall back to direct indexing.
            return (addr.as_usize() / self.geometry.line_size) % self.geometry.sets;
        }
        let natural = (addr.as_usize() / self.geometry.line_size) % owned.len();
        owned[natural]
    }

    /// Simulates an access by `partition` to `addr`, returning its cost.
    pub fn access(&mut self, partition: PartitionId, addr: PhysAddr) -> Cycles {
        let idx = self.set_index(addr, partition);
        let tag = addr.as_u64() / self.geometry.line_size as u64;
        let ways = self.geometry.ways;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.lines.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.lines.remove(pos);
            set.lines.push(t);
            self.stats.hits += 1;
            self.cost.mem_hit
        } else {
            if set.lines.len() == ways {
                set.lines.remove(0);
            }
            set.lines.push(tag);
            self.stats.misses += 1;
            self.cost.mem_miss
        }
    }

    /// Flushes every line belonging to `partition`, returning the cost.
    pub fn flush_partition(&mut self, partition: PartitionId) -> Cycles {
        let mut flushed = 0u64;
        for set in self.sets.iter_mut().filter(|s| s.partition == partition) {
            flushed += set.lines.len() as u64;
            set.lines.clear();
        }
        self.stats.flushed_lines += flushed;
        self.cost.flush_line.scaled(flushed.max(1))
    }

    /// Flushes the entire cache (used on platforms without partitioning when
    /// the SM must clean shared state on a domain switch).
    pub fn flush_all(&mut self) -> Cycles {
        let mut flushed = 0u64;
        for set in self.sets.iter_mut() {
            flushed += set.lines.len() as u64;
            set.lines.clear();
        }
        self.stats.flushed_lines += flushed;
        self.cost.flush_line.scaled(flushed.max(1))
    }

    /// Returns `true` if any line whose physical address falls in
    /// `[base, base+len)` is resident — used by tests asserting that cleaning
    /// really evicted a domain's data.
    pub fn holds_line_in(&self, base: PhysAddr, len: u64) -> bool {
        let first_tag = base.as_u64() / self.geometry.line_size as u64;
        let last_tag = (base.as_u64() + len - 1) / self.geometry.line_size as u64;
        self.sets
            .iter()
            .any(|s| s.lines.iter().any(|&t| t >= first_tag && t <= last_tag))
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns the number of sets assigned to `partition`.
    pub fn sets_in_partition(&self, partition: PartitionId) -> usize {
        self.sets.iter().filter(|s| s.partition == partition).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CacheModel {
        CacheModel::new(
            CacheGeometry {
                sets: 64,
                ways: 2,
                line_size: 64,
            },
            CostModel::default(),
        )
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = cache();
        let p = PartitionId(0);
        let a = PhysAddr::new(0x8000_0000);
        let miss_cost = c.access(p, a);
        let hit_cost = c.access(p, a);
        assert!(miss_cost > hit_cost);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn partitions_do_not_evict_each_other() {
        let mut c = cache();
        c.partition_evenly(2);
        assert_eq!(c.sets_in_partition(PartitionId(0)), 32);
        assert_eq!(c.sets_in_partition(PartitionId(1)), 32);

        // Fill partition 0 with many distinct lines.
        for i in 0..256u64 {
            c.access(PartitionId(0), PhysAddr::new(0x8000_0000 + i * 64));
        }
        // Touch a line in partition 1, then thrash partition 0 again.
        let victim = PhysAddr::new(0x9000_0000);
        c.access(PartitionId(1), victim);
        for i in 0..256u64 {
            c.access(PartitionId(0), PhysAddr::new(0x8100_0000 + i * 64));
        }
        // The partition-1 line must still be resident: accessing it hits.
        let hits_before = c.stats().hits;
        c.access(PartitionId(1), victim);
        assert_eq!(c.stats().hits, hits_before + 1);
    }

    #[test]
    fn shared_cache_allows_cross_eviction() {
        let mut c = cache();
        // No partitioning: a large working set from "another domain" evicts.
        let victim = PhysAddr::new(0x9000_0000);
        c.access(PartitionId(0), victim);
        for i in 0..1024u64 {
            c.access(PartitionId(0), PhysAddr::new(0x8000_0000 + i * 64));
        }
        let misses_before = c.stats().misses;
        c.access(PartitionId(0), victim);
        assert_eq!(c.stats().misses, misses_before + 1, "victim should have been evicted");
    }

    #[test]
    fn flush_partition_evicts_only_that_partition() {
        let mut c = cache();
        c.partition_evenly(2);
        let a0 = PhysAddr::new(0x8000_0000);
        let a1 = PhysAddr::new(0x9000_0000);
        c.access(PartitionId(0), a0);
        c.access(PartitionId(1), a1);
        c.flush_partition(PartitionId(0));
        assert!(!c.holds_line_in(a0, 64));
        assert!(c.holds_line_in(a1, 64));
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = cache();
        for i in 0..32u64 {
            c.access(PartitionId(0), PhysAddr::new(0x8000_0000 + i * 64));
        }
        let cost = c.flush_all();
        assert!(cost.count() >= 32 * 4);
        assert!(!c.holds_line_in(PhysAddr::new(0x8000_0000), 32 * 64));
    }

    #[test]
    fn flush_cost_scales_with_resident_lines() {
        let mut c = cache();
        c.partition_evenly(2);
        for i in 0..16u64 {
            c.access(PartitionId(0), PhysAddr::new(0x8000_0000 + i * 64));
        }
        let big = c.flush_partition(PartitionId(0));
        let small = c.flush_partition(PartitionId(0));
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "more partitions than cache sets")]
    fn too_many_partitions_panics() {
        let mut c = cache();
        c.partition_evenly(1000);
    }
}
