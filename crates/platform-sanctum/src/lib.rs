//! MIT Sanctum platform backend (paper Section VII-A).
//!
//! The Sanctum processor isolates memory as a fixed array of equally sized
//! DRAM regions (64 × 32 MiB on the real hardware; the simulated machine
//! scales the geometry down). Each region is isolated throughout the memory
//! hierarchy: the last-level cache is partitioned by page colouring, so a
//! protection domain occupying one region can never evict another domain's
//! lines, and a page-table-walk invariant (modelled by the machine's
//! access-control check on every translated access) keeps TLB contents
//! consistent with the region allocation, requiring a TLB shootdown whenever
//! a region changes owner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::cycles::Cycles;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::isolation::{
    FlushKind, IsolationBackend, IsolationError, PlatformCapacity, RegionId, RegionInfo, RegionOp,
};
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::access::AccessRange;
use sanctorum_machine::cache::PartitionId;
use sanctorum_machine::{fault_point, Crossing, Machine};
use std::sync::Arc;

/// Number of LLC partitions (page colours) the backend divides the cache
/// into. Each DRAM region maps to the partition `region_index % PARTITIONS`.
pub const CACHE_PARTITIONS: u32 = 8;

/// The Sanctum isolation backend.
///
/// # Examples
///
/// ```
/// use sanctorum_machine::{Machine, MachineConfig};
/// use sanctorum_sanctum::SanctumBackend;
/// use sanctorum_hal::isolation::IsolationBackend;
/// use std::sync::Arc;
///
/// let machine = Arc::new(Machine::new(MachineConfig::small()));
/// let backend = SanctumBackend::new(Arc::clone(&machine));
/// assert_eq!(backend.platform_name(), "sanctum");
/// assert_eq!(backend.regions().len(), machine.config().num_regions());
/// ```
pub struct SanctumBackend {
    machine: Arc<Machine>,
    owners: Vec<DomainKind>,
}

impl std::fmt::Debug for SanctumBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SanctumBackend {{ regions: {} }}", self.owners.len())
    }
}

impl SanctumBackend {
    /// Creates the backend, partitioning the LLC and reserving region 0 for
    /// the SM itself (its code, stack and metadata region).
    pub fn new(machine: Arc<Machine>) -> Self {
        let num_regions = machine.config().num_regions();
        machine.with_cache_mut(|c| c.partition_evenly(CACHE_PARTITIONS));
        let mut backend = Self {
            machine,
            owners: vec![DomainKind::Untrusted; num_regions],
        };
        backend
            .assign_region(RegionId::new(0), DomainKind::SecurityMonitor, MemPerms::RWX)
            .expect("reserving the SM region cannot fail on a fresh machine");
        backend
    }

    fn region_geometry(&self, region: RegionId) -> Result<RegionInfo, IsolationError> {
        let config = self.machine.config();
        if region.index() >= config.num_regions() {
            return Err(IsolationError::UnknownRegion(region));
        }
        let base = config
            .memory_base
            .offset((region.index() * config.dram_region_size) as u64);
        Ok(RegionInfo {
            id: region,
            base,
            len: config.dram_region_size as u64,
            cache_isolated: true,
        })
    }

    fn partition_for(region: RegionId) -> PartitionId {
        PartitionId(region.0 % CACHE_PARTITIONS)
    }

    /// The region-map mutation shared by [`IsolationBackend::assign_region`]
    /// and the batched path: reprogram the access range, record the owner,
    /// rebind the cache partition. Geometry must already be validated; the
    /// fault point is crossed by the caller *before* any mutation.
    fn apply_assign(
        &mut self,
        info: &RegionInfo,
        domain: DomainKind,
        perms: MemPerms,
    ) -> Result<(), IsolationError> {
        let range = AccessRange {
            base: info.base,
            len: info.len,
            owner: domain,
            owner_perms: perms,
            untrusted_perms: if domain == DomainKind::Untrusted {
                perms
            } else {
                MemPerms::NONE
            },
            dma_blocked: domain != DomainKind::Untrusted,
        };
        self.machine
            .with_access_mut(|a| a.protect(range))
            .map_err(|_| IsolationError::UnsupportedRange {
                base: info.base,
                len: info.len,
            })?;
        self.owners[info.id.index()] = domain;
        // Bind the domain to the region's cache partition (page colouring).
        self.machine.set_partition(domain, Self::partition_for(info.id));
        Ok(())
    }

    /// The DMA-filter mutation shared by the single and batched paths.
    fn apply_dma(&mut self, info: &RegionInfo, blocked: bool) {
        self.machine.with_access_mut(|a| {
            if let Some(range) = a.range_of_mut(info.base) {
                range.dma_blocked = blocked;
            }
        });
    }
}

impl IsolationBackend for SanctumBackend {
    fn platform_name(&self) -> &'static str {
        "sanctum"
    }

    fn capacity(&self) -> PlatformCapacity {
        // The region map covers every DRAM region: any subset of regions can
        // be isolated simultaneously, so no capacity limit is declared.
        PlatformCapacity::UNLIMITED
    }

    fn regions(&self) -> Vec<RegionInfo> {
        (0..self.owners.len())
            .map(|i| {
                self.region_geometry(RegionId::new(i as u32))
                    .expect("registered region has geometry")
            })
            .collect()
    }

    fn region_of(&self, addr: PhysAddr) -> Option<RegionId> {
        let config = self.machine.config();
        let offset = addr.as_u64().checked_sub(config.memory_base.as_u64())?;
        let index = (offset / config.dram_region_size as u64) as usize;
        if index < config.num_regions() {
            Some(RegionId::new(index as u32))
        } else {
            None
        }
    }

    fn assign_region(
        &mut self,
        region: RegionId,
        domain: DomainKind,
        perms: MemPerms,
    ) -> Result<Cycles, IsolationError> {
        let info = self.region_geometry(region)?;
        // atomic: crossed before the region map is touched — a crash or
        // injected failure here leaves the previous assignment fully intact.
        if fault_point!(self.machine.fault_injector(), "backend.assign-region")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        self.apply_assign(&info, domain, perms)?;
        // Reprogramming the region map costs a handful of CSR writes.
        Ok(self.machine.cost_model().pmp_write.scaled(4))
    }

    fn region_owner(&self, region: RegionId) -> Result<DomainKind, IsolationError> {
        self.owners
            .get(region.index())
            .copied()
            .ok_or(IsolationError::UnknownRegion(region))
    }

    fn check_access(&self, domain: DomainKind, addr: PhysAddr, perms: MemPerms) -> bool {
        self.machine.check_access(domain, addr, perms)
    }

    fn flush(&mut self, core: CoreId, kind: FlushKind) -> Result<Cycles, IsolationError> {
        if !self.machine.has_hart(core) {
            return Err(IsolationError::UnknownCore(core));
        }
        let cost = match kind {
            FlushKind::CoreState => self.machine.cost_model().flush_core,
            FlushKind::PrivateCaches => self.machine.cost_model().flush_core,
            // The LLC is partitioned, so a core hand-off does not require a
            // shared-cache flush on Sanctum.
            FlushKind::SharedCachePartition => Cycles::ZERO,
            FlushKind::Tlb => {
                self.machine.tlb(core).flush_all();
                self.machine.cost_model().tlb_shootdown
            }
        };
        self.machine.charge(cost);
        Ok(cost)
    }

    fn tlb_shootdown(&mut self, region: RegionId) -> Result<Cycles, IsolationError> {
        let info = self.region_geometry(region)?;
        // atomic: crossed before any TLB is invalidated — a failed shootdown
        // invalidates nothing, and the caller retries or quarantines.
        if fault_point!(self.machine.fault_injector(), "backend.tlb-shootdown")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        Ok(self.machine.tlb_shootdown(info.base, info.len))
    }

    fn flush_region_cache(&mut self, region: RegionId) -> Result<Cycles, IsolationError> {
        let _ = self.region_geometry(region)?;
        // atomic: crossed before the partition flush — a failure evicts
        // nothing, so the region's lines are either all flushed or all kept.
        if fault_point!(self.machine.fault_injector(), "backend.flush-region-cache")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        let cost = self
            .machine
            .with_cache_mut(|c| c.flush_partition(Self::partition_for(region)));
        self.machine.charge(cost);
        Ok(cost)
    }

    fn dma_blocked(&self, region: RegionId) -> Result<bool, IsolationError> {
        let info = self.region_geometry(region)?;
        Ok(self
            .machine
            .with_access(|a| a.range_of(info.base).map(|r| r.dma_blocked))
            .unwrap_or(false))
    }

    fn set_dma_blocked(&mut self, region: RegionId, blocked: bool) -> Result<Cycles, IsolationError> {
        let info = self.region_geometry(region)?;
        // atomic: crossed before the DMA bit flips — the toggle is a single
        // register write that either happened or did not.
        if fault_point!(self.machine.fault_injector(), "backend.set-dma-blocked")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        self.apply_dma(&info, blocked);
        Ok(self.machine.cost_model().pmp_write)
    }

    fn apply_batch(&mut self, ops: &[RegionOp]) -> Result<Cycles, IsolationError> {
        // Validate every operation's geometry before touching anything: the
        // batch is all-or-nothing, and on Sanctum geometry is the only way a
        // region mutation can fail.
        let mut infos = Vec::with_capacity(ops.len());
        let mut assigns = 0u64;
        let mut dma_toggles = 0u64;
        for op in ops {
            let (region, is_assign) = match *op {
                RegionOp::Assign { region, .. } => (region, true),
                RegionOp::SetDmaBlocked { region, .. } => (region, false),
            };
            infos.push(self.region_geometry(region)?);
            if is_assign {
                assigns += 1;
            } else {
                dma_toggles += 1;
            }
        }
        // Each site is crossed once for the whole batch, before any
        // mutation — a crash or injected failure here leaves every previous
        // assignment and DMA filter fully intact.
        if assigns > 0
            // atomic: one batch-wide crossing, before any mutation.
            && fault_point!(self.machine.fault_injector(), "backend.assign-region")
                == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        if dma_toggles > 0
            // atomic: one batch-wide crossing, before any mutation.
            && fault_point!(self.machine.fault_injector(), "backend.set-dma-blocked")
                == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        for (op, info) in ops.iter().zip(&infos) {
            match *op {
                RegionOp::Assign { domain, perms, .. } => {
                    self.apply_assign(info, domain, perms)
                        .expect("geometry validated above; Sanctum assigns cannot fail");
                }
                RegionOp::SetDmaBlocked { blocked, .. } => self.apply_dma(info, blocked),
            }
        }
        // Amortized cost: each assignment updates its region-map entry (two
        // CSR writes), and the whole batch pays one shared commit round (the
        // same two writes a lone assignment pays on top — so a single-op
        // batch costs exactly what `assign_region` charges, scaled(4)).
        let pmp_write = self.machine.cost_model().pmp_write;
        let mut total = pmp_write.scaled(2 * assigns) + pmp_write.scaled(dma_toggles);
        if assigns > 0 {
            total += pmp_write.scaled(2);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::EnclaveId;
    use sanctorum_machine::{FaultInjector, FaultPlan, MachineConfig};

    fn setup() -> (Arc<Machine>, SanctumBackend) {
        let machine = Arc::new(Machine::new(MachineConfig::small()));
        let backend = SanctumBackend::new(Arc::clone(&machine));
        (machine, backend)
    }

    fn enclave(id: u64) -> DomainKind {
        DomainKind::Enclave(EnclaveId::new(id))
    }

    #[test]
    fn region_zero_reserved_for_sm() {
        let (_, backend) = setup();
        assert_eq!(
            backend.region_owner(RegionId::new(0)).unwrap(),
            DomainKind::SecurityMonitor
        );
        assert_eq!(
            backend.region_owner(RegionId::new(1)).unwrap(),
            DomainKind::Untrusted
        );
    }

    #[test]
    fn region_geometry_is_fixed_size() {
        let (machine, backend) = setup();
        let regions = backend.regions();
        assert_eq!(regions.len(), machine.config().num_regions());
        let size = machine.config().dram_region_size as u64;
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.len, size);
            assert_eq!(
                r.base.as_u64(),
                machine.config().memory_base.as_u64() + i as u64 * size
            );
            assert!(r.cache_isolated);
        }
    }

    #[test]
    fn region_of_maps_addresses() {
        let (machine, backend) = setup();
        let base = machine.config().memory_base;
        let size = machine.config().dram_region_size as u64;
        assert_eq!(backend.region_of(base), Some(RegionId::new(0)));
        assert_eq!(backend.region_of(base.offset(size)), Some(RegionId::new(1)));
        assert_eq!(
            backend.region_of(base.offset(size * 2 + 42)),
            Some(RegionId::new(2))
        );
        assert_eq!(backend.region_of(PhysAddr::new(0)), None);
    }

    #[test]
    fn assignment_enforced_by_machine_access_checks() {
        let (machine, mut backend) = setup();
        let region = RegionId::new(2);
        backend.assign_region(region, enclave(7), MemPerms::RWX).unwrap();
        let info = backend.regions()[2];
        assert!(machine.check_access(enclave(7), info.base, MemPerms::RW));
        assert!(!machine.check_access(DomainKind::Untrusted, info.base, MemPerms::READ));
        assert!(backend.dma_blocked(region).unwrap());
        // Reassign back to the OS.
        backend
            .assign_region(region, DomainKind::Untrusted, MemPerms::RWX)
            .unwrap();
        assert!(machine.check_access(DomainKind::Untrusted, info.base, MemPerms::RW));
    }

    #[test]
    fn unknown_region_errors() {
        let (_, mut backend) = setup();
        let bogus = RegionId::new(1000);
        assert!(backend.region_owner(bogus).is_err());
        assert!(backend.assign_region(bogus, DomainKind::Untrusted, MemPerms::RW).is_err());
        assert!(backend.tlb_shootdown(bogus).is_err());
        assert!(backend.flush_region_cache(bogus).is_err());
        assert!(backend.flush(CoreId::new(99), FlushKind::CoreState).is_err());
    }

    #[test]
    fn shared_cache_flush_is_free_on_core_handoff() {
        let (_, mut backend) = setup();
        assert_eq!(
            backend.flush(CoreId::new(0), FlushKind::SharedCachePartition).unwrap(),
            Cycles::ZERO
        );
        assert!(backend.flush(CoreId::new(0), FlushKind::CoreState).unwrap() > Cycles::ZERO);
    }

    #[test]
    fn partition_mapping_is_stable() {
        assert_eq!(SanctumBackend::partition_for(RegionId::new(1)).0, 1);
        assert_eq!(
            SanctumBackend::partition_for(RegionId::new(CACHE_PARTITIONS + 1)).0,
            1
        );
    }

    #[test]
    fn declares_no_capacity_limit() {
        let (_, backend) = setup();
        assert_eq!(backend.capacity(), PlatformCapacity::UNLIMITED);
    }

    #[test]
    fn injected_transient_fault_fails_cleanly_then_recovers() {
        let (machine, mut backend) = setup();
        let region = RegionId::new(2);
        machine.fault_injector().arm(FaultPlan::FailOp {
            site: Some("backend.assign-region"),
            times: 2,
        });
        for _ in 0..2 {
            let err = backend.assign_region(region, enclave(9), MemPerms::RWX).unwrap_err();
            assert_eq!(err, IsolationError::TransientFault);
            // The failed assignment mutated nothing: still OS-owned.
            assert_eq!(backend.region_owner(region).unwrap(), DomainKind::Untrusted);
        }
        // Third attempt: the fault budget is exhausted.
        backend.assign_region(region, enclave(9), MemPerms::RWX).unwrap();
        assert_eq!(backend.region_owner(region).unwrap(), enclave(9));
        machine.fault_injector().disarm();
    }

    #[test]
    fn disarmed_injector_does_not_perturb_the_backend() {
        let (machine, mut backend) = setup();
        let _: &FaultInjector = machine.fault_injector();
        backend.assign_region(RegionId::new(1), enclave(3), MemPerms::RW).unwrap();
        assert_eq!(machine.fault_injector().crossings(), 0);
    }

    #[test]
    fn dma_block_toggle() {
        let (_, mut backend) = setup();
        let region = RegionId::new(3);
        backend.assign_region(region, enclave(1), MemPerms::RW).unwrap();
        assert!(backend.dma_blocked(region).unwrap());
        backend.set_dma_blocked(region, false).unwrap();
        assert!(!backend.dma_blocked(region).unwrap());
    }

    #[test]
    fn batch_applies_like_singles_with_single_op_cost_parity() {
        let (machine, mut backend) = setup();
        let cost = backend
            .apply_batch(&[
                RegionOp::Assign {
                    region: RegionId::new(2),
                    domain: enclave(4),
                    perms: MemPerms::RWX,
                },
                RegionOp::SetDmaBlocked {
                    region: RegionId::new(2),
                    blocked: true,
                },
            ])
            .unwrap();
        assert_eq!(backend.region_owner(RegionId::new(2)).unwrap(), enclave(4));
        assert!(backend.dma_blocked(RegionId::new(2)).unwrap());
        // One assignment in a batch costs exactly what assign_region charges
        // (plus the DMA toggle's register write).
        let pmp = machine.cost_model().pmp_write;
        assert_eq!(cost, pmp.scaled(4) + pmp);
    }

    #[test]
    fn batch_amortizes_the_commit_round_across_assignments() {
        let (machine, mut backend) = setup();
        let ops: Vec<RegionOp> = (1..=3)
            .map(|i| RegionOp::Assign {
                region: RegionId::new(i),
                domain: enclave(u64::from(i)),
                perms: MemPerms::RWX,
            })
            .collect();
        let batched = backend.apply_batch(&ops).unwrap();
        let single = machine.cost_model().pmp_write.scaled(4);
        assert!(
            batched < single.scaled(3),
            "three batched assignments ({batched}) must undercut three singles"
        );
        for i in 1..=3u32 {
            assert_eq!(
                backend.region_owner(RegionId::new(i)).unwrap(),
                enclave(u64::from(i))
            );
        }
    }

    #[test]
    fn faulted_batch_mutates_nothing() {
        use sanctorum_machine::FaultPlan;
        let (machine, mut backend) = setup();
        machine.fault_injector().arm(FaultPlan::FailOp {
            site: Some("backend.assign-region"),
            times: 1,
        });
        let err = backend
            .apply_batch(&[
                RegionOp::Assign {
                    region: RegionId::new(1),
                    domain: enclave(1),
                    perms: MemPerms::RWX,
                },
                RegionOp::Assign {
                    region: RegionId::new(2),
                    domain: enclave(1),
                    perms: MemPerms::RWX,
                },
            ])
            .unwrap_err();
        assert_eq!(err, IsolationError::TransientFault);
        for i in 1..=2u32 {
            assert_eq!(
                backend.region_owner(RegionId::new(i)).unwrap(),
                DomainKind::Untrusted,
                "a faulted batch must leave every region untouched"
            );
        }
        machine.fault_injector().disarm();
    }

    #[test]
    fn batch_with_unknown_region_is_rejected_upfront() {
        let (_, mut backend) = setup();
        let err = backend
            .apply_batch(&[
                RegionOp::Assign {
                    region: RegionId::new(1),
                    domain: enclave(1),
                    perms: MemPerms::RWX,
                },
                RegionOp::SetDmaBlocked {
                    region: RegionId::new(1000),
                    blocked: true,
                },
            ])
            .unwrap_err();
        assert!(matches!(err, IsolationError::UnknownRegion(_)));
        assert_eq!(
            backend.region_owner(RegionId::new(1)).unwrap(),
            DomainKind::Untrusted,
            "validation precedes every mutation"
        );
    }
}
