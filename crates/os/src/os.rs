//! The honest untrusted-OS model: enclave loading, scheduling and teardown
//! through the SM API, plus the Fig. 1 event loop.

use crate::system::System;
use sanctorum_core::api::SmApi;
use sanctorum_core::dispatch::EventOutcome;
use sanctorum_core::error::{SmError, SmResult};
use sanctorum_core::measurement::Measurement;
use sanctorum_core::monitor::SecurityMonitor;
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_core::session::CallerSession;
use sanctorum_core::thread::ThreadId;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use sanctorum_hal::cycles::Cycles;
use sanctorum_hal::domain::{CoreId, DomainKind, EnclaveId};
use sanctorum_hal::isolation::RegionId;
use sanctorum_machine::guest::{ExitReason, GuestProgram};
use sanctorum_machine::trap::TrapCause;
use sanctorum_machine::Machine;
use sanctorum_trust::Tainted;
use std::collections::HashMap;
use std::sync::Arc;

/// The result of loading an enclave image through the SM API.
#[derive(Debug, Clone)]
pub struct BuiltEnclave {
    /// The enclave id assigned by the SM.
    pub eid: EnclaveId,
    /// The finalized measurement returned by `init_enclave`.
    pub measurement: Measurement,
    /// Thread ids, in image order.
    pub threads: Vec<ThreadId>,
    /// The regions dedicated to this enclave.
    pub regions: Vec<RegionId>,
    /// Guest programs for each thread.
    programs: HashMap<ThreadId, GuestProgram>,
    /// Cycles the machine charged while building (load + measurement cost).
    pub build_cycles: Cycles,
}

impl BuiltEnclave {
    /// Returns the guest program of thread `tid`.
    pub fn program(&self, tid: ThreadId) -> Option<&GuestProgram> {
        self.programs.get(&tid)
    }

    /// The first (main) thread.
    pub fn main_thread(&self) -> ThreadId {
        self.threads[0]
    }
}

/// Why a scheduled enclave thread stopped running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadRunOutcome {
    /// The enclave exited voluntarily through the SM.
    Exited {
        /// Cycles consumed while the thread ran (guest work only).
        cycles: Cycles,
    },
    /// The OS interrupted the enclave; the SM performed an AEX and the thread
    /// can be re-entered to resume.
    Interrupted {
        /// The interrupt that caused the de-schedule.
        cause: TrapCause,
    },
    /// The enclave faulted without a handler; the SM performed an AEX.
    Faulted {
        /// The faulting cause delegated to the OS.
        cause: TrapCause,
    },
    /// The step budget ran out; the OS forced an AEX to reclaim the core.
    Preempted,
}

/// The honest OS model.
#[derive(Debug)]
pub struct Os {
    machine: Arc<Machine>,
    monitor: Arc<SecurityMonitor>,
    /// Regions currently owned by the OS and free for dedication to enclaves.
    free_regions: Vec<RegionId>,
    /// Base of the staging area (OS memory used to stage enclave page images
    /// before `load_page` copies them in).
    staging_base: PhysAddr,
}

impl Os {
    /// Creates the OS model for a booted system.
    ///
    /// The last untrusted-owned region is kept by the OS as its own working
    /// memory (staging area); the remaining untrusted regions form the free
    /// pool dedicated to enclaves.
    pub fn new(system: &System) -> Self {
        let monitor = Arc::clone(&system.monitor);
        let machine = Arc::clone(&system.machine);
        let config = machine.config();
        let mut untrusted: Vec<RegionId> = (0..config.num_regions() as u32)
            .map(RegionId::new)
            .filter(|r| {
                matches!(
                    monitor.resource_state(ResourceId::Region(*r)),
                    Ok(ResourceState::Owned(DomainKind::Untrusted))
                )
            })
            .collect();
        let staging_region = untrusted.pop().expect("at least one untrusted region");
        let staging_base = config
            .memory_base
            .offset((staging_region.index() * config.dram_region_size) as u64);
        Self {
            machine,
            monitor,
            free_regions: untrusted,
            staging_base,
        }
    }

    /// Returns the monitor handle.
    pub fn monitor(&self) -> &Arc<SecurityMonitor> {
        &self.monitor
    }

    /// Returns the number of regions still available for enclaves.
    pub fn free_region_count(&self) -> usize {
        self.free_regions.len()
    }

    /// The free pool itself, in allocation order. The pool is a stack —
    /// `build_enclave` takes from the back — so the *order* of entries, not
    /// just their set, determines which region the next build receives.
    /// Model-state fingerprints must therefore fold the sequence as-is.
    pub fn free_regions(&self) -> &[RegionId] {
        &self.free_regions
    }

    /// Returns the base address of the OS staging area.
    pub fn staging_base(&self) -> PhysAddr {
        self.staging_base
    }

    /// Takes `count` regions from the free pool and moves them through the
    /// Fig. 2 transitions (block → clean) so they are *available* for
    /// `create_enclave`.
    ///
    /// # Errors
    ///
    /// Fails if the pool is too small or an SM transition is rejected.
    pub fn reserve_regions(&mut self, count: usize) -> SmResult<Vec<RegionId>> {
        if self.free_regions.len() < count {
            return Err(SmError::OutOfResources {
                resource: "untrusted memory regions",
            });
        }
        let os = CallerSession::os();
        let mut reserved = Vec::with_capacity(count);
        for _ in 0..count {
            let region = self.free_regions.pop().expect("checked length");
            self.monitor
                .block_resource(os, ResourceId::Region(region))?;
            self.monitor
                .clean_resource(os, ResourceId::Region(region))?;
            reserved.push(region);
        }
        Ok(reserved)
    }

    /// Loads an enclave image: reserves regions, creates the enclave,
    /// allocates its page tables, loads every page and thread, and seals it.
    ///
    /// # Errors
    ///
    /// Propagates any SM API error; on failure the partially built enclave is
    /// left for the caller to clean up (as a real OS would have to).
    pub fn build_enclave(&mut self, image: &EnclaveImage, regions: usize) -> SmResult<BuiltEnclave> {
        self.build_enclave_mutated(image, regions, |_, _, _| {})
    }

    /// Like [`Os::build_enclave`], but invokes `after_load` with the machine,
    /// the staging address and the page index after every `load_page` call —
    /// a programmable-adversary hook. A malicious OS controls the staging
    /// memory at all times, so mutating it between (or right after) SM calls
    /// is exactly the freedom the threat model grants; the TOCTOU attack of
    /// the adversary battery uses this to overwrite a page the SM has just
    /// accepted and then checks that neither the enclave's contents nor its
    /// measurement moved.
    ///
    /// # Errors
    ///
    /// Propagates any SM API error, exactly as [`Os::build_enclave`].
    pub fn build_enclave_mutated(
        &mut self,
        image: &EnclaveImage,
        regions: usize,
        mut after_load: impl FnMut(&Machine, PhysAddr, usize),
    ) -> SmResult<BuiltEnclave> {
        let cycles_before = self.machine.total_cycles();
        let os = CallerSession::os();
        let reserved = self.reserve_regions(regions)?;
        let eid = self
            .monitor
            .create_enclave(os, image.evrange_base, image.evrange_len, &reserved)?;
        self.monitor.allocate_page_table(os, eid)?;

        for (index, (vaddr, perms, contents)) in image.pages.iter().enumerate() {
            // Stage the page contents in OS memory, then ask the SM to copy
            // them into the enclave.
            let mut page = vec![0u8; PAGE_SIZE];
            let n = contents.len().min(PAGE_SIZE);
            page[..n].copy_from_slice(&contents[..n]);
            self.machine
                .phys_write(self.staging_base, &page)
                .map_err(|_| SmError::Memory)?;
            self.monitor
                .load_page(os, eid, *vaddr, Tainted::new(self.staging_base), *perms)?;
            after_load(&self.machine, self.staging_base, index);
        }

        let mut threads = Vec::new();
        let mut programs = HashMap::new();
        for spec in &image.threads {
            let tid =
                self.monitor
                    .load_thread(os, eid, spec.entry_pc, spec.fault_handler_pc)?;
            threads.push(tid);
            programs.insert(tid, spec.program.clone());
        }

        let measurement = self.monitor.init_enclave(os, eid)?;
        Ok(BuiltEnclave {
            eid,
            measurement,
            threads,
            regions: reserved,
            programs,
            build_cycles: self.machine.total_cycles() - cycles_before,
        })
    }

    /// Schedules thread `tid` of `enclave` on `core` and drives the Fig. 1
    /// event loop until the thread exits, is de-scheduled, or exhausts
    /// `step_budget` guest operations.
    ///
    /// # Errors
    ///
    /// Propagates SM API errors (e.g. entering a thread that is not
    /// runnable).
    pub fn run_thread(
        &mut self,
        enclave: &BuiltEnclave,
        tid: ThreadId,
        core: CoreId,
        step_budget: u64,
    ) -> SmResult<ThreadRunOutcome> {
        let program = enclave
            .program(tid)
            .ok_or(SmError::UnknownThread(tid))?
            .clone();
        self.monitor
            .enter_enclave(CallerSession::os_on(core), enclave.eid, tid)?;

        let mut remaining = step_budget;
        let mut guest_cycles = Cycles::ZERO;
        loop {
            let result = self.machine.run_guest(core, &program, remaining.max(1));
            guest_cycles += result.cycles;
            remaining = remaining.saturating_sub(result.steps);
            match result.exit {
                ExitReason::Completed => {
                    // The program ended without an explicit ExitEnclave call;
                    // perform the voluntary exit on the enclave's behalf. The
                    // session is authenticated from the hart, which still
                    // carries the enclave's domain tag.
                    self.monitor
                        .exit_enclave(self.monitor.authenticate(core))?;
                    return Ok(ThreadRunOutcome::Exited { cycles: guest_cycles });
                }
                ExitReason::Ecall => {
                    let _ = self.monitor.handle_event(core, TrapCause::EnvironmentCall);
                    if !self.machine.hart(core).domain.is_enclave() {
                        // The call context-switched back to the OS
                        // (exit_enclave, or an AEX on its failure path).
                        return Ok(ThreadRunOutcome::Exited { cycles: guest_cycles });
                    }
                    // Otherwise the call completed in place; keep running.
                }
                ExitReason::Trap(cause) => {
                    match self.monitor.handle_event(core, cause) {
                        EventOutcome::DelegateToEnclave { .. } => {
                            // The enclave's own fault handler takes over.
                        }
                        EventOutcome::DelegateToOs { cause, aex_performed } => {
                            debug_assert!(aex_performed);
                            return Ok(if cause.is_interrupt() {
                                ThreadRunOutcome::Interrupted { cause }
                            } else {
                                ThreadRunOutcome::Faulted { cause }
                            });
                        }
                        EventOutcome::SmCallDone { .. } | EventOutcome::IllegalCall => {}
                    }
                }
                ExitReason::OutOfSteps => {
                    // Budget exhausted: the OS reclaims the core by forcing a
                    // de-schedule, exactly as its scheduler tick would.
                    self.monitor.asynchronous_enclave_exit(core)?;
                    return Ok(ThreadRunOutcome::Preempted);
                }
            }
            if remaining == 0 {
                self.monitor.asynchronous_enclave_exit(core)?;
                return Ok(ThreadRunOutcome::Preempted);
            }
        }
    }

    /// Interrupts whatever runs on `core` (the OS scheduler tick) and lets
    /// the SM sort out the AEX; returns `true` if an enclave was de-scheduled.
    ///
    /// # Errors
    ///
    /// Fails only if the interrupt cannot be queued (unknown core).
    pub fn tick(&mut self, core: CoreId) -> SmResult<bool> {
        self.machine
            .raise_interrupt(core, sanctorum_machine::trap::Interrupt::Timer)
            .map_err(|_| SmError::InvalidArgument { reason: "no such core" })?;
        Ok(self.monitor.thread_on_core(core).is_some())
    }

    /// Destroys an enclave and recycles its regions back into the free pool.
    ///
    /// # Errors
    ///
    /// Propagates SM API errors (e.g. the enclave still has running threads).
    pub fn teardown_enclave(&mut self, enclave: &BuiltEnclave) -> SmResult<()> {
        let os = CallerSession::os();
        self.monitor.delete_enclave(os, enclave.eid)?;
        for region in &enclave.regions {
            // delete_enclave left the regions blocked; clean them and take
            // them back.
            self.monitor.clean_resource(os, ResourceId::Region(*region))?;
            self.monitor
                .grant_resource(os, ResourceId::Region(*region), DomainKind::Untrusted)?;
            self.free_regions.push(*region);
        }
        Ok(())
    }

    /// Pushes a region the OS has re-acquired through raw Fig. 2 calls
    /// (clean + grant outside `teardown_enclave`) back onto the free pool.
    pub fn return_region(&mut self, region: RegionId) {
        if !self.free_regions.contains(&region) {
            self.free_regions.push(region);
        }
    }

    /// Re-derives the free pool from the monitor's resource map — the OS's
    /// half of crash recovery. A crash can interrupt a multi-call sequence
    /// (teardown, reserve) between the SM calls, leaving the OS's
    /// bookkeeping out of sync with the monitor's: a popped region that was
    /// never blocked, or a cleaned region never pushed back. Entries the
    /// monitor no longer shows as OS-owned are dropped; OS-owned regions
    /// missing from the pool are re-appended in ascending id order (the
    /// surviving prefix keeps its order, so replay determinism holds for
    /// unaffected regions). The staging region never enters the pool.
    pub fn reconcile_free_pool(&mut self) {
        let config = self.machine.config();
        let staging = RegionId::new(
            ((self.staging_base.as_u64() - config.memory_base.as_u64())
                / config.dram_region_size as u64) as u32,
        );
        let monitor = &self.monitor;
        let os_owned = |r: RegionId| {
            matches!(
                monitor.resource_state(ResourceId::Region(r)),
                Ok(ResourceState::Owned(DomainKind::Untrusted))
            )
        };
        self.free_regions.retain(|r| os_owned(*r));
        for index in 0..config.num_regions() as u32 {
            let region = RegionId::new(index);
            if region != staging && os_owned(region) && !self.free_regions.contains(&region) {
                self.free_regions.push(region);
            }
        }
    }

    /// Runs an untrusted (non-enclave) workload on `core` with physical
    /// addressing — used by benchmarks needing an OS-side baseline.
    pub fn run_untrusted(&mut self, core: CoreId, program: &GuestProgram, steps: u64) -> ExitReason {
        self.machine.install_context(
            core,
            DomainKind::Untrusted,
            sanctorum_machine::hart::PrivilegeLevel::Supervisor,
            None,
            0,
        );
        self.machine.run_guest(core, program, steps).exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PlatformKind;
    use sanctorum_machine::guest::REG_A0;

    fn setup(platform: PlatformKind) -> (System, Os) {
        let system = System::boot_small(platform);
        let os = Os::new(&system);
        (system, os)
    }

    #[test]
    fn build_run_teardown_on_both_platforms() {
        for platform in PlatformKind::ALL {
            let (system, mut os) = setup(platform);
            let built = os.build_enclave(&EnclaveImage::hello(0xfeed), 1).unwrap();
            assert_eq!(built.threads.len(), 1);

            let outcome = os
                .run_thread(&built, built.main_thread(), CoreId::new(0), 10_000)
                .unwrap();
            assert!(matches!(outcome, ThreadRunOutcome::Exited { .. }), "{platform:?}");
            // The secret the enclave loaded back into a0 was wiped by the
            // exit path (core cleaning), so the OS cannot see it.
            assert_eq!(system.machine.hart(CoreId::new(0)).regs[REG_A0 as usize], 0);

            os.teardown_enclave(&built).unwrap();
            assert_eq!(os.free_region_count(), system.machine.config().num_regions() - 2);
        }
    }

    #[test]
    fn enclave_memory_unreadable_by_os_while_alive_and_zeroed_after() {
        let (system, mut os) = setup(PlatformKind::Sanctum);
        let built = os.build_enclave(&EnclaveImage::hello(0xdead_beef), 1).unwrap();
        os.run_thread(&built, built.main_thread(), CoreId::new(0), 10_000)
            .unwrap();

        // Locate the enclave's physical window (its region base).
        let region = built.regions[0];
        let base = system
            .machine
            .config()
            .memory_base
            .offset((region.index() * system.machine.config().dram_region_size) as u64);
        // The OS cannot access it while the enclave exists.
        assert!(!system.machine.check_access(
            DomainKind::Untrusted,
            base,
            sanctorum_hal::perm::MemPerms::READ
        ));
        // After teardown (delete + clean + grant) the memory is OS-owned
        // again and has been zeroed.
        os.teardown_enclave(&built).unwrap();
        assert!(system.machine.check_access(
            DomainKind::Untrusted,
            base,
            sanctorum_hal::perm::MemPerms::READ
        ));
        let mut buf = vec![0u8; 4096];
        system.machine.phys_read(base, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "enclave memory must be scrubbed");
    }

    #[test]
    fn preemption_and_resumption() {
        let (_system, mut os) = setup(PlatformKind::Sanctum);
        let built = os.build_enclave(&EnclaveImage::spinner(), 1).unwrap();
        let tid = built.main_thread();
        // A small step budget forces preemption.
        let outcome = os.run_thread(&built, tid, CoreId::new(0), 16).unwrap();
        assert_eq!(outcome, ThreadRunOutcome::Preempted);
        let info = os.monitor().thread_info(tid).unwrap();
        assert!(info.aex_pending, "AEX state must be saved");
        // Resume and preempt again — the thread keeps its state.
        let outcome = os.run_thread(&built, tid, CoreId::new(0), 16).unwrap();
        assert_eq!(outcome, ThreadRunOutcome::Preempted);
    }

    #[test]
    fn faulting_enclave_is_aexed_and_fault_handler_variant_recovers() {
        let (_system, mut os) = setup(PlatformKind::Keystone);
        let faulting = os.build_enclave(&EnclaveImage::faulting(), 1).unwrap();
        let outcome = os
            .run_thread(&faulting, faulting.main_thread(), CoreId::new(0), 1000)
            .unwrap();
        assert!(matches!(outcome, ThreadRunOutcome::Faulted { .. }));

        let handled = os.build_enclave(&EnclaveImage::fault_handling(), 1).unwrap();
        let outcome = os
            .run_thread(&handled, handled.main_thread(), CoreId::new(1), 1000)
            .unwrap();
        assert!(matches!(outcome, ThreadRunOutcome::Exited { .. }));
    }

    #[test]
    fn identical_images_measure_identically_across_platforms_and_placements() {
        let (_s1, mut os1) = setup(PlatformKind::Sanctum);
        let (_s2, mut os2) = setup(PlatformKind::Keystone);
        let a = os1.build_enclave(&EnclaveImage::hello(1), 1).unwrap();
        let b = os1.build_enclave(&EnclaveImage::hello(1), 1).unwrap();
        let c = os2.build_enclave(&EnclaveImage::hello(1), 1).unwrap();
        // Same image, different physical regions (and even platforms): same
        // measurement. A different image measures differently.
        assert_eq!(a.measurement, b.measurement);
        assert_eq!(a.measurement, c.measurement);
        let d = os1.build_enclave(&EnclaveImage::hello(2), 1).unwrap();
        assert_ne!(a.measurement, d.measurement);
    }

    #[test]
    fn out_of_regions_reported() {
        let (_system, mut os) = setup(PlatformKind::Sanctum);
        let available = os.free_region_count();
        let err = os.build_enclave(&EnclaveImage::hello(1), available + 1).unwrap_err();
        assert!(matches!(err, SmError::OutOfResources { .. }));
    }
}
