//! The secure session established after successful attestation
//! (Fig. 7 step ⑩), and the sharded pool a verifier-side service keeps
//! them in.
//!
//! A [`SecureSession`] enforces strict message ordering in both directions:
//! `seal` derives each nonce from a send counter, and `open` rejects any
//! authenticated message whose counter is not the next one expected
//! ([`OpenError::OutOfOrder`]) — replayed and reordered traffic fails even
//! though the underlying `SecretBox` would authenticate it.
//!
//! A [`SessionPool`] is shared-state concurrent: sessions are interleaved
//! across index-selected shards, each under an [`OrderedMutex`] at
//! [`rank::VERIFIER_SESSION_SHARD`], so many verifier threads can file and
//! use sessions for different clients without contending on one map.

use sanctorum_core::lockorder::{rank, OrderedMutex};
use sanctorum_crypto::secretbox::{OpenError, SecretBox, NONCE_LEN};
use std::collections::BTreeMap;

/// An authenticated-encryption session keyed by the attested key agreement.
///
/// Both sides derive the same two directional keys from the shared secret;
/// message nonces are derived from a per-direction counter, so each side must
/// use its own `seal` counter and accept the peer's **in order**.
#[derive(Debug)]
pub struct SecureSession {
    sealer: SecretBox,
    send_counter: u64,
    recv_counter: u64,
}

impl SecureSession {
    /// Derives a session from the X25519 shared secret and the attestation
    /// nonce (which both sides know and which binds the session to this
    /// attestation exchange).
    pub fn new(shared_secret: &[u8; 32], attestation_nonce: &[u8; 32]) -> Self {
        let mut context = Vec::with_capacity(64);
        context.extend_from_slice(b"sanctorum-attested-session-v1");
        context.extend_from_slice(attestation_nonce);
        Self {
            sealer: SecretBox::derive(shared_secret, &context),
            send_counter: 0,
            recv_counter: 0,
        }
    }

    /// Seals an application message under the next send-counter nonce.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&self.send_counter.to_le_bytes());
        self.send_counter += 1;
        self.sealer.seal(&nonce, plaintext)
    }

    /// Opens a message sealed by the peer, enforcing strict ordering.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`OpenError`] if authentication fails, and
    /// [`OpenError::OutOfOrder`] if the message authenticates but its
    /// counter is not the next one this session expects — a replayed or
    /// reordered message never advances the session.
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, OpenError> {
        let plaintext = self.sealer.open(sealed)?;
        // Authenticated, so the leading nonce bytes are the peer's counter
        // as sealed (the tag covers them). Only the expected counter opens.
        let mut counter_bytes = [0u8; 8];
        counter_bytes.copy_from_slice(&sealed[..8]);
        let counter = u64::from_le_bytes(counter_bytes);
        let padding_clean = sealed[8..NONCE_LEN].iter().all(|&b| b == 0);
        if counter != self.recv_counter || !padding_clean {
            return Err(OpenError::OutOfOrder);
        }
        self.recv_counter += 1;
        Ok(plaintext)
    }

    /// Number of messages sealed so far.
    pub fn messages_sent(&self) -> u64 {
        self.send_counter
    }

    /// Number of messages opened (accepted in order) so far.
    pub fn messages_received(&self) -> u64 {
        self.recv_counter
    }
}

/// What [`SessionPool::insert`] did with the previous state for the client.
///
/// A `Replaced` outcome means a *live* session was silently displaced — the
/// session-fixation shape the attestation workloads assert never happens by
/// accident (a client tag must be removed before it may be re-attested, or
/// the caller explicitly expected the replacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// No session existed for the client; the pool grew by one.
    Fresh,
    /// A live session for the same client was dropped and replaced.
    Replaced,
}

impl InsertOutcome {
    /// `true` for [`InsertOutcome::Fresh`].
    pub fn is_fresh(self) -> bool {
        matches!(self, InsertOutcome::Fresh)
    }
}

/// How many shards a default-constructed pool interleaves sessions across.
pub const SESSION_POOL_SHARDS: usize = 16;

/// A concurrent pool of established sessions keyed by a caller-chosen client
/// tag (the attestation-service workload uses the client's enclave id).
///
/// Sessions are interleaved across shards by client tag; every shard lock is
/// an [`OrderedMutex`] at [`rank::VERIFIER_SESSION_SHARD`], and only one
/// shard is ever held at a time, so pool operations from many verifier
/// threads compose with the lock-order discipline.
#[derive(Debug)]
pub struct SessionPool {
    // lock rank: rank::VERIFIER_SESSION_SHARD (one shard at a time)
    shards: Vec<OrderedMutex<BTreeMap<u64, SecureSession>>>,
}

impl Default for SessionPool {
    fn default() -> Self {
        Self::with_shards(SESSION_POOL_SHARDS)
    }
}

impl SessionPool {
    /// Creates an empty pool with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool interleaved across `shards` shards (≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| OrderedMutex::new(rank::VERIFIER_SESSION_SHARD, BTreeMap::new()))
                .collect(),
        }
    }

    fn shard(&self, client: u64) -> &OrderedMutex<BTreeMap<u64, SecureSession>> {
        &self.shards[(client % self.shards.len() as u64) as usize]
    }

    /// Stores the session established for `client`, reporting whether a live
    /// session was displaced.
    pub fn insert(&self, client: u64, session: SecureSession) -> InsertOutcome {
        match self.shard(client).lock().insert(client, session) {
            None => InsertOutcome::Fresh,
            Some(_) => InsertOutcome::Replaced,
        }
    }

    /// Runs `f` over the live session for `client`, if any. The closure runs
    /// under the client's shard lock, so traffic for one client is serialized
    /// while traffic for other clients proceeds on other shards.
    pub fn with_session<R>(&self, client: u64, f: impl FnOnce(&mut SecureSession) -> R) -> Option<R> {
        self.shard(client).lock().get_mut(&client).map(f)
    }

    /// Drops `client`'s session (e.g. after its enclave is torn down).
    pub fn remove(&self, client: u64) -> Option<SecureSession> {
        self.shard(client).lock().remove(&client)
    }

    /// Number of live sessions (sums the shards; a racing insert may or may
    /// not be counted, as with any concurrent size probe).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` if no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_interoperate() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[1; 32]);
        let sealed = a.seal(b"hello enclave");
        assert_eq!(b.open(&sealed).expect("opens"), b"hello enclave");
        assert_eq!(a.messages_sent(), 1);
        assert_eq!(b.messages_received(), 1);
    }

    #[test]
    fn different_attestation_nonce_separates_sessions() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[2; 32]);
        let sealed = a.seal(b"hello");
        assert!(b.open(&sealed).is_err());
    }

    #[test]
    fn tampered_traffic_rejected() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[1; 32]);
        let mut sealed = a.seal(b"hello");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(b.open(&sealed).is_err());
    }

    #[test]
    fn counter_advances_nonces() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let s1 = a.seal(b"same");
        let s2 = a.seal(b"same");
        assert_ne!(s1, s2);
    }

    #[test]
    fn replayed_message_rejected() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[1; 32]);
        let sealed = a.seal(b"once");
        assert!(b.open(&sealed).is_ok());
        assert_eq!(b.open(&sealed), Err(OpenError::OutOfOrder));
        // The replay did not advance the session: the next message opens.
        let next = a.seal(b"twice");
        assert_eq!(b.open(&next).expect("opens"), b"twice");
    }

    #[test]
    fn out_of_order_message_rejected() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[1; 32]);
        let first = a.seal(b"first");
        let second = a.seal(b"second");
        assert_eq!(b.open(&second), Err(OpenError::OutOfOrder));
        // Delivery in order still works after the reorder was rejected.
        assert_eq!(b.open(&first).expect("opens"), b"first");
        assert_eq!(b.open(&second).expect("opens"), b"second");
    }

    #[test]
    fn pool_insert_reports_fresh_and_replaced() {
        let pool = SessionPool::new();
        assert_eq!(
            pool.insert(7, SecureSession::new(&[1; 32], &[1; 32])),
            InsertOutcome::Fresh
        );
        assert_eq!(
            pool.insert(7, SecureSession::new(&[2; 32], &[2; 32])),
            InsertOutcome::Replaced
        );
        assert!(pool.remove(7).is_some());
        assert_eq!(
            pool.insert(7, SecureSession::new(&[3; 32], &[3; 32])),
            InsertOutcome::Fresh
        );
    }

    #[test]
    fn pool_shards_interleave_and_count() {
        let pool = SessionPool::with_shards(4);
        for client in 0..64u64 {
            assert!(pool
                .insert(client, SecureSession::new(&[9; 32], &[client as u8; 32]))
                .is_fresh());
        }
        assert_eq!(pool.len(), 64);
        // Traffic through the pool accessor round-trips per client.
        let mut peer = SecureSession::new(&[9; 32], &[5u8; 32]);
        let sealed = peer.seal(b"to client 5");
        let opened = pool
            .with_session(5, |session| session.open(&sealed))
            .expect("session exists")
            .expect("opens");
        assert_eq!(opened, b"to client 5");
        assert_eq!(pool.remove(5).expect("removes").messages_received(), 1);
        assert_eq!(pool.len(), 63);
        assert!(pool.with_session(5, |_| ()).is_none());
    }

    #[test]
    fn concurrent_inserts_land_once_each() {
        use std::sync::Arc;
        let pool = Arc::new(SessionPool::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut fresh = 0usize;
                for i in 0..256u64 {
                    let client = t * 256 + i;
                    if pool
                        .insert(client, SecureSession::new(&[9; 32], &[t as u8; 32]))
                        .is_fresh()
                    {
                        fresh += 1;
                    }
                }
                fresh
            }));
        }
        let fresh: usize = handles.into_iter().map(|h| h.join().expect("joins")).sum();
        assert_eq!(fresh, 4 * 256);
        assert_eq!(pool.len(), 4 * 256);
    }
}
