//! Concurrent execution mode: per-hart op streams on real OS threads
//! against one shared monitor.
//!
//! The deterministic explorer interleaves *logical* hart streams from a
//! single host thread — perfect for replay and shrinking, but it can never
//! catch a data race or a lock-ordering mistake, because only one thread
//! ever touches the monitor. This module adds the missing axis: `N` host
//! threads, each owning a disjoint slice of machine regions, hammer the
//! same [`SecurityMonitor`] simultaneously with seeded (per-worker
//! deterministic) streams of SM calls, retrying on
//! [`SmError::ConcurrentCall`] exactly as a real OS would. Between rounds
//! every worker parks on a barrier and a caller-supplied check runs at the
//! quiescent point — the explorer uses that hook for invariant audits
//! (audit ≡ audit_full, exclusivity, mail-quota conservation).
//!
//! The single-threaded deterministic mode is untouched: this driver is a
//! separate front door over the same monitor, so differential/replay work
//! keeps its bit-for-bit guarantees while the soak and the scaling bench
//! get true multi-hart parallelism.
//!
//! Workers deliberately avoid guest execution (no `run_thread`): the
//! workload targets the monitor's metadata surface — the paths the giant
//! lock used to serialize — and the full enclave lifecycle is reachable
//! without loading data pages (create → allocate page tables → load thread
//! → init → mail → delete → clean).

use crate::system::System;
use sanctorum_core::api::SmApi;
use sanctorum_core::error::SmError;
use sanctorum_core::monitor::{PublicField, SecurityMonitor};
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_core::session::CallerSession;
use sanctorum_hal::addr::VirtAddr;
use sanctorum_hal::domain::{DomainKind, EnclaveId};
use sanctorum_hal::isolation::RegionId;
use sanctorum_trust::Tainted;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Which op mix the workers drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadProfile {
    /// Read-dominated traffic: public-field reads and mailbox probes
    /// against a pre-built enclave per worker (the paper's GetState/attest
    /// shape). Under the giant lock every one of these serializes; under
    /// fine-grained locking the field reads take no lock at all and the
    /// probes touch only the worker's own enclave.
    ReadMostly,
    /// Mutation-heavy traffic: full enclave lifecycle churn (create →
    /// page tables → thread → init → mail round-trip → delete → clean)
    /// plus raw region block/clean cycles, all on the worker's own regions.
    MixedMutation,
}

impl WorkloadProfile {
    /// Short name for reports and JSON.
    pub const fn name(self) -> &'static str {
        match self {
            WorkloadProfile::ReadMostly => "read_mostly",
            WorkloadProfile::MixedMutation => "mixed_mutation",
        }
    }
}

/// Configuration of one concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Number of OS threads (workers).
    pub threads: usize,
    /// Quiescent rounds; the `at_quiescence` hook runs after each.
    pub rounds: usize,
    /// Workload steps per worker per round.
    pub ops_per_round: usize,
    /// The op mix.
    pub profile: WorkloadProfile,
    /// Seed; worker `w` derives its own independent stream from it.
    pub seed: u64,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            rounds: 4,
            ops_per_round: 200,
            profile: WorkloadProfile::MixedMutation,
            seed: 0xc0c0,
        }
    }
}

/// Aggregate counters of one concurrent run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcurrentStats {
    /// Workload steps completed across all workers (one step may issue
    /// several SM calls).
    pub steps: u64,
    /// SM API calls issued, including retried attempts.
    pub sm_calls: u64,
    /// [`SmError::ConcurrentCall`] rejections that were retried.
    pub retries: u64,
    /// [`SmError::Again`] transient faults that were retried (bounded by
    /// [`Worker::AGAIN_RETRY_BUDGET`] per call).
    pub transient_retries: u64,
}

impl ConcurrentStats {
    /// Contention retries per committed workload step: how many times, on
    /// average, a step's calls bounced off [`SmError::ConcurrentCall`] before
    /// landing. This is the scaling bench's contention metric — fine-grained
    /// locking should drive it toward zero as workers stop colliding on
    /// shared locks, while the giant lock (which rejects nothing and blocks
    /// instead) trivially reports zero. Zero when no step committed.
    pub fn retry_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.retries as f64 / self.steps as f64
        }
    }
}

/// SplitMix64 — the same generator family the explorer's trace streams use,
/// so worker streams are deterministic functions of `(seed, worker)`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One worker's context: its identity, region slice and counters.
struct Worker<'m> {
    monitor: &'m SecurityMonitor,
    /// Regions this worker owns exclusively (disjoint across workers).
    regions: Vec<RegionId>,
    /// PRNG state.
    rng: u64,
    /// The worker's live enclave, if any (Mixed keeps at most one in
    /// flight; ReadMostly keeps one for the whole run).
    enclave: Option<EnclaveId>,
    calls: u64,
    retries: u64,
    transient_retries: u64,
}

impl Worker<'_> {
    /// How many [`SmError::Again`] rejections one call absorbs before the
    /// error is surfaced to the caller. `ConcurrentCall` is retried
    /// unboundedly (the other party's transaction *will* finish); a
    /// transient fault carries no such guarantee — a persistently failing
    /// backend quarantines the region, and only `recover()` can clear it —
    /// so the retry discipline must be bounded or a worker livelocks.
    const AGAIN_RETRY_BUDGET: u32 = 8;

    /// Issues one SM call through `f`, retrying on `ConcurrentCall` (the
    /// contract fine-grained locking imposes on every caller) and, a
    /// bounded number of times, on the transient-fault `Again`. Spins at
    /// most a bounded number of times before yielding the host thread, so
    /// an oversubscribed host (more workers than cores) keeps making
    /// progress.
    fn call<T>(&mut self, mut f: impl FnMut(&SecurityMonitor) -> Result<T, SmError>) -> Result<T, SmError> {
        let mut spins = 0u32;
        let mut transient = 0u32;
        loop {
            self.calls += 1;
            match f(self.monitor) {
                Err(SmError::ConcurrentCall) => {
                    self.retries += 1;
                    spins += 1;
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                Err(SmError::Again) if transient < Self::AGAIN_RETRY_BUDGET => {
                    transient += 1;
                    self.transient_retries += 1;
                    // Deterministic exponential backoff: `2^k` spin hints,
                    // no clocks and no host-scheduler dependence, so a
                    // replayed run issues exactly the same call sequence.
                    for _ in 0..(1u32 << transient.min(10)) {
                        std::hint::spin_loop();
                    }
                }
                other => return other,
            }
        }
    }

    /// Builds a full enclave (no data pages) on `region` and returns its id.
    fn build_enclave(&mut self, region: RegionId) -> Result<EnclaveId, SmError> {
        let os = CallerSession::os();
        let eid = self.call(|m| {
            m.create_enclave(os, VirtAddr::new(0x10_0000), 0x4000, &[region])
        })?;
        self.call(|m| m.allocate_page_table(os, eid))?;
        self.call(|m| m.load_thread(os, eid, 0x10_0000, None))?;
        self.call(|m| m.init_enclave(os, eid))?;
        Ok(eid)
    }

    /// Tears the worker's enclave down and recycles its region to
    /// *Available* (ready for the next build).
    fn teardown_enclave(&mut self, eid: EnclaveId, region: RegionId) -> Result<(), SmError> {
        let os = CallerSession::os();
        self.call(|m| m.delete_enclave(os, eid))?;
        self.call(|m| m.clean_resource(os, ResourceId::Region(region)))?;
        Ok(())
    }

    /// One read-mostly step.
    fn step_read_mostly(&mut self) -> Result<(), SmError> {
        let os = CallerSession::os();
        let draw = splitmix(&mut self.rng);
        match draw % 4 {
            // Public-field reads: the lock-free fast path.
            0..=2 => {
                let field = PublicField::from_selector(draw >> 2 & 0x3).expect("selector in range");
                let _ = self.call(|m| {
                    Ok::<_, SmError>(m.get_field(os, field))
                })?;
            }
            // Mailbox probe on the worker's own enclave.
            _ => {
                let eid = self.enclave.expect("read-mostly workers keep one enclave");
                let session = CallerSession::enclave(eid);
                let _ = self.call(|m| m.peek_mail(session, 0))?;
            }
        }
        Ok(())
    }

    /// One mixed-mutation step: a slice of the lifecycle state machine.
    fn step_mixed(&mut self) -> Result<(), SmError> {
        let os = CallerSession::os();
        let draw = splitmix(&mut self.rng);
        let region = self.regions[(draw % self.regions.len() as u64) as usize];
        match self.enclave {
            None => {
                // Make the region Available if it is still OS-owned, then
                // build. Out-of-protocol states (already blocked, already
                // available) are tolerated exactly as a raw caller must.
                match self.call(|m| m.resource_state(ResourceId::Region(region)))? {
                    ResourceState::Owned(DomainKind::Untrusted) => {
                        self.call(|m| m.block_resource(os, ResourceId::Region(region)))?;
                        self.call(|m| m.clean_resource(os, ResourceId::Region(region)))?;
                    }
                    ResourceState::Blocked(_) => {
                        self.call(|m| m.clean_resource(os, ResourceId::Region(region)))?;
                    }
                    ResourceState::Available => {}
                    ResourceState::Owned(_) => return Ok(()),
                }
                self.enclave = Some(self.build_enclave(region)?);
            }
            Some(eid) => {
                if draw & 0x4 != 0 {
                    // Mail round-trip against the worker's own enclave.
                    let session = CallerSession::enclave(eid);
                    self.call(|m| m.accept_mail(session, 0, 0))?;
                    let payload = draw.to_le_bytes();
                    self.call(|m| m.send_mail(os, eid, Tainted::new(&payload)))?;
                    let (bytes, _) = self.call(|m| m.get_mail(session, 0))?;
                    assert_eq!(bytes, payload, "mail round-trip corrupted");
                } else {
                    // The enclave id doubles as its first region's base, so
                    // recover the backing region from the worker's slice.
                    let region = self
                        .regions
                        .iter()
                        .copied()
                        .find(|r| self.enclave_region_matches(*r, eid))
                        .expect("worker enclaves live on worker regions");
                    self.teardown_enclave(eid, region)?;
                    self.enclave = None;
                }
            }
        }
        Ok(())
    }

    /// Whether `region` is the one backing enclave `eid` (enclave ids are
    /// the physical base address of their first window).
    fn enclave_region_matches(&self, region: RegionId, eid: EnclaveId) -> bool {
        let config = self.monitor.machine().config();
        let base = config.memory_base.as_u64()
            + (region.index() * config.dram_region_size) as u64;
        base == eid.as_u64()
    }
}

/// Partitions the untrusted regions round-robin across `threads` workers.
/// With the shard count and a power-of-two worker count, consecutive
/// workers land on disjoint resource shards, so the fine-grained mode's
/// shard locks genuinely never contend between well-behaved workers.
fn partition_regions(system: &System, threads: usize) -> Vec<Vec<RegionId>> {
    let monitor = &system.monitor;
    let config = system.machine.config();
    let untrusted: Vec<RegionId> = (0..config.num_regions() as u32)
        .map(RegionId::new)
        .filter(|r| {
            matches!(
                monitor.resource_state(ResourceId::Region(*r)),
                Ok(ResourceState::Owned(DomainKind::Untrusted))
            )
        })
        .collect();
    let mut slices: Vec<Vec<RegionId>> = vec![Vec::new(); threads];
    for (index, region) in untrusted.into_iter().enumerate() {
        slices[index % threads].push(region);
    }
    slices
}

/// Runs the concurrent workload: spawns `config.threads` workers over
/// `system.monitor`, runs `config.rounds` rounds of `config.ops_per_round`
/// steps each, and calls `at_quiescence(round)` while every worker is
/// parked at the round barrier. Returns the aggregate counters.
///
/// # Errors
///
/// Returns the first error an `at_quiescence` check reports (workers are
/// released and joined before returning), or a worker's description of an
/// SM call that failed with anything other than the retriable
/// `ConcurrentCall`.
///
/// # Panics
///
/// Panics if `config.threads` is zero or exceeds the number of untrusted
/// regions (each worker needs at least one region of its own).
pub fn run_concurrent(
    system: &System,
    config: &ConcurrentConfig,
    mut at_quiescence: impl FnMut(usize) -> Result<(), String>,
) -> Result<ConcurrentStats, String> {
    assert!(config.threads > 0, "at least one worker is required");
    let slices = partition_regions(system, config.threads);
    assert!(
        slices.iter().all(|s| !s.is_empty()),
        "every worker needs at least one region ({} workers over {} untrusted regions)",
        config.threads,
        slices.iter().map(Vec::len).sum::<usize>(),
    );

    let monitor = system.monitor.as_ref();
    let start = Barrier::new(config.threads + 1);
    let done = Barrier::new(config.threads + 1);
    let stop = AtomicBool::new(false);
    let total_steps = AtomicU64::new(0);
    let total_calls = AtomicU64::new(0);
    let total_retries = AtomicU64::new(0);
    let total_transient = AtomicU64::new(0);
    let worker_error = std::sync::Mutex::new(None::<String>);

    let mut check_error = None;
    std::thread::scope(|scope| {
        for (index, regions) in slices.into_iter().enumerate() {
            let start = &start;
            let done = &done;
            let stop = &stop;
            let total_steps = &total_steps;
            let total_calls = &total_calls;
            let total_retries = &total_retries;
            let total_transient = &total_transient;
            let worker_error = &worker_error;
            let config = &config;
            scope.spawn(move || {
                let mut worker = Worker {
                    monitor,
                    regions,
                    rng: config.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1),
                    enclave: None,
                    calls: 0,
                    retries: 0,
                    transient_retries: 0,
                };
                // Read-mostly workers pre-build their enclave and queue one
                // probe-able message before the first round.
                if config.profile == WorkloadProfile::ReadMostly {
                    let setup = (|| -> Result<(), SmError> {
                        let os = CallerSession::os();
                        let region = worker.regions[0];
                        worker.call(|m| m.block_resource(os, ResourceId::Region(region)))?;
                        worker.call(|m| m.clean_resource(os, ResourceId::Region(region)))?;
                        let eid = worker.build_enclave(region)?;
                        let session = CallerSession::enclave(eid);
                        worker.call(|m| m.accept_mail(session, 0, 0))?;
                        worker.call(|m| m.send_mail(os, eid, Tainted::new(b"probe me")))?;
                        worker.enclave = Some(eid);
                        Ok(())
                    })();
                    if let Err(err) = setup {
                        *worker_error.lock().unwrap() =
                            Some(format!("worker {index} setup failed: {err:?}"));
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                // Barrier protocol: `stop` is only ever consulted in the
                // instant after a barrier crossing, and every participant
                // (workers and the coordinator below) checks at the same
                // crossing — the barrier's happens-before edge makes the
                // flag consistent across all of them, so either everyone
                // runs a round or no one does, and nobody is left waiting
                // on a barrier a peer will never reach.
                let mut steps = 0u64;
                loop {
                    start.wait();
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    for _ in 0..config.ops_per_round {
                        let result = match config.profile {
                            WorkloadProfile::ReadMostly => worker.step_read_mostly(),
                            WorkloadProfile::MixedMutation => worker.step_mixed(),
                        };
                        match result {
                            Ok(()) => steps += 1,
                            Err(err) => {
                                *worker_error.lock().unwrap() =
                                    Some(format!("worker {index} step failed: {err:?}"));
                                stop.store(true, Ordering::Relaxed);
                                // Fall through to `done.wait()`: the round
                                // must complete at the barrier even when the
                                // work is abandoned.
                                break;
                            }
                        }
                    }
                    done.wait();
                }
                total_steps.fetch_add(steps, Ordering::Relaxed);
                total_calls.fetch_add(worker.calls, Ordering::Relaxed);
                total_retries.fetch_add(worker.retries, Ordering::Relaxed);
                total_transient.fetch_add(worker.transient_retries, Ordering::Relaxed);
            });
        }

        // Coordinator: mirrors the workers' barrier/stop protocol exactly.
        let mut round = 0usize;
        loop {
            start.wait();
            if stop.load(Ordering::Relaxed) {
                break;
            }
            done.wait();
            // Every worker is parked between `done` and the next `start`:
            // the monitor is quiescent.
            if !stop.load(Ordering::Relaxed) {
                if let Err(err) = at_quiescence(round) {
                    check_error = Some(format!("quiescent check after round {round}: {err}"));
                    stop.store(true, Ordering::Relaxed);
                }
            }
            round += 1;
            if round >= config.rounds {
                stop.store(true, Ordering::Relaxed);
            }
            // The next `start.wait()` releases the workers; they observe
            // `stop` at the same crossing the coordinator does.
        }
    });

    if let Some(err) = check_error {
        return Err(err);
    }
    if let Some(err) = worker_error.into_inner().unwrap() {
        return Err(err);
    }
    Ok(ConcurrentStats {
        steps: total_steps.load(Ordering::Relaxed),
        sm_calls: total_calls.load(Ordering::Relaxed),
        retries: total_retries.load(Ordering::Relaxed),
        transient_retries: total_transient.load(Ordering::Relaxed),
    })
}

/// An explicit interleaving of per-worker steps: entry `k` names the worker
/// that takes global step `k`.
///
/// This is the controlled-scheduler half of the concurrency story. The
/// barrier-driven soak above finds races *probabilistically* — whatever
/// interleaving the host scheduler happens to produce. A `Schedule` pins the
/// interleaving: [`run_scheduled`] hands a turn token from worker to worker
/// in exactly this order, so a short critical window (a grant racing a
/// delete, a clean racing a re-grant) can be explored across **all** of its
/// interleavings deterministically, loom-style, instead of by soak luck.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Schedule {
    order: Vec<usize>,
}

impl Schedule {
    /// Wraps an explicit step order.
    pub fn new(order: Vec<usize>) -> Self {
        Self { order }
    }

    /// The worker index taking each global step.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// How many steps `worker` takes under this schedule.
    pub fn steps_for(&self, worker: usize) -> usize {
        self.order.iter().filter(|&&w| w == worker).count()
    }

    /// Compact label for reports: the worker index of each step, e.g.
    /// `"0101"` for strict alternation of two workers.
    pub fn label(&self) -> String {
        self.order.iter().map(|w| char::from(b'0' + (*w % 10) as u8)).collect()
    }

    /// Every interleaving of `counts[w]` steps per worker, in lexicographic
    /// order (worker 0 preferred early). The count is the multinomial
    /// coefficient — `interleavings(&[3, 3])` yields all 20 orders of a
    /// 3-step window against a 3-step window — so callers keep windows
    /// short.
    pub fn interleavings(counts: &[usize]) -> Vec<Schedule> {
        fn extend(
            remaining: &mut Vec<usize>,
            prefix: &mut Vec<usize>,
            out: &mut Vec<Schedule>,
        ) {
            if remaining.iter().all(|&r| r == 0) {
                out.push(Schedule::new(prefix.clone()));
                return;
            }
            for worker in 0..remaining.len() {
                if remaining[worker] > 0 {
                    remaining[worker] -= 1;
                    prefix.push(worker);
                    extend(remaining, prefix, out);
                    prefix.pop();
                    remaining[worker] += 1;
                }
            }
        }
        let mut out = Vec::new();
        extend(&mut counts.to_vec(), &mut Vec::new(), &mut out);
        out
    }
}

/// Runs one step function per worker on real OS threads, serialized under
/// `schedule`: worker `schedule.order()[k]` executes its next step as global
/// step `k`, alone — a turn token moves through the schedule and only its
/// holder runs. Each worker observes the shared state exactly as the
/// schedule dictates, every thread is a distinct host thread (so the
/// debug-build lock-order checker sees real cross-thread acquisition
/// histories), and the whole run is a deterministic function of
/// `(states, schedule, step)`.
///
/// `step(worker, state, local_step)` is called with the worker's own state
/// and its 0-based step counter. Returns the final worker states in index
/// order.
///
/// # Errors
///
/// Returns the first step error, tagged with its worker and global step;
/// remaining turns are abandoned (every thread is released and joined).
///
/// # Panics
///
/// Panics if the schedule names a worker outside `states`.
pub fn run_scheduled<S: Send>(
    states: Vec<S>,
    schedule: &Schedule,
    step: impl Fn(usize, &mut S, usize) -> Result<(), String> + Sync,
) -> Result<Vec<S>, String> {
    use std::sync::{Condvar, Mutex};
    let workers = states.len();
    assert!(
        schedule.order().iter().all(|&w| w < workers),
        "schedule names worker outside 0..{workers}"
    );
    // The turn token: position in the schedule, plus a poison flag raised on
    // the first error so threads whose turns will never come still exit.
    struct Turn {
        position: usize,
        poisoned: bool,
    }
    let turn = Mutex::new(Turn { position: 0, poisoned: false });
    let turn_moved = Condvar::new();
    let failure = Mutex::new(None::<String>);

    let mut finished: Vec<Option<S>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (worker, mut state) in states.into_iter().enumerate() {
            let order = schedule.order();
            let turn = &turn;
            let turn_moved = &turn_moved;
            let failure = &failure;
            let step = &step;
            handles.push(scope.spawn(move || {
                let mut local_step = 0usize;
                loop {
                    let mut guard = turn.lock().unwrap();
                    while !guard.poisoned
                        && guard.position < order.len()
                        && order[guard.position] != worker
                    {
                        guard = turn_moved.wait(guard).unwrap();
                    }
                    if guard.poisoned || guard.position >= order.len() {
                        return state;
                    }
                    let position = guard.position;
                    drop(guard);
                    // The token sits at this worker's turn: it runs alone
                    // until it advances the position below. A panic is
                    // converted to an error so the token still advances —
                    // otherwise every other thread would wait on it forever.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || step(worker, &mut state, local_step),
                    ))
                    .unwrap_or_else(|payload| {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic".into());
                        Err(format!("step panicked: {message}"))
                    });
                    local_step += 1;
                    let mut guard = turn.lock().unwrap();
                    if let Err(err) = result {
                        *failure.lock().unwrap() = Some(format!(
                            "worker {worker} failed at global step {position}: {err}"
                        ));
                        guard.poisoned = true;
                    }
                    guard.position = position + 1;
                    drop(guard);
                    turn_moved.notify_all();
                }
            }));
        }
        for handle in handles {
            finished.push(Some(handle.join().expect("scheduled worker panicked")));
        }
    });

    if let Some(err) = failure.into_inner().unwrap() {
        return Err(err);
    }
    Ok(finished.into_iter().map(|s| s.expect("joined above")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PlatformKind;
    use sanctorum_core::monitor::{LockingMode, SmConfig};
    use sanctorum_machine::MachineConfig;

    fn concurrent_system(locking: LockingMode) -> System {
        System::boot(
            PlatformKind::Sanctum,
            MachineConfig {
                memory_size: 8 * 1024 * 1024,
                dram_region_size: 256 * 1024,
                pmp_entries: 40,
                ..MachineConfig::small()
            },
            SmConfig {
                locking,
                ..SmConfig::default()
            },
        )
    }

    #[test]
    fn mixed_workload_runs_two_threads_and_counts_progress() {
        let system = concurrent_system(LockingMode::FineGrained);
        let mut quiescent_calls = 0;
        let stats = run_concurrent(
            &system,
            &ConcurrentConfig {
                threads: 2,
                rounds: 2,
                ops_per_round: 40,
                profile: WorkloadProfile::MixedMutation,
                seed: 1,
            },
            |_| {
                quiescent_calls += 1;
                Ok(())
            },
        )
        .expect("concurrent run succeeds");
        assert_eq!(stats.steps, 2 * 2 * 40);
        assert!(stats.sm_calls >= stats.steps);
        assert_eq!(quiescent_calls, 2);
    }

    #[test]
    fn read_mostly_workload_runs_under_the_global_lock_too() {
        let system = concurrent_system(LockingMode::Global);
        let stats = run_concurrent(
            &system,
            &ConcurrentConfig {
                threads: 2,
                rounds: 1,
                ops_per_round: 50,
                profile: WorkloadProfile::ReadMostly,
                seed: 2,
            },
            |_| Ok(()),
        )
        .expect("concurrent run succeeds");
        assert_eq!(stats.steps, 2 * 50);
        assert_eq!(stats.retries, 0, "the giant lock never reports ConcurrentCall");
    }

    #[test]
    fn interleavings_enumerate_the_multinomial_space() {
        let all = Schedule::interleavings(&[2, 2]);
        assert_eq!(all.len(), 6, "C(4,2) orders of two 2-step windows");
        let mut unique = all.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), all.len(), "no duplicate schedules");
        assert!(all.iter().all(|s| s.steps_for(0) == 2 && s.steps_for(1) == 2));
        assert_eq!(all[0].label(), "0011", "lexicographic order, worker 0 first");
        assert_eq!(Schedule::interleavings(&[3, 3]).len(), 20);
    }

    #[test]
    fn run_scheduled_serializes_steps_in_schedule_order() {
        use std::sync::Mutex;
        for schedule in Schedule::interleavings(&[3, 2]) {
            let log = Mutex::new(Vec::new());
            let states = run_scheduled(vec![0usize, 0usize], &schedule, |worker, count, local| {
                assert_eq!(*count, local, "per-worker step counter is sequential");
                *count += 1;
                log.lock().unwrap().push(worker);
                Ok(())
            })
            .expect("scheduled run succeeds");
            assert_eq!(log.into_inner().unwrap(), schedule.order());
            assert_eq!(states, vec![3, 2]);
        }
    }

    #[test]
    fn run_scheduled_reports_step_failures_with_their_position() {
        let schedule = Schedule::new(vec![0, 1, 0, 1]);
        let err = run_scheduled(vec![(), ()], &schedule, |worker, _, local| {
            if worker == 1 && local == 1 {
                Err("synthetic failure".into())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(err.contains("worker 1"), "{err}");
        assert!(err.contains("global step 3"), "{err}");
        assert!(err.contains("synthetic failure"), "{err}");
    }

    #[test]
    fn transient_mail_fault_is_retried_within_budget() {
        use sanctorum_machine::FaultPlan;
        let system = concurrent_system(LockingMode::FineGrained);
        let regions = partition_regions(&system, 1).remove(0);
        let mut worker = Worker {
            monitor: system.monitor.as_ref(),
            regions,
            rng: 7,
            enclave: None,
            calls: 0,
            retries: 0,
            transient_retries: 0,
        };
        let os = CallerSession::os();
        let region = worker.regions[0];
        worker
            .call(|m| m.block_resource(os, ResourceId::Region(region)))
            .expect("block");
        worker
            .call(|m| m.clean_resource(os, ResourceId::Region(region)))
            .expect("clean");
        let eid = worker.build_enclave(region).expect("build enclave");
        let session = CallerSession::enclave(eid);
        worker.call(|m| m.accept_mail(session, 0, 0)).expect("accept");
        // Two injected transient faults on the mail copy: the bounded retry
        // discipline absorbs both and the third attempt delivers.
        system.machine.fault_injector().arm(FaultPlan::FailOp {
            site: Some("monitor.mail-copy"),
            times: 2,
        });
        worker
            .call(|m| m.send_mail(os, eid, Tainted::new(b"retried")))
            .expect("retry absorbs the transient faults");
        system.machine.fault_injector().disarm();
        assert_eq!(worker.transient_retries, 2);
        let (bytes, _) = worker.call(|m| m.get_mail(session, 0)).expect("get mail");
        assert_eq!(bytes, b"retried");
    }

    #[test]
    fn persistent_fault_exhausts_the_budget_and_recovery_unwedges() {
        use sanctorum_machine::FaultPlan;
        let system = concurrent_system(LockingMode::FineGrained);
        let regions = partition_regions(&system, 1).remove(0);
        let mut worker = Worker {
            monitor: system.monitor.as_ref(),
            regions,
            rng: 8,
            enclave: None,
            calls: 0,
            retries: 0,
            transient_retries: 0,
        };
        let os = CallerSession::os();
        let region = worker.regions[0];
        worker
            .call(|m| m.block_resource(os, ResourceId::Region(region)))
            .expect("block");
        // A persistently failing scrub quarantines the region; every retry
        // sees Again from the quarantine gate, so the budget runs dry and
        // the error surfaces instead of livelocking the worker.
        system.machine.fault_injector().arm(FaultPlan::FailOp {
            site: Some("monitor.scrub-page"),
            times: u64::MAX,
        });
        let err = worker
            .call(|m| m.clean_resource(os, ResourceId::Region(region)))
            .unwrap_err();
        assert_eq!(err, SmError::Again);
        assert_eq!(worker.transient_retries, u64::from(Worker::AGAIN_RETRY_BUDGET));
        assert!(system.monitor.quarantined_regions().contains(&region));
        // Once the backend heals, recover() re-scrubs and releases the
        // quarantine; the normal lifecycle resumes.
        system.machine.fault_injector().disarm();
        let report = system.monitor.recover();
        assert_eq!(report.quarantine_cleared, 1);
        assert!(system.monitor.quarantined_regions().is_empty());
        worker
            .call(|m| m.clean_resource(os, ResourceId::Region(region)))
            .expect("clean succeeds after recovery");
    }

    #[test]
    fn retry_rate_is_retries_per_committed_step() {
        let stats = ConcurrentStats { steps: 8, sm_calls: 40, retries: 4, transient_retries: 1 };
        assert!((stats.retry_rate() - 0.5).abs() < f64::EPSILON);
        assert_eq!(ConcurrentStats::default().retry_rate(), 0.0, "no steps, no rate");
    }

    #[test]
    fn failing_quiescent_check_stops_the_run_cleanly() {
        let system = concurrent_system(LockingMode::FineGrained);
        let err = run_concurrent(
            &system,
            &ConcurrentConfig {
                threads: 2,
                rounds: 3,
                ops_per_round: 10,
                profile: WorkloadProfile::MixedMutation,
                seed: 3,
            },
            |round| {
                if round == 1 {
                    Err("synthetic violation".into())
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert!(err.contains("synthetic violation"), "{err}");
        assert!(err.contains("round 1"), "{err}");
    }
}
