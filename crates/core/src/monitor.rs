//! The security monitor: authorization, state machines and resource
//! enforcement behind every SM API call (paper Section V).
//!
//! The complete call surface lives on the [`SmApi`] trait (declared in
//! [`crate::api`] next to the call registry); this module implements it for
//! [`SecurityMonitor`]. Every call method takes a [`CallerSession`] — the
//! authenticated caller capability minted per hart by
//! [`SecurityMonitor::authenticate`] (or by the harness constructors on
//! [`CallerSession`] for direct Rust callers) — and performs its own
//! authorization against that session.
//!
//! # Locking
//!
//! Concurrent harts only serialize on the object they operate on (paper
//! Sections IV–V): the resource map is sharded
//! ([`crate::resource::ShardedResourceMap`]), enclave/thread metadata sits
//! behind per-object locks resolved through read-mostly `RwLock` tables,
//! counters and generation stamps are atomics, and the isolation backend is
//! only locked for the narrow critical section that programs the primitive.
//! Every acquisition follows the total order documented (and debug-enforced)
//! in [`crate::lockorder`]; `LockingMode::Global` instead funnels every call
//! through one FIFO ticket spinlock for the ablation study. See the
//! "Locking discipline" section of ARCHITECTURE.md for the full argument.

use crate::api::{CallOutcome, SmApi, SmCall};
use crate::boot::SmIdentity;
use crate::enclave::{EnclaveLifecycle, EnclaveMeta, PhysWindow};
use crate::epoch::EpochCell;
use crate::error::{SmError, SmResult};
use crate::idalloc::IdAllocator;
use crate::lockorder::{
    rank, OrderedMutex, OrderedMutexGuard, OrderedRwLock, SpinLock,
};
use crate::mailbox::{AcceptMode, SenderIdentity, MAIL_SENDER_QUOTA, MAX_MAIL_LEN};
use crate::measurement::{Measurement, MeasurementContext};
use crate::resource::{ResourceId, ResourceMap, ResourceState, ShardedResourceMap};
use crate::session::CallerSession;
use crate::thread::{ThreadId, ThreadMeta, ThreadState};
use sanctorum_hal::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use sanctorum_hal::cycles::Cycles;
use sanctorum_hal::domain::{CoreId, DomainKind, EnclaveId};
use sanctorum_hal::isolation::{
    FlushKind, IsolationBackend, PlatformCapacity, RegionId, RegionInfo, RegionOp,
};
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_machine::pagetable::PageTableBuilder;
use sanctorum_machine::{fault_point, Crossing, Machine};
use sanctorum_trust::{ReadAccess, Sanitizer, Tainted};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// How the monitor serializes concurrent API transactions (paper Section V-A;
/// the global variant exists for the locking ablation study).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingMode {
    /// Per-object try-locks: concurrent transactions on the same object fail
    /// with [`SmError::ConcurrentCall`] and must be retried; transactions on
    /// different objects take disjoint locks (sharded resource map,
    /// per-enclave and per-thread records, read-locked lookup tables) and
    /// genuinely proceed in parallel on concurrent harts. All acquisitions
    /// follow the documented lock hierarchy ([`crate::lockorder`]), enforced
    /// by a panicking order checker in debug builds.
    FineGrained,
    /// A single monitor-wide ticket spinlock serializes every API call (the
    /// giant-lock baseline the fine-grained design is compared against —
    /// see [`crate::lockorder::SpinLock`] for why it spins FIFO like real
    /// M-mode firmware locks). The scaling bench and the locking ablation
    /// measure exactly this serialization.
    Global,
}

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct SmConfig {
    /// Locking strategy for API transactions.
    pub locking: LockingMode,
    /// Maximum number of live enclaves (metadata slots).
    pub max_enclaves: usize,
    /// Maximum number of live threads.
    pub max_threads: usize,
    /// Measurement of the trusted signing enclave (paper Section VI-C). Only
    /// an enclave with exactly this measurement may retrieve the attestation
    /// key.
    pub signing_enclave_measurement: Option<Measurement>,
    /// Thread-id allocation batch size (see [`crate::idalloc::IdAllocator`]).
    /// The default of `1` reproduces the historical monotone, never-reused
    /// id sequence bit-for-bit (the pinned determinism digests depend on
    /// it); concurrent harnesses raise it so each hart draws ids from a
    /// private batch instead of contending on the shared counter.
    pub id_batch: usize,
}

impl Default for SmConfig {
    fn default() -> Self {
        Self {
            locking: LockingMode::FineGrained,
            max_enclaves: 32,
            max_threads: 128,
            signing_enclave_measurement: None,
            id_batch: 1,
        }
    }
}

/// Public, non-secret fields readable through `get_field`
/// (paper Section VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublicField {
    /// The SM's attestation public key.
    AttestationPublicKey,
    /// The SM certificate (signed by the device key).
    SmCertificate,
    /// The device public key.
    DevicePublicKey,
    /// The SM measurement taken at secure boot.
    SmMeasurement,
}

impl PublicField {
    /// Maps the register-ABI field selector onto the field (the inverse of
    /// [`PublicField::selector`]). Returns `None` for unknown selectors.
    pub const fn from_selector(selector: u64) -> Option<Self> {
        match selector {
            0 => Some(PublicField::AttestationPublicKey),
            1 => Some(PublicField::SmCertificate),
            2 => Some(PublicField::DevicePublicKey),
            3 => Some(PublicField::SmMeasurement),
            _ => None,
        }
    }

    /// The register-ABI selector for this field.
    pub const fn selector(self) -> u64 {
        match self {
            PublicField::AttestationPublicKey => 0,
            PublicField::SmCertificate => 1,
            PublicField::DevicePublicKey => 2,
            PublicField::SmMeasurement => 3,
        }
    }
}

/// Counters the benchmark harness reads.
#[derive(Debug, Default)]
pub struct SmStats {
    /// Total API calls accepted (authorized and validated).
    pub api_calls: AtomicU64,
    /// API calls rejected for any reason.
    pub api_rejections: AtomicU64,
    /// Asynchronous enclave exits performed.
    pub aex_count: AtomicU64,
    /// Concurrent-transaction failures returned.
    pub concurrency_failures: AtomicU64,
    /// Cycles spent cleaning resources (flushes, zeroing, shootdowns).
    pub cleaning_cycles: AtomicU64,
    /// Calls executed through the batched path.
    pub batched_calls: AtomicU64,
}

/// Entry disposition returned by [`SmApi::enter_enclave`]: where the thread
/// should start executing and whether an AEX state is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveEntry {
    /// Program counter the hart was set to.
    pub entry_pc: u64,
    /// Whether a saved AEX state exists (the enclave may resume from it).
    pub aex_pending: bool,
    /// Cycles charged for the entry (context install + flushes).
    pub cost: Cycles,
}

/// An admission-slot reservation against an atomic live-object counter:
/// taken with a compare-and-swap *before* the (multi-step, fallible) build
/// it admits, released on drop unless the build committed. This is what
/// keeps `max_enclaves` a hard cap under concurrency — a load-then-check
/// would let two harts both pass at `max - 1`.
struct SlotReservation<'a> {
    counter: &'a AtomicU64,
    committed: bool,
}

impl Drop for SlotReservation<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.counter.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Handle to one enclave's lock-protected metadata (rank `ENCLAVE_META`).
type EnclaveHandle = Arc<OrderedMutex<EnclaveMeta>>;
/// Handle to one thread's lock-protected metadata (rank `THREAD_META`).
type ThreadHandle = Arc<OrderedMutex<ThreadMeta>>;

struct SmState {
    /// The Fig. 2 ownership map, sharded so transactions on different
    /// resources take disjoint locks (see [`ShardedResourceMap`]).
    resources: ShardedResourceMap,
    /// Read-mostly (rank `ENCLAVE_TABLE`): every call resolves enclave ids
    /// through this table but only lifecycle calls mutate it, so lookups
    /// take shared read locks and proceed in parallel across harts.
    enclaves: OrderedRwLock<BTreeMap<EnclaveId, EnclaveHandle>>,
    /// Epoch-published snapshot of the enclave table (rank `ENCLAVE_EPOCH`):
    /// readers resolve ids through [`EpochCell::load`] and never block on a
    /// lifecycle call holding the table write lock. Writers publish a new
    /// snapshot *while still holding* the `enclaves` write lock (which
    /// serializes publishes) and *before* bumping `enclaves_generation`, so
    /// the audit's read-generation-first convention stays conservative.
    enclave_epoch: EpochCell<BTreeMap<EnclaveId, EnclaveHandle>>,
    /// Read-mostly (rank `THREAD_TABLE`), same pattern as the enclave table.
    threads: OrderedRwLock<BTreeMap<ThreadId, ThreadHandle>>,
    /// Epoch-published snapshot of the thread table (rank `THREAD_EPOCH`),
    /// same protocol as `enclave_epoch`.
    thread_epoch: EpochCell<BTreeMap<ThreadId, ThreadHandle>>,
    /// Which enclave thread currently occupies each core (rank `OCCUPANCY`).
    /// Read-mostly (dispatch probes it on every event; only enter/exit/AEX
    /// write).
    core_occupancy: OrderedRwLock<BTreeMap<CoreId, ThreadId>>,
    /// Thread-id source: per-hart batched caches over a shared pool (ranks
    /// `ID_SLOT` / `ID_POOL`). At the default batch size of 1 it degenerates
    /// to the historical shared monotone counter with no id reuse.
    tids: IdAllocator,
    /// Relaxed count of live enclaves — the lock-free fast path for
    /// diagnostics (`Debug` formatting must never take the table lock: it
    /// deadlocked when a monitor was formatted while a call held enclave
    /// state) and for the `max_enclaves` admission check.
    live_enclaves: AtomicU64,
    /// Bumped after every enclave-table change and every audit-visible
    /// enclave-metadata change (the value is also recorded into the touched
    /// enclave's [`EnclaveMeta::audit_generation`]). Drives the incremental
    /// audit.
    enclaves_generation: AtomicU64,
    /// Bumped after every thread-table or thread-state change.
    threads_generation: AtomicU64,
    /// Bumped after every core-occupancy change.
    occupancy_generation: AtomicU64,
    /// The mail-fabric quota ledger (rank `MAIL_LEDGER`): undelivered
    /// messages in flight per sender id, across every live recipient's
    /// queues. `send_mail` refuses a sender at [`MAIL_SENDER_QUOTA`];
    /// delivery and teardown purges refund.
    mail_ledger: OrderedMutex<BTreeMap<u64, u64>>,
    /// Bumped after every mail-fabric mutation (send, get, teardown purge).
    mail_generation: AtomicU64,
    /// The mutation journal (rank `JOURNAL` — above every state lock, so an
    /// intent can be recorded or retired from inside any transaction):
    /// `(sequence, intent)` pairs for every multi-step mutation currently in
    /// flight. Entries are recorded *before* shared state is touched and
    /// retired on every exit path except a crash; whatever is still pending
    /// when [`SecurityMonitor::recover`] runs is redone (or undone)
    /// idempotently.
    journal: OrderedMutex<Vec<(u64, JournalEntry)>>,
    /// Sequence source for journal entries.
    journal_seq: AtomicU64,
    /// Regions parked because the isolation backend persistently failed
    /// while cleaning them (rank `QUARANTINE` — above `BACKEND`, so the
    /// failure path can quarantine while still holding the backend guard).
    /// Quarantined regions stay `Blocked`, refuse `clean`/`grant` with
    /// [`SmError::Again`], and are retried by
    /// [`SecurityMonitor::recover`].
    quarantine: OrderedMutex<BTreeSet<RegionId>>,
    /// Bumped after every quarantine-set mutation (audit-visible).
    quarantine_generation: AtomicU64,
}

/// One logged intent of a multi-step monitor mutation.
///
/// The journal discipline: the entry is recorded after validation but before
/// the first mutation of shared state, and retired on every return path —
/// only a crash (modelled as a panic at a [`fault_point!`] crossing) leaves
/// it pending. [`SecurityMonitor::recover`] replays pending entries with
/// idempotent redo (delete) or undo (create, grant); `Clean` and `Batch`
/// need neither, because every crash window they span leaves state a retried
/// call repairs on its own (a partially scrubbed region is still `Blocked`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// `create_enclave` for `eid` over `regions` is in flight.
    CreateEnclave {
        /// The enclave id being created.
        eid: EnclaveId,
        /// The regions being dedicated to it.
        regions: Vec<RegionId>,
    },
    /// `delete_enclave` for `eid` is in flight.
    DeleteEnclave {
        /// The enclave id being deleted.
        eid: EnclaveId,
    },
    /// `grant_resource` of `id` to `new_owner` is in flight.
    Grant {
        /// The resource being granted.
        id: ResourceId,
        /// The owner it is being granted to.
        new_owner: DomainKind,
    },
    /// `clean_resource` of `id` is in flight.
    Clean {
        /// The resource being cleaned.
        id: ResourceId,
    },
    /// A batch is in flight (vacuous marker: the inner calls journal their
    /// own intents; the marker only brackets the crossing window).
    Batch,
}

/// What [`SecurityMonitor::recover`] did: counts for harness assertions and
/// audit logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Journal entries replayed (redone or undone).
    pub replayed: usize,
    /// Quarantined regions successfully scrubbed and released.
    pub quarantine_cleared: usize,
    /// Regions still quarantined after recovery (backend still failing).
    pub quarantine_remaining: usize,
}

/// Deliberate, named weakenings of the monitor's enforcement, used by the
/// adversarial explorer to prove its invariant kernel actually detects
/// violations (a checker that never fires is indistinguishable from a
/// checker that checks nothing).
///
/// Production code must never set one of these; they exist only behind
/// [`SecurityMonitor::weaken_for_testing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestWeakening {
    /// `clean_resource` skips zeroing region memory (the clean-before-reuse
    /// scrub), while still completing the Fig. 2 state transition.
    SkipRegionScrub,
    /// Enclave entry/exit skips cleaning the core's architected state, so
    /// registers the previous domain left behind survive the hand-off.
    SkipCoreClean,
    /// [`SecurityMonitor::recover`] skips replaying the mutation journal, so
    /// a crash mid-mutation leaves its intent entry pending (and the
    /// half-applied state unrepaired) forever.
    SkipJournalReplay,
    /// `clean_resource` ignores a failed scrub and completes the Fig. 2
    /// transition anyway instead of quarantining the region — secrets ride a
    /// backend fault straight into an `Available` region.
    SkipQuarantine,
}

impl TestWeakening {
    /// Every weakening, for harnesses that must prove each one is caught
    /// (the explorer's weakened-monitor self-checks and the model checker's
    /// completeness tests iterate this list so a new weakening cannot be
    /// added without a detector for it).
    pub const ALL: [TestWeakening; 4] = [
        TestWeakening::SkipRegionScrub,
        TestWeakening::SkipCoreClean,
        TestWeakening::SkipJournalReplay,
        TestWeakening::SkipQuarantine,
    ];

    /// Short name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            TestWeakening::SkipRegionScrub => "skip-region-scrub",
            TestWeakening::SkipCoreClean => "skip-core-clean",
            TestWeakening::SkipJournalReplay => "skip-journal-replay",
            TestWeakening::SkipQuarantine => "skip-quarantine",
        }
    }
}

/// One enclave's OS-visible metadata inside an [`AuditSnapshot`].
///
/// The fields mirror exactly the audit-visible subset of
/// [`EnclaveMeta`]; any monitor code path mutating one of these underlying
/// fields must bump the enclave's `audit_generation` (see
/// [`EnclaveMeta::audit_generation`]) or the incremental audit will serve a
/// stale record — the audit-equivalence property test in the explorer crate
/// guards this contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveAudit {
    /// The enclave id.
    pub id: EnclaveId,
    /// Whether `init_enclave` has sealed the enclave.
    pub initialized: bool,
    /// Regions backing the enclave's physical windows.
    pub regions: Vec<RegionId>,
    /// The finalized measurement, once initialized.
    pub measurement: Option<Measurement>,
    /// Number of threads currently running on cores.
    pub running_threads: usize,
    /// Threads associated with the enclave.
    pub threads: Vec<ThreadId>,
    /// Every message queued in the enclave's mailboxes, flattened in
    /// (mailbox, FIFO) order as `(sender_id, message length)` pairs — the
    /// fabric's audit view, from which the explorer checks quota
    /// conservation against [`AuditSnapshot::mail_outstanding`].
    pub mail_queued: Vec<(u64, u32)>,
}

/// The monotone change counters an [`AuditSnapshot`] was taken at.
///
/// Each counter only ever grows, and grows on (at least) every mutation of
/// the corresponding state component — so two snapshots with equal
/// generations are guaranteed to describe identical state, and a consumer
/// checking invariants after every step can skip whole check families when
/// the relevant counters did not move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditGenerations {
    /// Mutation counter of the resource map (Fig. 2 transitions).
    pub resources: u64,
    /// Mutation counter of the enclave table and all enclave metadata.
    pub enclaves: u64,
    /// Mutation counter of the thread table and all thread state machines.
    pub threads: u64,
    /// Mutation counter of the core-occupancy table.
    pub occupancy: u64,
    /// Mutation counter of the mail fabric (queues + quota ledger).
    pub mail: u64,
    /// Mutation counter of the quarantine set (fault containment).
    pub quarantine: u64,
}

/// A consistent snapshot of the monitor's security-relevant state, taken for
/// invariant checking (the explorer's invariant kernel runs over one of these
/// after every step). Producing the snapshot takes no try-locks, so it can be
/// interleaved with API traffic without inducing `ConcurrentCall` failures.
///
/// Snapshots are produced incrementally: the payload vectors are shared
/// (`Arc`) with the monitor's audit cache and with previous snapshots, so a
/// snapshot after a step that changed nothing costs three atomic loads and
/// three `Arc` clones instead of a deep copy of every thread list and window
/// table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSnapshot {
    /// Every registered resource and its Fig. 2 state, in `ResourceId` order.
    pub resources: Arc<Vec<(ResourceId, ResourceState)>>,
    /// Every live enclave's metadata, in `EnclaveId` order.
    pub enclaves: Vec<Arc<EnclaveAudit>>,
    /// Which enclave thread occupies each core.
    pub core_occupancy: Arc<Vec<(CoreId, ThreadId)>>,
    /// The mail-fabric quota ledger: `(sender_id, undelivered messages)` in
    /// sender order. Conservation against the per-enclave
    /// [`EnclaveAudit::mail_queued`] views is an explorer invariant.
    pub mail_outstanding: Arc<Vec<(u64, u64)>>,
    /// Regions parked in the fault quarantine (Blocked, refusing clean and
    /// grant with `Again` until `recover()` re-scrubs them), in id order.
    pub quarantine: Arc<Vec<RegionId>>,
    /// The change counters this snapshot was taken at.
    pub generations: AuditGenerations,
}

impl AuditSnapshot {
    /// Returns the audit record for `eid`, if the enclave is live.
    pub fn enclave(&self, eid: EnclaveId) -> Option<&EnclaveAudit> {
        self.enclaves
            .binary_search_by_key(&eid, |e| e.id)
            .ok()
            .map(|i| &*self.enclaves[i])
    }

    /// Returns the state of one resource, if registered.
    pub fn resource(&self, id: ResourceId) -> Option<ResourceState> {
        self.resources
            .binary_search_by_key(&id, |(r, _)| *r)
            .ok()
            .map(|i| self.resources[i].1)
    }

    /// A 64-bit fingerprint of the monitor-visible state this snapshot
    /// describes: resource ownership, enclave metadata (lifecycle,
    /// regions, measurement, threads, queued mail), core occupancy and the
    /// mail-quota ledger.
    ///
    /// The [`AuditGenerations`] counters are deliberately *excluded*: they
    /// count mutations, not state, so two different op paths reaching the
    /// same logical monitor state carry different generation values. The
    /// model checker keys its visited set on this digest — folding the
    /// generations in would make every path look novel and defeat pruning.
    pub fn digest(&self) -> u64 {
        fn fold_u64(h: u64, v: u64) -> u64 {
            sanctorum_hal::fnv::fnv1a(h, &v.to_le_bytes())
        }
        fn domain_word(d: DomainKind) -> u64 {
            match d {
                DomainKind::Untrusted => 1,
                DomainKind::SecurityMonitor => 2,
                DomainKind::Enclave(eid) => 0x8000_0000_0000_0000 | eid.as_u64(),
            }
        }
        let mut h = 0xa_0d1u64;
        for (rid, state) in self.resources.iter() {
            let rid_word = match rid {
                ResourceId::Core(c) => 0x1_0000_0000 | c.index() as u64,
                ResourceId::Region(r) => 0x2_0000_0000 | r.index() as u64,
            };
            let state_word = match state {
                ResourceState::Owned(d) => 0x10 ^ domain_word(*d),
                ResourceState::Blocked(d) => 0x20 ^ domain_word(*d),
                ResourceState::Available => 0x30,
            };
            h = fold_u64(fold_u64(h, rid_word), state_word);
        }
        for enc in &self.enclaves {
            h = fold_u64(h, enc.id.as_u64());
            h = fold_u64(h, enc.initialized as u64);
            for r in &enc.regions {
                h = fold_u64(h, r.index() as u64);
            }
            h = match &enc.measurement {
                Some(m) => sanctorum_hal::fnv::fnv1a(h, m.as_bytes()),
                None => fold_u64(h, u64::MAX),
            };
            h = fold_u64(h, enc.running_threads as u64);
            for t in &enc.threads {
                h = fold_u64(h, *t);
            }
            for (sender, len) in &enc.mail_queued {
                h = fold_u64(fold_u64(h, *sender), *len as u64);
            }
        }
        for (core, tid) in self.core_occupancy.iter() {
            h = fold_u64(fold_u64(h, core.index() as u64), *tid);
        }
        for (sender, outstanding) in self.mail_outstanding.iter() {
            h = fold_u64(fold_u64(h, *sender), *outstanding);
        }
        // Entries-only fold: an empty quarantine leaves the digest exactly
        // as it was before the set existed, so pre-fault golden digests
        // (and the pinned determinism traces) are unchanged.
        for region in self.quarantine.iter() {
            h = fold_u64(h, 0x4_0000_0000 | region.index() as u64);
        }
        h
    }
}

/// The incremental-audit cache: the previously built snapshot payloads plus
/// the generations they are valid at. `u64::MAX` sentinels force a full
/// build on the first audit.
struct AuditCache {
    resources_gen: u64,
    resources: Arc<Vec<(ResourceId, ResourceState)>>,
    enclaves_gen: u64,
    /// Per-enclave cache entries: the `audit_generation` the record was built
    /// at, and the shared record itself.
    enclaves: BTreeMap<EnclaveId, (u64, Arc<EnclaveAudit>)>,
    /// The `enclaves` values pre-collected in id order, so an unchanged-state
    /// audit clones one `Vec` of `Arc`s without re-walking the map.
    enclaves_vec: Vec<Arc<EnclaveAudit>>,
    occupancy_gen: u64,
    core_occupancy: Arc<Vec<(CoreId, ThreadId)>>,
    mail_gen: u64,
    mail_outstanding: Arc<Vec<(u64, u64)>>,
    quarantine_gen: u64,
    quarantine: Arc<Vec<RegionId>>,
}

impl Default for AuditCache {
    fn default() -> Self {
        Self {
            resources_gen: u64::MAX,
            resources: Arc::new(Vec::new()),
            enclaves_gen: u64::MAX,
            enclaves: BTreeMap::new(),
            enclaves_vec: Vec::new(),
            occupancy_gen: u64::MAX,
            core_occupancy: Arc::new(Vec::new()),
            mail_gen: u64::MAX,
            mail_outstanding: Arc::new(Vec::new()),
            quarantine_gen: u64::MAX,
            quarantine: Arc::new(Vec::new()),
        }
    }
}

/// The Sanctorum security monitor.
///
/// All API methods take `&self` and a [`CallerSession`]; in the full
/// simulation the session is minted from the hart state by the event
/// dispatcher (Fig. 1, [`SecurityMonitor::authenticate`]), while unit tests
/// and the OS model mint sessions directly.
pub struct SecurityMonitor {
    machine: Arc<Machine>,
    /// The isolation backend, protected by the **highest-ranked** lock in
    /// the hierarchy: it is only ever taken for the narrow critical section
    /// that programs the isolation primitive (PMP entry / region-table
    /// mutation plus the associated flushes), and nothing else is ever
    /// acquired while it is held — so backend work on one hart never blocks
    /// metadata work on another for longer than that mutation.
    ///
    /// PMP/page-table mutation protocol: validate against SM metadata first
    /// (under the relevant shard/meta locks), then take the backend lock,
    /// program the primitive, release, and only then publish the new
    /// ownership in the metadata — with the single exception of
    /// `create_enclave`, which programs the primitive *before* the ownership
    /// transfer (and rolls itself back) because on capacity-limited
    /// platforms programming is the step that can fail. Rank `BACKEND` —
    /// the last lock any call path acquires.
    backend: OrderedMutex<Box<dyn IsolationBackend + Send>>,
    /// Immutable backend facts cached at construction so diagnostics, the
    /// differential explorer and the region-geometry lookups on the enclave
    /// lifecycle paths never take the backend lock for them.
    platform: &'static str,
    capacity: PlatformCapacity,
    region_infos: Vec<RegionInfo>,
    identity: SmIdentity,
    config: SmConfig,
    state: SmState,
    /// The Global-mode giant lock (a spinlock — the M-mode monitor it
    /// models has no scheduler to sleep on). FineGrained mode never touches
    /// it.
    global_lock: SpinLock,
    stats: SmStats,
    /// Encoded [`TestWeakening`] (0 = none): set once before exploration and
    /// read on hot paths, so it is a relaxed atomic, not a lock.
    weakening: AtomicU8,
    /// Memoized audit snapshot (rank `AUDIT_CACHE`), see [`AuditCache`].
    audit_cache: OrderedMutex<AuditCache>,
}

impl std::fmt::Debug for SecurityMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately lock-free: `Debug` output is often requested from
        // panic/assert contexts that may already hold enclave state, so the
        // count comes from the relaxed counter, never the table lock.
        write!(
            f,
            "SecurityMonitor {{ platform: {}, enclaves: {} }}",
            self.platform,
            self.state.live_enclaves.load(Ordering::Relaxed)
        )
    }
}

impl SecurityMonitor {
    /// Creates a monitor over `machine` using `backend` for isolation.
    ///
    /// All cores and all platform memory units start out owned by the
    /// untrusted OS except the units the backend has already reserved for
    /// the SM itself.
    pub fn new(
        machine: Arc<Machine>,
        backend: Box<dyn IsolationBackend + Send>,
        identity: SmIdentity,
        config: SmConfig,
    ) -> Self {
        let resources = ShardedResourceMap::new();
        for i in 0..machine.num_harts() {
            resources.register(
                ResourceId::Core(CoreId::new(i as u32)),
                ResourceState::Owned(DomainKind::Untrusted),
            );
        }
        let region_infos = backend.regions();
        for info in &region_infos {
            let owner = backend
                .region_owner(info.id)
                .unwrap_or(DomainKind::Untrusted);
            resources.register(ResourceId::Region(info.id), ResourceState::Owned(owner));
        }
        let platform = backend.platform_name();
        let capacity = backend.capacity();
        let id_batch = config.id_batch;
        Self {
            machine,
            backend: OrderedMutex::new(rank::BACKEND, backend),
            platform,
            capacity,
            region_infos,
            identity,
            config,
            state: SmState {
                resources,
                enclaves: OrderedRwLock::new(rank::ENCLAVE_TABLE, BTreeMap::new()),
                enclave_epoch: EpochCell::new(rank::ENCLAVE_EPOCH, BTreeMap::new()),
                threads: OrderedRwLock::new(rank::THREAD_TABLE, BTreeMap::new()),
                thread_epoch: EpochCell::new(rank::THREAD_EPOCH, BTreeMap::new()),
                core_occupancy: OrderedRwLock::new(rank::OCCUPANCY, BTreeMap::new()),
                tids: IdAllocator::new(0x1000, id_batch),
                live_enclaves: AtomicU64::new(0),
                enclaves_generation: AtomicU64::new(0),
                threads_generation: AtomicU64::new(0),
                occupancy_generation: AtomicU64::new(0),
                mail_ledger: OrderedMutex::new(rank::MAIL_LEDGER, BTreeMap::new()),
                mail_generation: AtomicU64::new(0),
                journal: OrderedMutex::new(rank::JOURNAL, Vec::new()),
                journal_seq: AtomicU64::new(0),
                quarantine: OrderedMutex::new(rank::QUARANTINE, BTreeSet::new()),
                quarantine_generation: AtomicU64::new(0),
            },
            global_lock: SpinLock::new(),
            stats: SmStats::default(),
            weakening: AtomicU8::new(0),
            audit_cache: OrderedMutex::new(rank::AUDIT_CACHE, AuditCache::default()),
        }
    }

    /// Returns the monitor's boot identity (public parts are also available
    /// through [`SmApi::get_field`]).
    pub fn identity(&self) -> &SmIdentity {
        &self.identity
    }

    /// Returns the shared machine handle.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The trust-boundary [`Sanitizer`] backed by this monitor's machine:
    /// the only way OS-supplied addresses and buffers become usable.
    pub fn sanitizer(&self) -> Sanitizer<'_> {
        self.machine.sanitizer()
    }

    /// Returns monitor statistics.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// Returns the configured locking mode.
    pub fn locking_mode(&self) -> LockingMode {
        self.config.locking
    }

    /// Returns the platform name reported by the isolation backend (cached
    /// at construction — no backend lock taken).
    pub fn platform_name(&self) -> &'static str {
        self.platform
    }

    /// Returns the capacity limits the isolation backend declares (used by
    /// the differential explorer to classify cross-platform divergences;
    /// cached at construction — no backend lock taken).
    pub fn platform_capacity(&self) -> PlatformCapacity {
        self.capacity
    }

    /// Installs (or clears) a deliberate enforcement weakening.
    ///
    /// This is a **test-only** hook: the explorer's self-check weakens a
    /// monitor on purpose and asserts its invariant kernel reports a
    /// violation with a replayable `(seed, step)`. Nothing in the monitor,
    /// the OS model or the benches ever sets this.
    #[doc(hidden)]
    pub fn weaken_for_testing(&self, weakening: Option<TestWeakening>) {
        let encoded = match weakening {
            None => 0,
            Some(TestWeakening::SkipRegionScrub) => 1,
            Some(TestWeakening::SkipCoreClean) => 2,
            Some(TestWeakening::SkipJournalReplay) => 3,
            Some(TestWeakening::SkipQuarantine) => 4,
        };
        self.weakening.store(encoded, Ordering::Relaxed);
    }

    /// Hot-path weakening probe: a relaxed atomic load (the value is set
    /// once, before exploration starts), never a lock.
    fn weakened_by(&self, weakening: TestWeakening) -> bool {
        let encoded = match weakening {
            TestWeakening::SkipRegionScrub => 1,
            TestWeakening::SkipCoreClean => 2,
            TestWeakening::SkipJournalReplay => 3,
            TestWeakening::SkipQuarantine => 4,
        };
        self.weakening.load(Ordering::Relaxed) == encoded
    }

    // ------------------------------------------------------------------
    // locking helpers (see the hierarchy table in `crate::lockorder`)
    // ------------------------------------------------------------------

    fn with_global_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.config.locking {
            LockingMode::Global => {
                let _guard = self.global_lock.lock();
                f()
            }
            LockingMode::FineGrained => f(),
        }
    }

    fn lock_enclave(&self, eid: EnclaveId) -> SmResult<EnclaveHandle> {
        // Epoch read-side: resolve through the published snapshot, never
        // blocking on a lifecycle call that holds the table write lock.
        self.state
            .enclave_epoch
            .load()
            .get(&eid)
            .cloned()
            .ok_or(SmError::UnknownEnclave(eid))
    }

    fn lock_thread(&self, tid: ThreadId) -> SmResult<ThreadHandle> {
        self.state
            .thread_epoch
            .load()
            .get(&tid)
            .cloned()
            .ok_or(SmError::UnknownThread(tid))
    }

    /// Publishes the enclave table's current contents as a new epoch
    /// snapshot. Must be called *while still holding* the `enclaves` write
    /// lock (that lock serializes publishers) and *before* the matching
    /// `touch_enclave_table`, so a reader of the bumped generation always
    /// sees at least the published snapshot.
    fn publish_enclaves(&self, table: &BTreeMap<EnclaveId, EnclaveHandle>) {
        self.state.enclave_epoch.publish(Arc::new(table.clone()));
    }

    /// Thread-table counterpart of [`Self::publish_enclaves`]; same
    /// holding-the-write-lock / publish-before-touch contract.
    fn publish_threads(&self, table: &BTreeMap<ThreadId, ThreadHandle>) {
        self.state.thread_epoch.publish(Arc::new(table.clone()));
    }

    /// Acquires an object lock following the configured locking discipline:
    /// try-lock with [`SmError::ConcurrentCall`] on conflict in FineGrained
    /// mode, a blocking acquire in Global mode (the giant lock has already
    /// serialized the call, so the block can never be a wait).
    fn try_lock<'a, T>(&self, mutex: &'a OrderedMutex<T>) -> SmResult<OrderedMutexGuard<'a, T>> {
        match self.config.locking {
            LockingMode::FineGrained => mutex.try_lock().ok_or_else(|| {
                self.stats.concurrency_failures.fetch_add(1, Ordering::Relaxed);
                SmError::ConcurrentCall
            }),
            LockingMode::Global => Ok(mutex.lock()),
        }
    }

    /// Acquires the shard holding `id` under the locking discipline.
    fn try_lock_shard(&self, id: ResourceId) -> SmResult<OrderedMutexGuard<'_, ResourceMap>> {
        self.try_lock(self.state.resources.shard(id))
    }

    /// Acquires every resource shard, in ascending shard (= lock-rank)
    /// order, under the locking discipline — the whole-map view the
    /// delete-enclave ownership sweep needs. In FineGrained mode any
    /// conflict releases everything acquired so far and reports
    /// [`SmError::ConcurrentCall`]; because every multi-shard transaction
    /// acquires in the same ascending order, the holder of the lowest
    /// contended shard always makes progress (no livelock).
    fn try_lock_all_shards(&self) -> SmResult<Vec<OrderedMutexGuard<'_, ResourceMap>>> {
        let mut guards = Vec::with_capacity(self.state.resources.shards().len());
        for shard in self.state.resources.shards() {
            guards.push(self.try_lock(shard)?);
        }
        Ok(guards)
    }

    /// The cached geometry record for `region`.
    fn region_info(&self, region: RegionId) -> SmResult<RegionInfo> {
        self.region_infos
            .iter()
            .find(|r| r.id == region)
            .copied()
            .ok_or(SmError::UnknownResource)
    }

    // ------------------------------------------------------------------
    // audit-generation bookkeeping
    // ------------------------------------------------------------------

    /// Marks an enclave's audit-visible metadata as changed. Must be called
    /// (with the enclave's lock held) by every path mutating a field that
    /// [`EnclaveAudit`] reflects: lifecycle, measurement, thread list,
    /// running-thread count.
    fn touch_enclave(&self, meta: &mut EnclaveMeta) {
        meta.audit_generation = self
            .state
            .enclaves_generation
            .fetch_add(1, Ordering::Relaxed)
            + 1;
    }

    /// Marks the enclave *table* (insert/remove) as changed.
    fn touch_enclave_table(&self) {
        self.state.enclaves_generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the thread table or any thread state machine as changed.
    fn touch_threads(&self) {
        self.state.threads_generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the core-occupancy table as changed.
    fn touch_occupancy(&self) {
        self.state.occupancy_generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the mail fabric (queues or quota ledger) as changed.
    fn touch_mail(&self) {
        self.state.mail_generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the resource map as changed (any committed Fig. 2 transition).
    fn touch_resources(&self) {
        self.state.resources.touch();
    }

    /// Marks the quarantine set as changed.
    fn touch_quarantine(&self) {
        self.state.quarantine_generation.fetch_add(1, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // mutation journal + quarantine (crash consistency)
    // ------------------------------------------------------------------

    /// Records an intent entry for a multi-step mutation. Call after
    /// validation, before the first mutation of shared state; pair with
    /// [`Self::journal_complete`] on *every* return path — only a crash may
    /// leave the entry pending.
    fn journal_record(&self, entry: JournalEntry) -> u64 {
        // atomic: crossed before the intent is appended — a crash here means
        // the operation never started and there is nothing to recover.
        let _ = fault_point!(self.machine.fault_injector(), "journal.record");
        let seq = self.state.journal_seq.fetch_add(1, Ordering::Relaxed);
        self.state.journal.lock().push((seq, entry));
        seq
    }

    /// A named crash window between two phases of a journaled mutation;
    /// recovery redoes the remainder from the pending entry.
    fn journal_step(&self) {
        // journal: pure crossing — a crash here is repaired by replaying the
        // pending intent entry.
        let _ = fault_point!(self.machine.fault_injector(), "journal.step");
    }

    /// Retires a journal entry after the mutation committed (or was cleanly
    /// rolled back by an error path).
    fn journal_complete(&self, seq: u64) {
        // journal: crossed before the entry is retired — a crash here leaves
        // the entry pending and recovery redoes the idempotent completion.
        let _ = fault_point!(self.machine.fault_injector(), "journal.complete");
        self.state.journal.lock().retain(|(s, _)| *s != seq);
    }

    /// Number of journal entries still pending. Zero at every quiescent
    /// point on an honest monitor: a non-zero count after
    /// [`SecurityMonitor::recover`] means crash residue survived (the
    /// explorer's `crash-residue` invariant).
    pub fn journal_pending(&self) -> usize {
        self.state.journal.lock().len()
    }

    /// The regions currently quarantined (audit-visible; sorted).
    pub fn quarantined_regions(&self) -> Vec<RegionId> {
        self.state.quarantine.lock().iter().copied().collect()
    }

    /// Retired epoch snapshots not yet reclaimed, summed across the enclave
    /// and thread table epochs. [`SecurityMonitor::audit`] quiesces both
    /// epochs, so at a quiescent barrier (no concurrent readers) an audit
    /// leaves this at zero — the explorer checks exactly that, pinning the
    /// epoch read-side against unbounded retire-list growth.
    pub fn epoch_retired_len(&self) -> usize {
        self.state.enclave_epoch.retired_len() + self.state.thread_epoch.retired_len()
    }

    /// Parks `region` in the quarantine set (stays `Blocked`; `clean` and
    /// `grant` refuse it with [`SmError::Again`] until
    /// [`SecurityMonitor::recover`] scrubs it successfully). Legal with the
    /// backend guard held (`QUARANTINE` ranks above `BACKEND`).
    fn quarantine_region(&self, region: RegionId) {
        if self.state.quarantine.lock().insert(region) {
            self.touch_quarantine();
        }
    }

    fn is_quarantined(&self, region: RegionId) -> bool {
        self.state.quarantine.lock().contains(&region)
    }

    /// Crash/fault recovery: replays every pending journal entry (idempotent
    /// redo or undo), then retries the scrub of every quarantined region.
    ///
    /// Safe to call on a clean monitor (a no-op leaving state bit-identical)
    /// and safe to call repeatedly. Intended to run at a quiescent point —
    /// after a simulated crash unwound the faulting call — so it uses plain
    /// blocking locks, not the API try-lock discipline.
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        if !self.weakened_by(TestWeakening::SkipJournalReplay) {
            // Entries replay oldest-first: a later intent may depend on an
            // earlier one's repair (e.g. a grant after a crashed delete).
            let pending: Vec<(u64, JournalEntry)> =
                std::mem::take(&mut *self.state.journal.lock());
            for (_, entry) in pending {
                self.replay_entry(entry);
                report.replayed += 1;
            }
        }
        let quarantined: Vec<RegionId> =
            self.state.quarantine.lock().iter().copied().collect();
        for region in quarantined {
            if self.retry_quarantined_scrub(region) {
                report.quarantine_cleared += 1;
            }
        }
        report.quarantine_remaining = self.state.quarantine.lock().len();
        // Recovery is a quiescent point by definition: drain the epochs the
        // crashed call (and the replay above) retired.
        self.state.enclave_epoch.quiesce();
        self.state.thread_epoch.quiesce();
        report
    }

    /// Replays one pending intent. Every arm is idempotent: it inspects how
    /// far the crashed mutation got and completes (or reverts) only the
    /// missing part.
    fn replay_entry(&self, entry: JournalEntry) {
        match entry {
            JournalEntry::CreateEnclave { eid, regions } => {
                if self.state.enclave_epoch.load().contains_key(&eid) {
                    // The table insert is the commit point; past it the
                    // create fully happened and there is nothing to undo.
                    return;
                }
                // Undo: revoke whatever backend assignments landed. The
                // regions go to the *SM*, not the OS — the never-published
                // owner's memory must stay unwritable until legitimately
                // re-granted, or a later grant would hand a new enclave a
                // region the OS could have dirtied meanwhile.
                {
                    let mut backend = self.backend.lock();
                    for region in &regions {
                        if backend
                            .assign_region(*region, DomainKind::SecurityMonitor, MemPerms::RWX)
                            .is_err()
                        {
                            self.quarantine_region(*region);
                        }
                    }
                }
                let mut repaired = false;
                for region in regions {
                    let id = ResourceId::Region(region);
                    let mut shard = self.state.resources.shard(id).lock();
                    // The regions were validated Available before the crash
                    // window opened, and the map transition (phase 2) is
                    // fault-point-atomic with the table insert — so this is
                    // a defensive restore, not a state change, unless a
                    // straggler mutated the shard during unwind.
                    if shard.state(id).ok() != Some(ResourceState::Available)
                        && shard.recover_force(id, ResourceState::Available).is_ok()
                    {
                        repaired = true;
                    }
                }
                if repaired {
                    self.touch_resources();
                }
            }
            JournalEntry::DeleteEnclave { eid } => self.redo_delete(eid),
            JournalEntry::Grant { id, new_owner } => {
                let Ok(state) = self.state.resources.state(id) else {
                    return;
                };
                if state == ResourceState::Owned(new_owner) {
                    // Backend programming and the map transition are
                    // fault-point-atomic, so an owned map entry means the
                    // grant fully committed.
                    return;
                }
                if state == ResourceState::Available {
                    if let ResourceId::Region(region) = id {
                        // Undo: the backend may hold a half-applied
                        // assignment; park the region with the SM so nobody
                        // can touch it until the grant is retried.
                        let mut backend = self.backend.lock();
                        if backend
                            .assign_region(region, DomainKind::SecurityMonitor, MemPerms::RWX)
                            .is_err()
                        {
                            self.quarantine_region(region);
                        }
                    }
                }
            }
            // A crashed clean leaves the region Blocked with (at worst) a
            // partial scrub — exactly what a retried clean_resource repairs
            // from scratch. A batch marker carries no state of its own.
            JournalEntry::Clean { .. } | JournalEntry::Batch => {}
        }
    }

    /// Idempotent redo of a crashed `delete_enclave`, replayed from the
    /// journal. Unlike the API path this runs at a quiescent point, uses
    /// blocking locks and skips validation — the crashed call already passed
    /// it.
    fn redo_delete(&self, eid: EnclaveId) {
        let handle = self.state.enclave_epoch.load().get(&eid).cloned();
        let Some(enclave) = handle else {
            // The table removal already happened; the post-removal sweep may
            // not have. Anything still owned by the dead id gets re-parked.
            let mut swept = false;
            for shard in self.state.resources.shards() {
                let mut shard = shard.lock();
                for rid in shard.owned_by(DomainKind::Enclave(eid)) {
                    if matches!(shard.state(rid), Ok(ResourceState::Blocked(_))) {
                        continue;
                    }
                    if shard
                        .recover_force(rid, ResourceState::Blocked(DomainKind::Enclave(eid)))
                        .is_ok()
                    {
                        swept = true;
                    }
                }
            }
            if swept {
                self.touch_resources();
            }
            return;
        };
        // Thread slots: remove whatever the crashed call had not yet. Only
        // ids actually removed *here* are freed — anything already gone was
        // freed by the crashed call before it died, and freeing it again
        // would put one id in two harts' caches.
        let owned_tids: Vec<ThreadId> = enclave.lock().threads.clone();
        let removed_tids: Vec<ThreadId> = {
            let mut threads = self.state.threads.write();
            let removed = owned_tids
                .into_iter()
                .filter(|tid| threads.remove(tid).is_some())
                .collect();
            self.publish_threads(&threads);
            removed
        };
        for tid in removed_tids {
            self.state.tids.free(tid);
        }
        self.touch_threads();
        // Region sweep, same skip-already-blocked discipline as the API path.
        let mut blocked = false;
        for shard in self.state.resources.shards() {
            let mut shard = shard.lock();
            for rid in shard.owned_by(DomainKind::Enclave(eid)) {
                if matches!(shard.state(rid), Ok(ResourceState::Blocked(_))) {
                    continue;
                }
                if shard.block(DomainKind::SecurityMonitor, rid).is_ok() {
                    blocked = true;
                }
            }
        }
        if blocked {
            self.touch_resources();
        }
        // Mail-fabric scrub: purge the dying identity from every other
        // enclave's boxes and disarm filters naming it (same reasoning as
        // the API path: ids are recycled physical addresses).
        let mut purged_any = false;
        {
            let table = self.state.enclave_epoch.load();
            for (other_id, other) in table.iter() {
                if *other_id == eid {
                    continue;
                }
                let mut other_meta = other.lock();
                let purged: usize = other_meta
                    .mailboxes
                    .iter_mut()
                    .map(|mb| mb.purge_sender(eid.as_u64()))
                    .sum();
                for mb in other_meta.mailboxes.iter_mut() {
                    mb.disarm_if_expecting(eid.as_u64());
                }
                if purged > 0 {
                    purged_any = true;
                    self.touch_enclave(&mut other_meta);
                }
            }
        }
        let inbound_refunds: Vec<u64> = enclave
            .lock()
            .mailboxes
            .iter()
            .flat_map(|mb| mb.queued())
            .map(|m| m.sender_id)
            .collect();
        {
            let mut ledger = self.state.mail_ledger.lock();
            let mail_changed =
                !inbound_refunds.is_empty() || purged_any || ledger.contains_key(&eid.as_u64());
            for sender in inbound_refunds {
                Self::refund_mail_sender(&mut ledger, sender);
            }
            ledger.remove(&eid.as_u64());
            if mail_changed {
                self.touch_mail();
            }
        }
        {
            let mut table = self.state.enclaves.write();
            table.remove(&eid);
            self.publish_enclaves(&table);
        }
        self.state.live_enclaves.fetch_sub(1, Ordering::Relaxed);
        self.touch_enclave_table();
    }

    /// Retries the full scrub of a quarantined region; on success the region
    /// leaves quarantine but *stays Blocked* — recovery repairs, it does not
    /// perform Fig. 2 transitions the OS never asked for. Returns whether
    /// the region was released.
    fn retry_quarantined_scrub(&self, region: RegionId) -> bool {
        let Ok(info) = self.region_info(region) else {
            return false;
        };
        for page in 0..info.page_count() {
            // journal: retried under recovery; a failure keeps the
            // quarantine in place for the next recover() pass.
            if fault_point!(self.machine.fault_injector(), "monitor.scrub-page")
                == Crossing::FailOp
            {
                return false;
            }
            if self
                .machine
                .zero_page(info.base.offset(page * PAGE_SIZE as u64))
                .is_err()
            {
                return false;
            }
        }
        {
            let mut backend = self.backend.lock();
            if backend.flush_region_cache(region).is_err() {
                return false;
            }
            if backend.tlb_shootdown(region).is_err() {
                return false;
            }
        }
        self.machine.tlb_shootdown(info.base, info.len);
        if self.state.quarantine.lock().remove(&region) {
            self.touch_quarantine();
        }
        true
    }

    /// Refunds one undelivered-message unit to `sender_id` in the quota
    /// ledger. Delivery and teardown purges both go through here; the
    /// zero-count entry is removed so the ledger (and its audit snapshot)
    /// only ever lists senders with mail actually in flight — the shape the
    /// conservation invariant compares against.
    fn refund_mail_sender(ledger: &mut BTreeMap<u64, u64>, sender_id: u64) {
        if let Some(count) = ledger.get_mut(&sender_id) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                ledger.remove(&sender_id);
            }
        }
    }

    fn record_call<T>(&self, result: SmResult<T>) -> SmResult<T> {
        match &result {
            Ok(_) => {
                self.stats.api_calls.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.api_rejections.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    // ------------------------------------------------------------------
    // diagnostics and SM-internal operations (not part of the call surface)
    // ------------------------------------------------------------------

    /// Returns the measurement of an initialized enclave (not secret; used by
    /// the OS to report identities and by local attestation tests).
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or is not initialized.
    pub fn enclave_measurement(&self, eid: EnclaveId) -> SmResult<Measurement> {
        let enclave = self.lock_enclave(eid)?;
        let meta = enclave.lock();
        meta.measurement()
    }

    /// Returns the ids of all live enclaves (diagnostic; epoch snapshot,
    /// never blocks on a lifecycle call).
    pub fn enclaves(&self) -> Vec<EnclaveId> {
        self.state.enclave_epoch.load().keys().copied().collect()
    }

    /// Returns the number of live enclaves from the relaxed counter — the
    /// lock-free fast path `Debug` and load-shedding diagnostics use.
    pub fn live_enclave_count(&self) -> usize {
        self.state.live_enclaves.load(Ordering::Relaxed) as usize
    }

    /// Takes a consistent [`AuditSnapshot`] of the monitor's
    /// security-relevant state for invariant checking.
    ///
    /// The snapshot uses plain (blocking) locks rather than the API's
    /// try-lock discipline, so taking one between API calls never perturbs
    /// the `ConcurrentCall` behaviour the calls themselves observe.
    ///
    /// Snapshots are built incrementally from a generation-counted cache:
    /// only the state components mutated since the previous audit are
    /// re-collected, and unchanged enclave records are shared by `Arc`
    /// rather than re-cloned. [`SecurityMonitor::audit_full`] bypasses the
    /// cache; the two must always agree (property-tested by the explorer).
    pub fn audit(&self) -> AuditSnapshot {
        let mut cache = self.audit_cache.lock();
        let mut generations = AuditGenerations::default();

        // Every generation is read *before* the state it covers, so a
        // concurrent mutation can only make the cached data newer than the
        // recorded generation — the next audit then conservatively rebuilds.
        let resources_gen = self.state.resources.generation();
        if cache.resources_gen != resources_gen {
            cache.resources = Arc::new(self.state.resources.snapshot());
            cache.resources_gen = resources_gen;
        }
        generations.resources = cache.resources_gen;

        let enclaves_gen = self.state.enclaves_generation.load(Ordering::Relaxed);
        if cache.enclaves_gen != enclaves_gen {
            // Epoch read-side: the audit walks the published snapshot and
            // never blocks a lifecycle call. The generation was read before
            // the load, so a publish racing this walk only makes the data
            // newer than the recorded generation (conservative rebuild).
            let table = self.state.enclave_epoch.load();
            cache.enclaves.retain(|eid, _| table.contains_key(eid));
            for (eid, enclave) in table.iter() {
                let meta = enclave.lock();
                let fresh = match cache.enclaves.get(eid) {
                    Some((gen, _)) if *gen == meta.audit_generation => None,
                    _ => Some((meta.audit_generation, Arc::new(Self::enclave_audit(&meta)))),
                };
                if let Some(entry) = fresh {
                    cache.enclaves.insert(*eid, entry);
                }
            }
            cache.enclaves_vec = cache.enclaves.values().map(|(_, a)| Arc::clone(a)).collect();
            cache.enclaves_gen = enclaves_gen;
        }
        generations.enclaves = cache.enclaves_gen;

        let occupancy_gen = self.state.occupancy_generation.load(Ordering::Relaxed);
        if cache.occupancy_gen != occupancy_gen {
            cache.core_occupancy = Arc::new(
                self.state
                    .core_occupancy
                    .read()
                    .iter()
                    .map(|(core, tid)| (*core, *tid))
                    .collect(),
            );
            cache.occupancy_gen = occupancy_gen;
        }
        generations.occupancy = cache.occupancy_gen;
        generations.threads = self.state.threads_generation.load(Ordering::Relaxed);

        let mail_gen = self.state.mail_generation.load(Ordering::Relaxed);
        if cache.mail_gen != mail_gen {
            cache.mail_outstanding = Arc::new(
                self.state
                    .mail_ledger
                    .lock()
                    .iter()
                    .map(|(sender, count)| (*sender, *count))
                    .collect(),
            );
            cache.mail_gen = mail_gen;
        }
        generations.mail = cache.mail_gen;

        let quarantine_gen = self.state.quarantine_generation.load(Ordering::Relaxed);
        if cache.quarantine_gen != quarantine_gen {
            cache.quarantine = Arc::new(self.quarantined_regions());
            cache.quarantine_gen = quarantine_gen;
        }
        generations.quarantine = cache.quarantine_gen;

        // Audits run at the explorer's quiescent barriers, so this is where
        // epochs retired by table publishes drain (snapshots still held by a
        // straggling reader simply survive to the next audit).
        self.state.enclave_epoch.quiesce();
        self.state.thread_epoch.quiesce();

        AuditSnapshot {
            resources: Arc::clone(&cache.resources),
            enclaves: cache.enclaves_vec.clone(),
            core_occupancy: Arc::clone(&cache.core_occupancy),
            mail_outstanding: Arc::clone(&cache.mail_outstanding),
            quarantine: Arc::clone(&cache.quarantine),
            generations,
        }
    }

    /// Builds an [`AuditSnapshot`] from scratch, bypassing the incremental
    /// cache — the reference implementation the cached [`SecurityMonitor::audit`]
    /// is property-tested against (and the baseline of the audit ablation
    /// bench).
    pub fn audit_full(&self) -> AuditSnapshot {
        let resources_gen = self.state.resources.generation();
        let resources = Arc::new(self.state.resources.snapshot());
        let enclaves_gen = self.state.enclaves_generation.load(Ordering::Relaxed);
        let enclaves = self
            .state
            .enclave_epoch
            .load()
            .values()
            .map(|enclave| Arc::new(Self::enclave_audit(&enclave.lock())))
            .collect();
        let occupancy_gen = self.state.occupancy_generation.load(Ordering::Relaxed);
        let core_occupancy = Arc::new(
            self.state
                .core_occupancy
                .read()
                .iter()
                .map(|(core, tid)| (*core, *tid))
                .collect::<Vec<_>>(),
        );
        let mail_gen = self.state.mail_generation.load(Ordering::Relaxed);
        let mail_outstanding = Arc::new(
            self.state
                .mail_ledger
                .lock()
                .iter()
                .map(|(sender, count)| (*sender, *count))
                .collect::<Vec<_>>(),
        );
        let quarantine_gen = self.state.quarantine_generation.load(Ordering::Relaxed);
        let quarantine = Arc::new(self.quarantined_regions());
        AuditSnapshot {
            resources,
            enclaves,
            core_occupancy,
            mail_outstanding,
            quarantine,
            generations: AuditGenerations {
                resources: resources_gen,
                enclaves: enclaves_gen,
                threads: self.state.threads_generation.load(Ordering::Relaxed),
                occupancy: occupancy_gen,
                mail: mail_gen,
                quarantine: quarantine_gen,
            },
        }
    }

    fn enclave_audit(meta: &EnclaveMeta) -> EnclaveAudit {
        EnclaveAudit {
            id: meta.id,
            initialized: meta.lifecycle == EnclaveLifecycle::Initialized,
            regions: meta.windows.iter().map(|w| w.region).collect(),
            measurement: meta.measurement,
            running_threads: meta.running_threads,
            threads: meta.threads.clone(),
            mail_queued: meta
                .mailboxes
                .iter()
                .flat_map(|mb| mb.queued())
                .map(|m| (m.sender_id, m.message.len() as u32))
                .collect(),
        }
    }

    /// Returns the current state of a resource (diagnostic / test helper;
    /// locks only the resource's shard).
    ///
    /// # Errors
    ///
    /// Fails if the resource is unknown.
    pub fn resource_state(&self, id: ResourceId) -> SmResult<ResourceState> {
        self.state.resources.state(id)
    }

    /// Returns the thread currently occupying `core`, if any (shared read).
    pub fn thread_on_core(&self, core: CoreId) -> Option<ThreadId> {
        self.state.core_occupancy.read().get(&core).copied()
    }

    /// Returns a thread's metadata snapshot (test/diagnostic helper).
    ///
    /// This clones the whole record *including the saved AEX hart state*;
    /// callers that only need the state machine or a single field should use
    /// the cheap accessors ([`SecurityMonitor::thread_state`],
    /// [`SecurityMonitor::thread_fault_handler`],
    /// [`SecurityMonitor::thread_ids`]).
    ///
    /// # Errors
    ///
    /// Fails if the thread does not exist.
    pub fn thread_info(&self, tid: ThreadId) -> SmResult<ThreadMeta> {
        Ok(self.lock_thread(tid)?.lock().clone())
    }

    /// Returns the ids of all live threads (diagnostic; no metadata cloned;
    /// epoch snapshot, never blocks on a lifecycle call).
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        self.state.thread_epoch.load().keys().copied().collect()
    }

    /// Returns a thread's current state machine position without cloning the
    /// full metadata record.
    ///
    /// # Errors
    ///
    /// Fails if the thread does not exist.
    pub fn thread_state(&self, tid: ThreadId) -> SmResult<ThreadState> {
        Ok(self.lock_thread(tid)?.lock().state)
    }

    /// Returns a thread's registered fault-handler entry point, if any,
    /// without cloning the full metadata record (the event dispatcher asks
    /// this on every enclave-handleable fault).
    ///
    /// # Errors
    ///
    /// Fails if the thread does not exist.
    pub fn thread_fault_handler(&self, tid: ThreadId) -> SmResult<Option<u64>> {
        Ok(self.lock_thread(tid)?.lock().fault_handler_pc)
    }

    /// Asynchronous enclave exit: invoked by the event dispatcher when an
    /// interrupt or unhandled fault arrives while an enclave occupies `core`.
    /// Saves the thread's state, cleans the core and returns it to the OS.
    ///
    /// This is an SM-internal operation, not an API call: no caller session
    /// exists because the *event*, not a request, triggers it.
    ///
    /// # Errors
    ///
    /// Fails if no enclave thread occupies the core.
    pub fn asynchronous_enclave_exit(&self, core: CoreId) -> SmResult<Cycles> {
        let result = self.with_global_lock(|| {
            let tid = *self
                .state
                .core_occupancy
                .read()
                .get(&core)
                .ok_or(SmError::InvalidState {
                    reason: "no enclave thread runs on this core",
                })?;
            let thread = self.lock_thread(tid)?;
            let eid = {
                let mut t = self.try_lock(&thread)?;
                // Save the enclave's architected state before anything is
                // wiped.
                let snapshot = self.machine.hart(core).snapshot();
                t.aex_state = Some(snapshot);
                t.aex_pending = true;
                let (eid, _) = t.stop_running()?;
                self.touch_threads();
                self.state.core_occupancy.write().remove(&core);
                self.touch_occupancy();
                eid
                // The thread guard drops here: enclave metadata sits below
                // thread metadata in the lock hierarchy, so the owner's
                // running count is settled after the hand-off is published.
            };
            if let Ok(enclave) = self.lock_enclave(eid) {
                let mut meta = enclave.lock();
                meta.running_threads = meta.running_threads.saturating_sub(1);
                self.touch_enclave(&mut meta);
            }
            let cost = self.clean_core_for_handoff(core)?;
            self.stats.aex_count.fetch_add(1, Ordering::Relaxed);
            Ok(cost)
        });
        self.record_call(result)
    }

    fn clean_core_for_handoff(&self, core: CoreId) -> SmResult<Cycles> {
        let mut cost = Cycles::ZERO;
        if !self.weakened_by(TestWeakening::SkipCoreClean) {
            cost += self.machine.clean_core(core)?;
        }
        {
            let mut backend = self.backend.lock();
            cost += backend.flush(core, FlushKind::CoreState)?;
            cost += backend.flush(core, FlushKind::PrivateCaches)?;
        }
        self.machine
            .install_context(core, DomainKind::Untrusted, PrivilegeLevel::Supervisor, None, 0);
        self.stats
            .cleaning_cycles
            .fetch_add(cost.count(), Ordering::Relaxed);
        Ok(cost)
    }

    /// Returns the SM certificate as a structured value (used by the signing
    /// enclave and the verifier; [`SmApi::get_field`] provides the byte
    /// encoding for the register-level ABI).
    pub fn sm_certificate(&self) -> crate::attestation::Certificate {
        self.identity.sm_certificate.clone()
    }
}

impl SmApi for SecurityMonitor {
    // ------------------------------------------------------------------
    // enclave lifecycle (Fig. 3)
    // ------------------------------------------------------------------

    fn create_enclave(
        &self,
        session: CallerSession,
        evrange_base: VirtAddr,
        evrange_len: u64,
        regions: &[RegionId],
    ) -> SmResult<EnclaveId> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            if !evrange_base.is_page_aligned()
                || evrange_len == 0
                || !evrange_len.is_multiple_of(PAGE_SIZE as u64)
            {
                return Err(SmError::InvalidArgument {
                    reason: "evrange must be page aligned and non-empty",
                });
            }
            if regions.is_empty() {
                return Err(SmError::InvalidArgument {
                    reason: "at least one memory region is required",
                });
            }
            // Reserve a metadata slot atomically: a plain load-then-check
            // would let two concurrent creations both pass at
            // `max_enclaves - 1` and overshoot the cap. The reservation is
            // released by the guard on every failure path below and
            // consumed (defused) by the table insert.
            if self
                .state
                .live_enclaves
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < self.config.max_enclaves as u64).then_some(n + 1)
                })
                .is_err()
            {
                return Err(SmError::OutOfResources {
                    resource: "enclave metadata slots",
                });
            }
            let mut slot = SlotReservation {
                counter: &self.state.live_enclaves,
                committed: false,
            };

            // Lock the shards holding the requested regions, in ascending
            // shard order (the lock hierarchy); disjoint creations take
            // disjoint locks and proceed in parallel.
            let mut shard_indices: Vec<usize> = regions
                .iter()
                .map(|r| crate::resource::shard_of(ResourceId::Region(*r)))
                .collect();
            shard_indices.sort_unstable();
            shard_indices.dedup();
            let shards = self.state.resources.shards();
            let mut guards: BTreeMap<usize, OrderedMutexGuard<'_, ResourceMap>> = BTreeMap::new();
            for index in shard_indices {
                guards.insert(index, self.try_lock(&shards[index])?);
            }
            // All regions must be available before anything is mutated.
            for region in regions {
                let id = ResourceId::Region(*region);
                let guard = guards
                    .get_mut(&crate::resource::shard_of(id))
                    .expect("shard locked above");
                match guard.state(id)? {
                    ResourceState::Available => {}
                    _ => {
                        return Err(SmError::ResourceStateViolation {
                            reason: "region must be available to dedicate to a new enclave",
                        })
                    }
                }
            }

            // Geometry comes from the construction-time cache, not the
            // backend lock: region layout is immutable platform fact.
            let mut windows: Vec<PhysWindow> = Vec::with_capacity(regions.len());
            for region in regions {
                let info = self.region_info(*region)?;
                windows.push(PhysWindow {
                    region: *region,
                    base: info.base,
                    len: info.len,
                });
            }
            windows.sort_by_key(|w| w.base);
            let eid = EnclaveId::new(windows[0].base.as_u64());
            if self.state.enclave_epoch.load().contains_key(&eid) {
                return Err(SmError::InvalidState {
                    reason: "an enclave already uses this memory",
                });
            }

            // Intent entry: recorded after validation, before the first
            // mutation. Every crash window below (the backend fault points)
            // is covered — recovery undoes a create whose table insert never
            // happened. Retired on both the commit and the rollback path;
            // only a crash leaves it pending.
            let seq = self.journal_record(JournalEntry::CreateEnclave {
                eid,
                regions: regions.to_vec(),
            });
            let committed = (|| -> SmResult<()> {
                // Commit phase 1: program the isolation primitive, inside one
                // batched backend critical section — every window's assignment
                // and DMA filter flushes in a single `apply_batch`, so one
                // TLB-shootdown round amortizes the whole grant set. The batch
                // is all-or-nothing: the platform validates capacity and
                // geometry for the entire batch (Keystone PMP exhaustion
                // included) *before* mutating anything, which is what retired
                // the per-window rollback loop that used to live here. The
                // shard guards stay held across it, so a concurrent
                // transaction cannot re-grant a region out from under a
                // rejected batch.
                {
                    let mut ops: Vec<RegionOp> = Vec::with_capacity(windows.len() * 2);
                    for window in &windows {
                        ops.push(RegionOp::Assign {
                            region: window.region,
                            domain: DomainKind::Enclave(eid),
                            perms: MemPerms::RWX,
                        });
                        ops.push(RegionOp::SetDmaBlocked {
                            region: window.region,
                            blocked: true,
                        });
                    }
                    let mut backend = self.backend.lock();
                    let cost = backend.apply_batch(&ops)?;
                    self.machine.charge(cost);
                    // The backend lock drops here — phase 2 is pure metadata.
                }
                // Commit phase 2: ownership transfer — every region was
                // validated *Available* above (and its shard is still locked),
                // so the transitions cannot fail.
                for region in regions {
                    let id = ResourceId::Region(*region);
                    guards
                        .get_mut(&crate::resource::shard_of(id))
                        .expect("shard locked above")
                        .grant(DomainKind::SecurityMonitor, id, DomainKind::Enclave(eid))?;
                }
                self.touch_resources();

                let ctx = MeasurementContext::start(
                    &self.identity.sm_measurement,
                    evrange_base,
                    evrange_len,
                );
                let mut meta = EnclaveMeta::new(eid, evrange_base, evrange_len, windows, ctx);
                // A fresh generation from the global counter: enclave ids are
                // physical addresses and get reused after delete, so a recreated
                // enclave must never alias a stale cached audit record.
                self.touch_enclave(&mut meta);
                {
                    let mut table = self.state.enclaves.write();
                    table.insert(eid, Arc::new(OrderedMutex::new(rank::ENCLAVE_META, meta)));
                    // Publish while still holding the write lock (it
                    // serializes publishers) and before the generation bump.
                    self.publish_enclaves(&table);
                }
                // The insert consumes the slot reserved at admission.
                slot.committed = true;
                self.touch_enclave_table();
                Ok(())
            })();
            self.journal_complete(seq);
            committed?;
            Ok(eid)
        }))
    }

    fn allocate_page_table(&self, session: CallerSession, eid: EnclaveId) -> SmResult<PhysAddr> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            let enclave = self.lock_enclave(eid)?;
            let mut meta = self.try_lock(&enclave)?;
            meta.require_loading()?;
            if meta.page_table_root.is_some() {
                return Err(SmError::InvalidState {
                    reason: "page tables already allocated",
                });
            }
            let pages_needed = PageTableBuilder::table_pages_needed(
                meta.evrange_base.page_number(),
                meta.evrange_len / PAGE_SIZE as u64,
            );
            let mut table_pages = Vec::with_capacity(pages_needed as usize);
            for _ in 0..pages_needed {
                let page = meta.alloc_next_page()?;
                self.machine.zero_page(page)?;
                table_pages.push(page);
            }
            let root = table_pages[0];
            meta.page_table_root = Some(root);
            if let Some(ctx) = meta.measurement_ctx.as_mut() {
                for (level, _) in table_pages.iter().enumerate() {
                    ctx.extend_page_table(level.min(255) as u8);
                }
            }
            // The remaining reserved pages back the intermediate tables that
            // `load_page` wires up on demand. Reverse so `pop` hands them out
            // in ascending physical order.
            let mut pool: Vec<PhysAddr> = table_pages[1..].to_vec();
            pool.reverse();
            meta.pt_pool = pool;
            Ok(root)
        }))
    }

    fn load_page(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        vaddr: VirtAddr,
        src: Tainted<PhysAddr>,
        perms: MemPerms,
    ) -> SmResult<PhysAddr> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            let enclave = self.lock_enclave(eid)?;
            let mut meta = self.try_lock(&enclave)?;
            meta.require_loading()?;
            // Alignment is proved first (jointly with the virtual address —
            // one shared diagnostic), yielding the intermediate `PageAligned`
            // typestate; the access proof comes later in its historical slot.
            let src = match self.sanitizer().check_page_aligned(src) {
                Ok(aligned) if vaddr.is_page_aligned() => aligned,
                _ => {
                    return Err(SmError::InvalidArgument {
                        reason: "addresses must be page aligned",
                    });
                }
            };
            if !meta.in_evrange(vaddr) {
                return Err(SmError::InvalidArgument {
                    reason: "virtual address outside evrange",
                });
            }
            if perms.is_none() {
                return Err(SmError::InvalidArgument {
                    reason: "a loaded page needs at least one permission",
                });
            }
            let root = meta.page_table_root.ok_or(SmError::InvalidState {
                reason: "page tables must be allocated before loading pages",
            })?;
            // The source must be memory the OS could legitimately read.
            let src = self
                .sanitizer()
                .check_page::<ReadAccess>(DomainKind::Untrusted, src)
                .map_err(|_| SmError::Unauthorized)?;
            meta.record_mapping(vaddr)?;
            let dst = meta.alloc_next_page()?;
            meta.data_loading_started = true;

            // Copy contents and build the mapping inside enclave memory.
            let mut contents = vec![0u8; PAGE_SIZE];
            self.machine.read_page(&src, &mut contents)?;
            self.machine.phys_write(dst, &contents)?;
            self.machine.charge(self.machine.cost_model().zero_page);

            let mut pt_pool = std::mem::take(&mut meta.pt_pool);
            let map_result = self.machine.with_memory_mut(|mem| {
                let mut builder = PageTableBuilder::new(root);
                builder
                    .map(mem, vaddr.page_number(), dst.page_number(), perms, || pt_pool.pop())
                    .map_err(|_| SmError::InvalidState {
                        reason: "page-table pages exhausted for this mapping",
                    })
            });
            meta.pt_pool = pt_pool;
            map_result?;

            if let Some(ctx) = meta.measurement_ctx.as_mut() {
                ctx.extend_page(vaddr, &contents);
                self.machine
                    .charge(self.machine.cost_model().hash_block.scaled((PAGE_SIZE / 64) as u64));
            }
            Ok(dst)
        }))
    }

    fn load_thread(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        entry_pc: u64,
        fault_handler_pc: Option<u64>,
    ) -> SmResult<ThreadId> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            let enclave = self.lock_enclave(eid)?;
            let mut meta = self.try_lock(&enclave)?;
            meta.require_loading()?;
            // Admission check and insert under one write lock: a dropped
            // read guard between them would let two concurrent loads both
            // pass at `max_threads - 1`.
            let tid = {
                let mut threads = self.state.threads.write();
                if threads.len() >= self.config.max_threads {
                    return Err(SmError::OutOfResources {
                        resource: "thread metadata slots",
                    });
                }
                let tid = self.state.tids.alloc().ok_or(SmError::OutOfResources {
                    resource: "thread ids",
                })?;
                let thread = ThreadMeta::loaded(tid, eid, entry_pc, fault_handler_pc);
                threads.insert(tid, Arc::new(OrderedMutex::new(rank::THREAD_META, thread)));
                self.publish_threads(&threads);
                tid
            };
            self.touch_threads();
            meta.threads.push(tid);
            self.touch_enclave(&mut meta);
            if let Some(ctx) = meta.measurement_ctx.as_mut() {
                ctx.extend_thread(entry_pc, fault_handler_pc);
            }
            Ok(tid)
        }))
    }

    fn init_enclave(&self, session: CallerSession, eid: EnclaveId) -> SmResult<Measurement> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            let enclave = self.lock_enclave(eid)?;
            let mut meta = self.try_lock(&enclave)?;
            meta.require_loading()?;
            if meta.page_table_root.is_none() {
                return Err(SmError::InvalidState {
                    reason: "enclave has no page tables",
                });
            }
            if meta.threads.is_empty() {
                return Err(SmError::InvalidState {
                    reason: "enclave has no threads",
                });
            }
            let ctx = meta.measurement_ctx.take().ok_or(SmError::InvalidState {
                reason: "measurement context missing",
            })?;
            let measurement = ctx.finalize();
            meta.measurement = Some(measurement);
            meta.lifecycle = EnclaveLifecycle::Initialized;
            self.touch_enclave(&mut meta);
            Ok(measurement)
        }))
    }

    fn delete_enclave(&self, session: CallerSession, eid: EnclaveId) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            // The ownership sweep needs the whole-map view (the OS may have
            // granted the enclave regions beyond its windows), so every
            // shard is acquired up front, in ascending rank order — shard
            // ranks sit below the metadata ranks, so taking them *first*
            // lets the enclave's own metadata guard stay held from the
            // running-threads validation all the way through thread removal
            // and region blocking. Without that span a concurrent
            // `enter_enclave` could start a thread between the check and
            // the commit and end up executing inside an enclave whose
            // regions were just blocked out from under it.
            let mut shards = self.try_lock_all_shards()?;
            let enclave = self.lock_enclave(eid)?;
            let meta = self.try_lock(&enclave)?;
            if meta.running_threads > 0 {
                return Err(SmError::InvalidState {
                    reason: "enclave has running threads",
                });
            }
            let owned_tids: Vec<ThreadId> = {
                let threads = self.state.thread_epoch.load();
                for tid in &meta.threads {
                    if let Some(thread) = threads.get(tid) {
                        if matches!(thread.lock().state, ThreadState::Running { .. }) {
                            return Err(SmError::InvalidState {
                                reason: "enclave has running threads",
                            });
                        }
                    }
                }
                meta.threads.clone()
            };
            // Intent entry: validation passed, mutation begins. The delete's
            // crash windows are the journal crossings themselves (it touches
            // no backend fault points); a pending entry replays through the
            // idempotent redo path.
            let seq = self.journal_record(JournalEntry::DeleteEnclave { eid });
            let committed = (|| -> SmResult<()> {
                // The enclave's thread metadata lives in SM memory on its
                // behalf; destroying the enclave reclaims those slots.
                // Removing it while the enclave guard is held means any
                // later `enter_enclave` that squeezes in before the table
                // removal fails on the thread lookup.
                let removed_tids: Vec<ThreadId> = {
                    let mut threads = self.state.threads.write();
                    let removed: Vec<ThreadId> = owned_tids
                        .into_iter()
                        .filter(|tid| threads.remove(tid).is_some())
                        .collect();
                    self.publish_threads(&threads);
                    removed
                };
                // The slots are gone from the table; their ids return to the
                // allocator (per-hart cache first, spilling to the pool).
                for tid in removed_tids {
                    self.state.tids.free(tid);
                }
                self.touch_threads();
                // Block all of the enclave's regions (they stay
                // inaccessible to everyone until cleaned). A resource may
                // already be blocked under this id: enclave ids are
                // physical addresses, so after a delete whose blocked
                // regions the OS never cleaned, a new enclave over the same
                // base region reuses the id and inherits the stale flags.
                // The goal state (flagged for release) is already reached
                // there, and skipping keeps the commit loop total — failing
                // halfway would strand a live enclave with blocked windows
                // (found by the adversarial explorer).
                for shard in shards.iter_mut() {
                    let owned = shard.owned_by(DomainKind::Enclave(eid));
                    for rid in owned {
                        if let Ok(ResourceState::Blocked(_)) = shard.state(rid) {
                            continue;
                        }
                        shard.block(DomainKind::SecurityMonitor, rid)?;
                    }
                }
                // The meta guard drops here; the mail purge below locks
                // *other* enclaves' records at the same rank, so it must
                // run without ours held.
                drop(meta);
                drop(shards);
                self.touch_resources();
                // journal: a crash between the ownership sweep and the
                // mail-fabric teardown is the interesting mid-delete state —
                // redo_delete finishes the purge from the pending entry.
                self.journal_step();
                // Mail-fabric teardown — placed after the last fallible step so
                // a delete refused by a lock conflict can never have already
                // destroyed a still-live enclave's in-flight mail. Scrub every
                // trace of the dying enclave's identity from the fabric: enclave
                // ids are recycled physical addresses, so (a) a queued message
                // still carrying this id must not survive into the next
                // incarnation's identity (purging also resets the dead sender's
                // quota), and (b) an accept filter naming this id must be
                // disarmed — otherwise the next enclave recycled onto the id
                // would inherit a delivery capability extended to its previous
                // life (found by the adversarial explorer: a rebuilt signing
                // enclave matched a victim's stale filter and its attestation
                // reply was mis-routed). Lock order matches the send/get paths
                // (enclave meta before ledger, never both ways): the purge walk
                // holds the table + one meta at a time with no ledger held, and
                // the ledger is settled afterwards on its own.
                let mut purged_any = false;
                {
                    let table = self.state.enclave_epoch.load();
                    for (other_id, other) in table.iter() {
                        if *other_id == eid {
                            continue;
                        }
                        let mut other_meta = other.lock();
                        let purged: usize = other_meta
                            .mailboxes
                            .iter_mut()
                            .map(|mb| mb.purge_sender(eid.as_u64()))
                            .sum();
                        for mb in other_meta.mailboxes.iter_mut() {
                            mb.disarm_if_expecting(eid.as_u64());
                        }
                        if purged > 0 {
                            purged_any = true;
                            self.touch_enclave(&mut other_meta);
                        }
                    }
                }
                // Undelivered mail in the dying enclave's own queues is
                // destroyed with it; the senders' quotas are refunded. Read at
                // scrub time (not validation time), so a send racing the delete
                // cannot leave an unrefunded ledger entry behind.
                let inbound_refunds: Vec<u64> = enclave
                    .lock()
                    .mailboxes
                    .iter()
                    .flat_map(|mb| mb.queued())
                    .map(|m| m.sender_id)
                    .collect();
                {
                    let mut ledger = self.state.mail_ledger.lock();
                    let mail_changed =
                        !inbound_refunds.is_empty() || purged_any || ledger.contains_key(&eid.as_u64());
                    for sender in inbound_refunds {
                        Self::refund_mail_sender(&mut ledger, sender);
                    }
                    ledger.remove(&eid.as_u64());
                    if mail_changed {
                        self.touch_mail();
                    }
                }
                {
                    let mut table = self.state.enclaves.write();
                    table.remove(&eid);
                    self.publish_enclaves(&table);
                }
                self.state.live_enclaves.fetch_sub(1, Ordering::Relaxed);
                self.touch_enclave_table();
                // Post-removal sweep: a concurrent `grant_resource` may have
                // granted this enclave a region between the ownership sweep
                // above and the table removal (its liveness re-check passed
                // while the enclave was still listed). The enclave is gone from
                // the table now, so no further grant can name it — blocking
                // whatever such a straggler left behind makes "no resource owned
                // by a dead enclave" hold at every quiescent point. Blocking
                // acquires are safe here: nothing else is held, and the sweep is
                // a no-op in the common case.
                let mut swept_any = false;
                for shard in self.state.resources.shards() {
                    let mut shard = shard.lock();
                    for rid in shard.owned_by(DomainKind::Enclave(eid)) {
                        if let Ok(ResourceState::Blocked(_)) = shard.state(rid) {
                            continue;
                        }
                        shard.block(DomainKind::SecurityMonitor, rid)?;
                        swept_any = true;
                    }
                }
                if swept_any {
                    self.touch_resources();
                }
                Ok(())
            })();
            self.journal_complete(seq);
            committed
        }))
    }

    // ------------------------------------------------------------------
    // resource API (Fig. 2)
    // ------------------------------------------------------------------

    fn block_resource(&self, session: CallerSession, id: ResourceId) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            let mut shard = self.try_lock_shard(id)?;
            shard.block(session.domain(), id)?;
            drop(shard);
            self.touch_resources();
            Ok(())
        }))
    }

    fn clean_resource(&self, session: CallerSession, id: ResourceId) -> SmResult<Cycles> {
        self.record_call(self.with_global_lock(|| {
            let mut shard = self.try_lock_shard(id)?;
            // Validate the transition first (without committing).
            match shard.state(id)? {
                ResourceState::Blocked(_) => {}
                _ => {
                    return Err(SmError::ResourceStateViolation {
                        reason: "resource must be blocked before cleaning",
                    })
                }
            }
            let caller = session.domain();
            if caller != DomainKind::Untrusted && caller != DomainKind::SecurityMonitor {
                return Err(SmError::Unauthorized);
            }
            // A quarantined region refuses cleaning with Again until
            // recover() verifies the backend can scrub it again.
            if let ResourceId::Region(region) = id {
                if self.is_quarantined(region) {
                    return Err(SmError::Again);
                }
            }

            // The shard guard is held across the hardware cleaning, so a
            // concurrent transaction on the same resource keeps failing
            // with `ConcurrentCall` until the scrub has committed — the
            // clean-before-reuse window stays closed on every hart.
            let mut cost = Cycles::ZERO;
            match id {
                ResourceId::Core(core) => {
                    // Core cleans cross no fault points (the flush calls are
                    // core-local, not region ops), so they stay unjournaled:
                    // no crash window can open inside them.
                    cost += self.machine.clean_core(core)?;
                    let mut backend = self.backend.lock();
                    cost += backend.flush(core, FlushKind::CoreState)?;
                    cost += backend.flush(core, FlushKind::PrivateCaches)?;
                }
                ResourceId::Region(region) => {
                    let info = self.region_info(region)?;
                    // Intent entry: the scrub below crosses per-page and
                    // backend fault points. A crashed clean leaves the
                    // region Blocked with a partial scrub, which a retried
                    // clean repairs from scratch — so replay is a no-op, but
                    // the pending entry still marks the crash for audit.
                    let seq = self.journal_record(JournalEntry::Clean { id });
                    let scrub = (|| -> SmResult<()> {
                        // Zero every page of the region — outside the backend
                        // lock; the memory writes go through the machine's own
                        // DRAM lock and need no isolation-primitive access.
                        if !self.weakened_by(TestWeakening::SkipRegionScrub) {
                            for page in 0..info.page_count() {
                                // journal: one crossing per scrubbed page; a
                                // failure quarantines the region below.
                                if fault_point!(
                                    self.machine.fault_injector(),
                                    "monitor.scrub-page"
                                ) == Crossing::FailOp
                                {
                                    return Err(SmError::Again);
                                }
                                self.machine
                                    .zero_page(info.base.offset(page * PAGE_SIZE as u64))?;
                                cost += self.machine.cost_model().zero_page;
                            }
                        }
                        {
                            let mut backend = self.backend.lock();
                            cost += backend.flush_region_cache(region)?;
                            cost += backend.tlb_shootdown(region)?;
                        }
                        self.machine.tlb_shootdown(info.base, info.len);
                        Ok(())
                    })();
                    if let Err(err) = scrub {
                        if self.weakened_by(TestWeakening::SkipQuarantine) {
                            // Weakened: swallow the fault and complete the
                            // transition over possibly-dirty memory — the
                            // explorer's FaultStorm attack must catch this.
                        } else {
                            // Degrade gracefully instead of wedging: the
                            // region stays Blocked, parked in quarantine;
                            // the caller backs off with Again and recover()
                            // retries the scrub once the backend heals.
                            self.quarantine_region(region);
                            self.journal_complete(seq);
                            return Err(err);
                        }
                    }
                    self.stats
                        .cleaning_cycles
                        .fetch_add(cost.count(), Ordering::Relaxed);
                    let cleaned = shard.clean(caller, id);
                    drop(shard);
                    if cleaned.is_ok() {
                        self.touch_resources();
                    }
                    self.journal_complete(seq);
                    cleaned?;
                    return Ok(cost);
                }
            }
            self.stats
                .cleaning_cycles
                .fetch_add(cost.count(), Ordering::Relaxed);
            shard.clean(caller, id)?;
            drop(shard);
            self.touch_resources();
            Ok(cost)
        }))
    }

    fn grant_resource(
        &self,
        session: CallerSession,
        id: ResourceId,
        new_owner: DomainKind,
    ) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            if new_owner == DomainKind::SecurityMonitor {
                return Err(SmError::InvalidArgument {
                    reason: "resources cannot be granted to the SM through this call",
                });
            }
            let mut shard = self.try_lock_shard(id)?;
            // A quarantined region must not re-enter circulation until
            // recover() has verified the backend can scrub it.
            if let ResourceId::Region(region) = id {
                if self.is_quarantined(region) {
                    return Err(SmError::Again);
                }
            }
            // Granting to an enclave that does not exist would strand the
            // resource in a state nobody can use or reclaim through the
            // normal transitions — the owner can never block it. (Found by
            // the adversarial explorer's exclusivity invariant.) The
            // liveness check runs *while the shard is held* (shard ranks sit
            // below the enclave table, so the order is legal): a racing
            // `delete_enclave` either already removed the enclave — the
            // check fails here — or removes it afterwards and catches this
            // grant in its post-removal sweep.
            if let DomainKind::Enclave(eid) = new_owner {
                if !self.state.enclave_epoch.load().contains_key(&eid) {
                    return Err(SmError::UnknownEnclave(eid));
                }
            }
            // Validate without committing (authorization first, mirroring
            // `ResourceMap::grant`), then program the isolation primitive,
            // and only then publish the ownership transfer — the
            // validate → program → publish protocol. Committing first would
            // leave the map claiming an owner the hardware never isolates
            // when the backend fails (PMP exhaustion), and nobody could
            // reclaim the region through the normal transitions.
            let caller = session.domain();
            if caller != DomainKind::Untrusted && caller != DomainKind::SecurityMonitor {
                return Err(SmError::Unauthorized);
            }
            match shard.state(id)? {
                ResourceState::Available => {}
                _ => {
                    return Err(SmError::ResourceStateViolation {
                        reason: "resource must be available to be granted",
                    })
                }
            }
            // Intent entry: the backend programming below crosses fault
            // points. A crash between the PMP write and the map commit is
            // undone during replay by parking the backend on the SM, so the
            // still-Available region never leaks to `new_owner`.
            let seq = self.journal_record(JournalEntry::Grant { id, new_owner });
            let committed = (|| -> SmResult<()> {
                if let ResourceId::Region(region) = id {
                    // One all-or-nothing batch programs the assignment and
                    // the DMA filter: the platform validates the whole batch
                    // before mutating, so the set_dma_blocked rollback that
                    // used to live here is gone — a rejected batch leaves
                    // hardware and (still-unmutated) metadata agreeing.
                    let ops = [
                        RegionOp::Assign {
                            region,
                            domain: new_owner,
                            perms: MemPerms::RWX,
                        },
                        RegionOp::SetDmaBlocked {
                            region,
                            blocked: new_owner != DomainKind::Untrusted,
                        },
                    ];
                    let mut backend = self.backend.lock();
                    let cost = backend.apply_batch(&ops)?;
                    self.machine.charge(cost);
                }
                shard.grant(caller, id, new_owner)?;
                Ok(())
            })();
            drop(shard);
            if committed.is_ok() {
                self.touch_resources();
            }
            self.journal_complete(seq);
            committed?;
            Ok(())
        }))
    }

    // ------------------------------------------------------------------
    // thread scheduling (Fig. 4)
    // ------------------------------------------------------------------

    fn enter_enclave(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        tid: ThreadId,
    ) -> SmResult<EnclaveEntry> {
        let core = session.core();
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            if !self.machine.has_hart(core) {
                return Err(SmError::InvalidArgument {
                    reason: "no such core",
                });
            }
            let enclave = self.lock_enclave(eid)?;
            let thread = self.lock_thread(tid)?;
            let mut meta = self.try_lock(&enclave)?;
            meta.require_initialized()?;
            let mut t = self.try_lock(&thread)?;
            {
                let mut occupancy = self.state.core_occupancy.write();
                if occupancy.contains_key(&core) {
                    return Err(SmError::InvalidState {
                        reason: "core already runs an enclave thread",
                    });
                }
                t.start_running(eid, core)?;
                self.touch_threads();
                occupancy.insert(core, tid);
            }
            self.touch_occupancy();
            meta.running_threads += 1;
            self.touch_enclave(&mut meta);

            let mut cost = Cycles::ZERO;
            // Clean whatever the OS left on the core before handing it to the
            // enclave (the reverse hand-off is the AEX path).
            cost += self.machine.clean_core(core)?;
            {
                let mut backend = self.backend.lock();
                cost += backend.flush(core, FlushKind::CoreState)?;
                cost += backend.flush(core, FlushKind::PrivateCaches)?;
            }

            let (entry_pc, aex_pending) = if let Some(snapshot) = t.aex_state.as_ref() {
                // Re-entry after an AEX: restore the saved state.
                let mut hart = self.machine.hart(core);
                hart.restore(snapshot);
                hart.domain = DomainKind::Enclave(eid);
                hart.privilege = PrivilegeLevel::User;
                hart.pending_trap = None;
                (snapshot.pc, true)
            } else {
                self.machine.install_context(
                    core,
                    DomainKind::Enclave(eid),
                    PrivilegeLevel::User,
                    meta.page_table_root,
                    t.entry_pc,
                );
                (t.entry_pc, false)
            };
            t.aex_state = None;
            t.aex_pending = false;
            cost += self.machine.cost_model().trap_return;
            self.machine.charge(cost);
            Ok(EnclaveEntry {
                entry_pc,
                aex_pending,
                cost,
            })
        }))
    }

    fn exit_enclave(&self, session: CallerSession) -> SmResult<Cycles> {
        let core = session.core();
        self.record_call(self.with_global_lock(|| {
            let eid = session.require_enclave()?;
            let tid = *self
                .state
                .core_occupancy
                .read()
                .get(&core)
                .ok_or(SmError::InvalidState {
                    reason: "no enclave thread runs on this core",
                })?;
            let thread = self.lock_thread(tid)?;
            {
                let mut t = self.try_lock(&thread)?;
                let (owner, _) = t.stop_running()?;
                self.touch_threads();
                if owner != eid {
                    // Should be unreachable: the caller identity comes from
                    // the hart, which the SM itself configured.
                    return Err(SmError::Unauthorized);
                }
                self.state.core_occupancy.write().remove(&core);
                self.touch_occupancy();
                // The thread guard drops before the enclave metadata lock
                // (enclave metadata ranks below thread metadata).
            }
            if let Ok(enclave) = self.lock_enclave(eid) {
                let mut meta = enclave.lock();
                meta.running_threads = meta.running_threads.saturating_sub(1);
                self.touch_enclave(&mut meta);
            }
            let cost = self.clean_core_for_handoff(core)?;
            Ok(cost)
        }))
    }

    fn create_thread(&self, session: CallerSession, entry_pc: u64) -> SmResult<ThreadId> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            // Admission check and insert under one write lock (see
            // `load_thread`): the cap must hold against concurrent creates.
            let mut threads = self.state.threads.write();
            if threads.len() >= self.config.max_threads {
                return Err(SmError::OutOfResources {
                    resource: "thread metadata slots",
                });
            }
            let tid = self.state.tids.alloc().ok_or(SmError::OutOfResources {
                resource: "thread ids",
            })?;
            threads.insert(
                tid,
                Arc::new(OrderedMutex::new(
                    rank::THREAD_META,
                    ThreadMeta::available(tid, entry_pc),
                )),
            );
            self.publish_threads(&threads);
            drop(threads);
            self.touch_threads();
            Ok(tid)
        }))
    }

    fn delete_thread(&self, session: CallerSession, tid: ThreadId) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            let thread = self.lock_thread(tid)?;
            {
                let t = self.try_lock(&thread)?;
                if t.state != ThreadState::Available {
                    return Err(SmError::InvalidState {
                        reason: "only available threads can be deleted",
                    });
                }
            }
            let removed = {
                let mut threads = self.state.threads.write();
                let removed = threads.remove(&tid).is_some();
                self.publish_threads(&threads);
                removed
            };
            if removed {
                self.state.tids.free(tid);
            }
            self.touch_threads();
            Ok(())
        }))
    }

    fn assign_thread(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        tid: ThreadId,
    ) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            session.require_os()?;
            let _ = self.lock_enclave(eid)?;
            let thread = self.lock_thread(tid)?;
            let mut t = self.try_lock(&thread)?;
            t.assign(eid)?;
            self.touch_threads();
            Ok(())
        }))
    }

    fn accept_thread(&self, session: CallerSession, tid: ThreadId) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            let eid = session.require_enclave()?;
            let thread = self.lock_thread(tid)?;
            {
                let mut t = self.try_lock(&thread)?;
                t.accept(eid)?;
                self.touch_threads();
                // Drop before the enclave metadata lock (hierarchy).
            }
            if let Ok(enclave) = self.lock_enclave(eid) {
                let mut meta = enclave.lock();
                meta.threads.push(tid);
                self.touch_enclave(&mut meta);
            }
            Ok(())
        }))
    }

    fn release_thread(&self, session: CallerSession, tid: ThreadId) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            let eid = session.require_enclave()?;
            let thread = self.lock_thread(tid)?;
            {
                let mut t = self.try_lock(&thread)?;
                t.release(eid)?;
                self.touch_threads();
                // Drop before the enclave metadata lock (hierarchy).
            }
            if let Ok(enclave) = self.lock_enclave(eid) {
                let mut meta = enclave.lock();
                meta.threads.retain(|&x| x != tid);
                self.touch_enclave(&mut meta);
            }
            Ok(())
        }))
    }

    // ------------------------------------------------------------------
    // mailboxes and attestation (Figs. 5–7)
    // ------------------------------------------------------------------

    fn accept_mail(
        &self,
        session: CallerSession,
        mailbox: usize,
        sender_id: u64,
    ) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            let eid = session.require_enclave()?;
            let enclave = self.lock_enclave(eid)?;
            let mut meta = self.try_lock(&enclave)?;
            let mb = meta
                .mailboxes
                .get_mut(mailbox)
                .ok_or(SmError::InvalidArgument { reason: "no such mailbox" })?;
            // Arming (or re-arming) only changes the accept filter — queued
            // messages, which the audit reflects, are untouched, so no
            // generation bump is needed here.
            mb.accept(AcceptMode::from_selector(sender_id));
            Ok(())
        }))
    }

    fn send_mail(
        &self,
        session: CallerSession,
        recipient: EnclaveId,
        message: Tainted<&[u8]>,
    ) -> SmResult<()> {
        self.record_call(self.with_global_lock(|| {
            let sender_identity = match session.domain() {
                DomainKind::Untrusted => SenderIdentity::Untrusted,
                DomainKind::Enclave(eid) => SenderIdentity::Enclave {
                    id: eid,
                    measurement: self.enclave_measurement(eid)?,
                },
                DomainKind::SecurityMonitor => return Err(SmError::Unauthorized),
            };
            let sender_id = sender_identity.sender_id();
            // The message bytes were already copied into monitor memory;
            // all that is left to prove is the length bound the mailbox
            // sink's signature demands.
            let message = Sanitizer::check_message(message, MAX_MAIL_LEN).map_err(|_| {
                SmError::InvalidArgument {
                    reason: "mail message too large",
                }
            })?;
            let enclave = self.lock_enclave(recipient)?;
            let mut meta = self.try_lock(&enclave)?;
            // Routing: a sender named by any specific filter is *only*
            // routed to specifically-armed mailboxes — its overflow
            // backpressures instead of spilling into a wildcard service
            // queue, where service logic would misread a directed payload
            // as a request. Senders no specific filter names route to the
            // first wildcard mailbox with room.
            let specific = |mb: &crate::mailbox::Mailbox| {
                matches!(mb.accept_mode(), Some(AcceptMode::Sender(s)) if s == sender_id)
            };
            let directed = meta.mailboxes.iter().any(&specific);
            let target = if directed {
                meta.mailboxes.iter().position(|mb| specific(mb) && !mb.is_full())
            } else {
                meta.mailboxes
                    .iter()
                    .position(|mb| mb.accept_mode() == Some(AcceptMode::Any) && !mb.is_full())
            };
            let Some(index) = target else {
                // Distinguish backpressure (armed but full) from refusal.
                return if directed || meta.mailboxes.iter().any(|mb| mb.admits(sender_id)) {
                    Err(SmError::MailboxUnavailable)
                } else {
                    Err(SmError::MailNotAccepted)
                };
            };
            // atomic: the copy either happens entirely under the meta lock
            // or not at all — a failed crossing aborts before the ledger is
            // charged, so no state needs journaled undo.
            if fault_point!(self.machine.fault_injector(), "monitor.mail-copy") == Crossing::FailOp
            {
                return Err(SmError::Again);
            }
            // Fabric-wide anti-DoS quota: the ledger lock is held across the
            // enqueue so the count can never drift from the queues.
            let mut ledger = self.state.mail_ledger.lock();
            let count = ledger.entry(sender_id).or_insert(0);
            if *count >= MAIL_SENDER_QUOTA as u64 {
                return Err(SmError::OutOfResources {
                    resource: "mail sender quota",
                });
            }
            meta.mailboxes[index].send(sender_identity, &message)?;
            *count += 1;
            drop(ledger);
            self.touch_enclave(&mut meta);
            self.touch_mail();
            Ok(())
        }))
    }

    fn get_mail(
        &self,
        session: CallerSession,
        mailbox: usize,
    ) -> SmResult<(Vec<u8>, SenderIdentity)> {
        // Messages never exceed MAX_MAIL_LEN, so this bound is "no bound".
        self.get_mail_bounded(session, mailbox, MAX_MAIL_LEN)
    }

    fn get_mail_bounded(
        &self,
        session: CallerSession,
        mailbox: usize,
        max_len: usize,
    ) -> SmResult<(Vec<u8>, SenderIdentity)> {
        self.record_call(self.with_global_lock(|| {
            let eid = session.require_enclave()?;
            let enclave = self.lock_enclave(eid)?;
            let mut meta = self.try_lock(&enclave)?;
            let mb = meta
                .mailboxes
                .get_mut(mailbox)
                .ok_or(SmError::InvalidArgument { reason: "no such mailbox" })?;
            // Length check and consumption happen under one meta lock: a
            // concurrent consumer on another hart cannot swap the queue head
            // between the probe and the fetch (the register-ABI GetMail
            // relies on this to never write past the span it validated).
            match mb.peek() {
                None => return Err(SmError::MailboxUnavailable),
                Some(mail) if mail.message.len() > max_len => {
                    return Err(SmError::InvalidArgument {
                        reason: "output buffer too small",
                    })
                }
                Some(_) => {}
            }
            // atomic: dequeue + quota refund run under the meta and ledger
            // locks with no intervening fault points; a failed crossing
            // aborts before the queue head moves.
            if fault_point!(self.machine.fault_injector(), "monitor.mail-fetch") == Crossing::FailOp
            {
                return Err(SmError::Again);
            }
            let mail = mb.get().expect("peeked above");
            Self::refund_mail_sender(&mut self.state.mail_ledger.lock(), mail.sender_id);
            self.touch_enclave(&mut meta);
            self.touch_mail();
            Ok((mail.message, mail.sender))
        }))
    }

    fn peek_mail(&self, session: CallerSession, mailbox: usize) -> SmResult<(usize, u64)> {
        self.record_call(self.with_global_lock(|| {
            let eid = session.require_enclave()?;
            let enclave = self.lock_enclave(eid)?;
            let meta = self.try_lock(&enclave)?;
            let mb = meta
                .mailboxes
                .get(mailbox)
                .ok_or(SmError::InvalidArgument { reason: "no such mailbox" })?;
            let mail = mb.peek().ok_or(SmError::MailboxUnavailable)?;
            Ok((mail.message.len(), mail.sender_id))
        }))
    }

    fn get_attestation_key(&self, session: CallerSession) -> SmResult<[u8; 32]> {
        self.record_call(self.with_global_lock(|| {
            let eid = session.require_enclave()?;
            let expected = self
                .config
                .signing_enclave_measurement
                .ok_or(SmError::InvalidState {
                    reason: "no signing enclave configured",
                })?;
            let actual = self.enclave_measurement(eid)?;
            if !actual.ct_eq(&expected) {
                return Err(SmError::Unauthorized);
            }
            Ok(*self.identity.attestation_keypair.secret().seed())
        }))
    }

    fn get_field(&self, _session: CallerSession, field: PublicField) -> Vec<u8> {
        // Public identity material is available to every caller; the session
        // is accepted (not authorized) so the call shape matches the rest of
        // the surface. The read itself touches only immutable identity
        // state, so the fine-grained mode takes **no lock at all** — this is
        // the read-mostly fast path the scaling bench measures — while the
        // global mode honestly pays the giant lock like every other call.
        self.with_global_lock(|| match field {
            PublicField::AttestationPublicKey => {
                self.identity.attestation_keypair.public().to_bytes().to_vec()
            }
            PublicField::DevicePublicKey => self.identity.device_public_key.to_bytes().to_vec(),
            PublicField::SmMeasurement => self.identity.sm_measurement.to_vec(),
            PublicField::SmCertificate => {
                // A compact, self-describing encoding: subject key ‖ info len ‖
                // info ‖ issuer key ‖ signature.
                let cert = &self.identity.sm_certificate;
                let mut out = Vec::new();
                out.extend_from_slice(&cert.subject_public_key.to_bytes());
                out.extend_from_slice(&(cert.subject_info.len() as u64).to_le_bytes());
                out.extend_from_slice(&cert.subject_info);
                out.extend_from_slice(&cert.issuer_public_key.to_bytes());
                out.extend_from_slice(&cert.signature.to_bytes());
                out
            }
        })
    }

    fn batch(&self, session: CallerSession, calls: &[SmCall]) -> SmResult<Vec<CallOutcome>> {
        // Vacuous intent marker bracketing the batch: the inner calls
        // journal their own mutations, so replay of `Batch` is a no-op, but
        // the pending entry attributes a mid-batch crash during recovery.
        let seq = self.journal_record(JournalEntry::Batch);
        let outcomes = self.run_typed_batch(session, calls);
        self.journal_complete(seq);
        let outcomes = outcomes?;
        self.stats
            .batched_calls
            .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
        Ok(outcomes)
    }
}
