//! Keystone platform backend (paper Section VII-B).
//!
//! Keystone runs on unmodified RISC-V hardware and uses the physical memory
//! protection (PMP) unit to white-list physical ranges per privilege mode:
//! the SM marks its own memory M-mode-only, and each enclave gets a dedicated
//! PMP-protected range of arbitrary size. Two architectural differences from
//! Sanctum matter for the monitor and show up in the Table 2 comparison:
//!
//! * the number of protected ranges is limited by the number of PMP entries
//!   (8–16 on real cores), so enclave creation can fail with PMP exhaustion;
//! * the shared last-level cache is *not* partitioned, so cleaning a memory
//!   unit (or switching domains conservatively) requires flushing the whole
//!   shared cache, and cross-domain cache interference remains possible — the
//!   paper notes Keystone does not isolate micro-architectural state across
//!   arbitrary platforms, which its threat model reflects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::cycles::Cycles;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::isolation::{
    FlushKind, IsolationBackend, IsolationError, PlatformCapacity, RegionId, RegionInfo, RegionOp,
};
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::access::AccessRange;
use sanctorum_machine::{fault_point, Crossing, Machine};
use std::sync::Arc;

/// The Keystone isolation backend.
///
/// The allocatable memory units follow the machine's region geometry (so the
/// same workloads run on both backends), but each unit protected for the SM
/// or an enclave consumes a PMP entry, and the backend refuses assignments
/// once the PMP is exhausted.
///
/// # Examples
///
/// ```
/// use sanctorum_machine::{Machine, MachineConfig};
/// use sanctorum_keystone::KeystoneBackend;
/// use sanctorum_hal::isolation::IsolationBackend;
/// use std::sync::Arc;
///
/// let machine = Arc::new(Machine::new(MachineConfig::small()));
/// let backend = KeystoneBackend::new(Arc::clone(&machine));
/// assert_eq!(backend.platform_name(), "keystone");
/// assert_eq!(backend.pmp_entries_used(), 1); // the SM's own range
/// ```
pub struct KeystoneBackend {
    machine: Arc<Machine>,
    owners: Vec<DomainKind>,
    pmp_capacity: usize,
}

impl std::fmt::Debug for KeystoneBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KeystoneBackend {{ regions: {}, pmp: {}/{} }}",
            self.owners.len(),
            self.pmp_entries_used(),
            self.pmp_capacity
        )
    }
}

impl KeystoneBackend {
    /// Creates the backend, reserving one PMP entry (and memory unit 0) for
    /// the SM's own memory.
    pub fn new(machine: Arc<Machine>) -> Self {
        let num_regions = machine.config().num_regions();
        let pmp_capacity = machine.config().pmp_entries;
        let mut backend = Self {
            machine,
            owners: vec![DomainKind::Untrusted; num_regions],
            pmp_capacity,
        };
        backend
            .assign_region(RegionId::new(0), DomainKind::SecurityMonitor, MemPerms::RWX)
            .expect("reserving the SM range cannot fail on a fresh machine");
        backend
    }

    /// Returns the number of PMP entries currently consumed (one per unit not
    /// owned by the untrusted OS; the OS's memory is covered by the
    /// lowest-priority background entry).
    pub fn pmp_entries_used(&self) -> usize {
        self.owners
            .iter()
            .filter(|o| **o != DomainKind::Untrusted)
            .count()
    }

    /// Returns the PMP entry capacity.
    pub fn pmp_capacity(&self) -> usize {
        self.pmp_capacity
    }

    fn region_geometry(&self, region: RegionId) -> Result<RegionInfo, IsolationError> {
        let config = self.machine.config();
        if region.index() >= config.num_regions() {
            return Err(IsolationError::UnknownRegion(region));
        }
        let base = config
            .memory_base
            .offset((region.index() * config.dram_region_size) as u64);
        Ok(RegionInfo {
            id: region,
            base,
            len: config.dram_region_size as u64,
            cache_isolated: false,
        })
    }

    /// The PMP/access-range mutation shared by
    /// [`IsolationBackend::assign_region`] and the batched path. Geometry and
    /// PMP capacity must already be validated; the fault point is crossed by
    /// the caller *before* any mutation.
    fn apply_assign(
        &mut self,
        info: &RegionInfo,
        domain: DomainKind,
        perms: MemPerms,
    ) -> Result<(), IsolationError> {
        let range = AccessRange {
            base: info.base,
            len: info.len,
            owner: domain,
            owner_perms: perms,
            untrusted_perms: if domain == DomainKind::Untrusted {
                perms
            } else {
                MemPerms::NONE
            },
            dma_blocked: domain != DomainKind::Untrusted,
        };
        self.machine
            .with_access_mut(|a| a.protect(range))
            .map_err(|_| IsolationError::UnsupportedRange {
                base: info.base,
                len: info.len,
            })?;
        self.owners[info.id.index()] = domain;
        Ok(())
    }

    /// The DMA-filter mutation shared by the single and batched paths.
    fn apply_dma(&mut self, info: &RegionInfo, blocked: bool) {
        self.machine.with_access_mut(|a| {
            if let Some(range) = a.range_of_mut(info.base) {
                range.dma_blocked = blocked;
            }
        });
    }
}

impl IsolationBackend for KeystoneBackend {
    fn platform_name(&self) -> &'static str {
        "keystone"
    }

    fn capacity(&self) -> PlatformCapacity {
        // Every protected unit consumes one PMP entry, so the PMP size bounds
        // how many units (SM range included) can be isolated at once.
        PlatformCapacity {
            max_isolated_units: Some(self.pmp_capacity),
        }
    }

    fn regions(&self) -> Vec<RegionInfo> {
        (0..self.owners.len())
            .map(|i| {
                self.region_geometry(RegionId::new(i as u32))
                    .expect("registered region has geometry")
            })
            .collect()
    }

    fn region_of(&self, addr: PhysAddr) -> Option<RegionId> {
        let config = self.machine.config();
        let offset = addr.as_u64().checked_sub(config.memory_base.as_u64())?;
        let index = (offset / config.dram_region_size as u64) as usize;
        if index < config.num_regions() {
            Some(RegionId::new(index as u32))
        } else {
            None
        }
    }

    fn assign_region(
        &mut self,
        region: RegionId,
        domain: DomainKind,
        perms: MemPerms,
    ) -> Result<Cycles, IsolationError> {
        let info = self.region_geometry(region)?;
        let currently_protected = self.owners[region.index()] != DomainKind::Untrusted;
        let will_be_protected = domain != DomainKind::Untrusted;
        if will_be_protected && !currently_protected && self.pmp_entries_used() >= self.pmp_capacity
        {
            return Err(IsolationError::ResourceExhausted {
                resource: "pmp entries",
            });
        }
        // atomic: crossed before any PMP entry is written — a crash or
        // injected failure here leaves the previous assignment fully intact.
        if fault_point!(self.machine.fault_injector(), "backend.assign-region")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        self.apply_assign(&info, domain, perms)?;
        // Writing a PMP entry on every hart: address + config CSR per hart.
        let cost = self
            .machine
            .cost_model()
            .pmp_write
            .scaled(2 * self.machine.num_harts() as u64);
        Ok(cost)
    }

    fn region_owner(&self, region: RegionId) -> Result<DomainKind, IsolationError> {
        self.owners
            .get(region.index())
            .copied()
            .ok_or(IsolationError::UnknownRegion(region))
    }

    fn check_access(&self, domain: DomainKind, addr: PhysAddr, perms: MemPerms) -> bool {
        self.machine.check_access(domain, addr, perms)
    }

    fn flush(&mut self, core: CoreId, kind: FlushKind) -> Result<Cycles, IsolationError> {
        if !self.machine.has_hart(core) {
            return Err(IsolationError::UnknownCore(core));
        }
        let cost = match kind {
            FlushKind::CoreState => self.machine.cost_model().flush_core,
            FlushKind::PrivateCaches => self.machine.cost_model().flush_core,
            // The LLC is shared: a conservative clean flushes all of it.
            FlushKind::SharedCachePartition => self.machine.with_cache_mut(|c| c.flush_all()),
            FlushKind::Tlb => {
                self.machine.tlb(core).flush_all();
                self.machine.cost_model().tlb_shootdown
            }
        };
        self.machine.charge(cost);
        Ok(cost)
    }

    fn tlb_shootdown(&mut self, region: RegionId) -> Result<Cycles, IsolationError> {
        let info = self.region_geometry(region)?;
        // atomic: crossed before the shootdown is issued; the caller retries
        // the whole shootdown on failure.
        if fault_point!(self.machine.fault_injector(), "backend.tlb-shootdown")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        Ok(self.machine.tlb_shootdown(info.base, info.len))
    }

    fn flush_region_cache(&mut self, region: RegionId) -> Result<Cycles, IsolationError> {
        let _ = self.region_geometry(region)?;
        // atomic: crossed before any cache line is evicted; a failed flush is
        // retried from scratch.
        if fault_point!(self.machine.fault_injector(), "backend.flush-region-cache")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        // No partitioning: the whole shared cache is flushed.
        let cost = self.machine.with_cache_mut(|c| c.flush_all());
        self.machine.charge(cost);
        Ok(cost)
    }

    fn dma_blocked(&self, region: RegionId) -> Result<bool, IsolationError> {
        let info = self.region_geometry(region)?;
        Ok(self
            .machine
            .with_access(|a| a.range_of(info.base).map(|r| r.dma_blocked))
            .unwrap_or(false))
    }

    fn set_dma_blocked(&mut self, region: RegionId, blocked: bool) -> Result<Cycles, IsolationError> {
        let info = self.region_geometry(region)?;
        // atomic: crossed before the DMA filter bit flips — the single-word
        // update below cannot be observed half-done.
        if fault_point!(self.machine.fault_injector(), "backend.set-dma-blocked")
            == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        self.apply_dma(&info, blocked);
        Ok(self.machine.cost_model().pmp_write)
    }

    fn apply_batch(&mut self, ops: &[RegionOp]) -> Result<Cycles, IsolationError> {
        // Validate the whole batch before touching anything — geometry first,
        // then PMP accounting replayed over a shadow of the owner table. The
        // running count must stay within capacity at *every* prefix (the
        // entries are consumed in order on real hardware), so a batch that
        // would transiently exhaust the PMP is rejected with nothing applied.
        let mut infos = Vec::with_capacity(ops.len());
        let mut assigns = 0u64;
        let mut dma_toggles = 0u64;
        let mut shadow: std::collections::BTreeMap<usize, DomainKind> =
            std::collections::BTreeMap::new();
        let mut used = self.pmp_entries_used();
        for op in ops {
            match *op {
                RegionOp::Assign { region, domain, .. } => {
                    infos.push(self.region_geometry(region)?);
                    let current = shadow
                        .get(&region.index())
                        .copied()
                        .unwrap_or(self.owners[region.index()]);
                    let was_protected = current != DomainKind::Untrusted;
                    let will_be_protected = domain != DomainKind::Untrusted;
                    if will_be_protected && !was_protected {
                        if used >= self.pmp_capacity {
                            return Err(IsolationError::ResourceExhausted {
                                resource: "pmp entries",
                            });
                        }
                        used += 1;
                    } else if !will_be_protected && was_protected {
                        used -= 1;
                    }
                    shadow.insert(region.index(), domain);
                    assigns += 1;
                }
                RegionOp::SetDmaBlocked { region, .. } => {
                    infos.push(self.region_geometry(region)?);
                    dma_toggles += 1;
                }
            }
        }
        // Each site is crossed once for the whole batch, before any PMP
        // entry or DMA filter is written — a crash or injected failure here
        // leaves the previous configuration fully intact.
        if assigns > 0
            // atomic: one batch-wide crossing, before any mutation.
            && fault_point!(self.machine.fault_injector(), "backend.assign-region")
                == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        if dma_toggles > 0
            // atomic: one batch-wide crossing, before any mutation.
            && fault_point!(self.machine.fault_injector(), "backend.set-dma-blocked")
                == Crossing::FailOp
        {
            return Err(IsolationError::TransientFault);
        }
        for (op, info) in ops.iter().zip(&infos) {
            match *op {
                RegionOp::Assign { domain, perms, .. } => {
                    self.apply_assign(info, domain, perms)
                        .expect("geometry and capacity validated above");
                }
                RegionOp::SetDmaBlocked { blocked, .. } => self.apply_dma(info, blocked),
            }
        }
        // Amortized cost: each assignment writes its address CSR on every
        // hart, and the batch pays one shared config-CSR round (what a lone
        // assignment pays on top — a single-op batch costs exactly what
        // `assign_region` charges, scaled(2 × harts)).
        let per_hart = self.machine.cost_model().pmp_write.scaled(self.machine.num_harts() as u64);
        let mut total = per_hart.scaled(assigns)
            + self.machine.cost_model().pmp_write.scaled(dma_toggles);
        if assigns > 0 {
            total += per_hart;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::EnclaveId;
    use sanctorum_machine::MachineConfig;

    fn setup() -> (Arc<Machine>, KeystoneBackend) {
        let machine = Arc::new(Machine::new(MachineConfig::small()));
        let backend = KeystoneBackend::new(Arc::clone(&machine));
        (machine, backend)
    }

    fn enclave(id: u64) -> DomainKind {
        DomainKind::Enclave(EnclaveId::new(id))
    }

    #[test]
    fn sm_range_reserved_and_counts_against_pmp() {
        let (_, backend) = setup();
        assert_eq!(
            backend.region_owner(RegionId::new(0)).unwrap(),
            DomainKind::SecurityMonitor
        );
        assert_eq!(backend.pmp_entries_used(), 1);
    }

    #[test]
    fn pmp_exhaustion_rejected() {
        let machine = Arc::new(Machine::new(MachineConfig {
            pmp_entries: 3,
            ..MachineConfig::small()
        }));
        let mut backend = KeystoneBackend::new(Arc::clone(&machine));
        backend.assign_region(RegionId::new(1), enclave(1), MemPerms::RWX).unwrap();
        backend.assign_region(RegionId::new(2), enclave(2), MemPerms::RWX).unwrap();
        let err = backend
            .assign_region(RegionId::new(3), enclave(3), MemPerms::RWX)
            .unwrap_err();
        assert!(matches!(err, IsolationError::ResourceExhausted { .. }));
        // Releasing one back to the OS frees an entry.
        backend
            .assign_region(RegionId::new(1), DomainKind::Untrusted, MemPerms::RWX)
            .unwrap();
        backend.assign_region(RegionId::new(3), enclave(3), MemPerms::RWX).unwrap();
    }

    #[test]
    fn isolation_enforced_via_machine() {
        let (machine, mut backend) = setup();
        backend.assign_region(RegionId::new(2), enclave(5), MemPerms::RW).unwrap();
        let info = backend.regions()[2];
        assert!(machine.check_access(enclave(5), info.base, MemPerms::RW));
        assert!(!machine.check_access(DomainKind::Untrusted, info.base, MemPerms::READ));
        assert!(!machine.check_access(enclave(6), info.base, MemPerms::READ));
    }

    #[test]
    fn shared_cache_flush_is_whole_cache() {
        let (machine, mut backend) = setup();
        // Warm the cache with lines spread across sets.
        for i in 0..64u64 {
            machine.with_cache_mut(|c| {
                c.access(sanctorum_machine::cache::PartitionId(0), PhysAddr::new(0x8000_0000 + i * 64))
            });
        }
        let cost = backend.flush_region_cache(RegionId::new(1)).unwrap();
        assert!(cost.count() >= 64 * 4, "whole-cache flush must pay per resident line");
        assert!(!machine.with_cache_mut(|c| c.holds_line_in(PhysAddr::new(0x8000_0000), 64 * 64)));
    }

    #[test]
    fn declared_capacity_is_the_pmp_size() {
        let (machine, backend) = setup();
        assert_eq!(
            backend.capacity().max_isolated_units,
            Some(machine.config().pmp_entries)
        );
    }

    #[test]
    fn regions_not_cache_isolated() {
        let (_, backend) = setup();
        assert!(backend.regions().iter().all(|r| !r.cache_isolated));
    }

    #[test]
    fn unknown_region_errors() {
        let (_, mut backend) = setup();
        let bogus = RegionId::new(999);
        assert!(backend.region_owner(bogus).is_err());
        assert!(backend.flush_region_cache(bogus).is_err());
        assert!(backend.set_dma_blocked(bogus, true).is_err());
    }

    #[test]
    fn injected_transient_fault_fails_cleanly_then_recovers() {
        use sanctorum_machine::FaultPlan;
        let (machine, mut backend) = setup();
        machine.fault_injector().arm(FaultPlan::FailOp {
            site: Some("backend.assign-region"),
            times: 2,
        });
        for _ in 0..2 {
            assert_eq!(
                backend.assign_region(RegionId::new(1), enclave(7), MemPerms::RWX),
                Err(IsolationError::TransientFault)
            );
            assert_eq!(
                backend.region_owner(RegionId::new(1)).unwrap(),
                DomainKind::Untrusted,
                "a failed PMP write must leave the previous assignment intact"
            );
        }
        backend
            .assign_region(RegionId::new(1), enclave(7), MemPerms::RWX)
            .unwrap();
        assert_eq!(backend.region_owner(RegionId::new(1)).unwrap(), enclave(7));
        machine.fault_injector().disarm();
    }

    #[test]
    fn disarmed_injector_does_not_perturb_the_backend() {
        let (machine, mut backend) = setup();
        backend
            .assign_region(RegionId::new(2), enclave(3), MemPerms::RWX)
            .unwrap();
        assert_eq!(machine.fault_injector().crossings(), 0);
    }

    #[test]
    fn batch_exceeding_pmp_capacity_is_rejected_with_nothing_applied() {
        let machine = Arc::new(Machine::new(MachineConfig {
            pmp_entries: 3,
            ..MachineConfig::small()
        }));
        let mut backend = KeystoneBackend::new(Arc::clone(&machine));
        // 1 entry used by the SM; a 3-assignment batch needs 3 more.
        let ops: Vec<RegionOp> = (1..=3)
            .map(|i| RegionOp::Assign {
                region: RegionId::new(i),
                domain: enclave(u64::from(i)),
                perms: MemPerms::RWX,
            })
            .collect();
        let err = backend.apply_batch(&ops).unwrap_err();
        assert!(matches!(err, IsolationError::ResourceExhausted { .. }));
        for i in 1..=3u32 {
            assert_eq!(
                backend.region_owner(RegionId::new(i)).unwrap(),
                DomainKind::Untrusted,
                "a rejected batch must leave every region untouched"
            );
        }
        assert_eq!(backend.pmp_entries_used(), 1);
        // A batch that releases before it takes fits in the freed entries.
        backend.assign_region(RegionId::new(1), enclave(1), MemPerms::RWX).unwrap();
        backend.assign_region(RegionId::new(2), enclave(2), MemPerms::RWX).unwrap();
        backend
            .apply_batch(&[
                RegionOp::Assign {
                    region: RegionId::new(1),
                    domain: DomainKind::Untrusted,
                    perms: MemPerms::RWX,
                },
                RegionOp::Assign {
                    region: RegionId::new(3),
                    domain: enclave(3),
                    perms: MemPerms::RWX,
                },
            ])
            .unwrap();
        assert_eq!(backend.pmp_entries_used(), 3);
    }

    #[test]
    fn batch_single_op_cost_matches_assign_region() {
        let (machine, mut backend) = setup();
        let batched = backend
            .apply_batch(&[RegionOp::Assign {
                region: RegionId::new(1),
                domain: enclave(1),
                perms: MemPerms::RWX,
            }])
            .unwrap();
        let single = backend
            .assign_region(RegionId::new(2), enclave(2), MemPerms::RWX)
            .unwrap();
        assert_eq!(batched, single);
        let _ = machine;
    }

    #[test]
    fn faulted_batch_mutates_nothing() {
        use sanctorum_machine::FaultPlan;
        let (machine, mut backend) = setup();
        machine.fault_injector().arm(FaultPlan::FailOp {
            site: Some("backend.set-dma-blocked"),
            times: 1,
        });
        let err = backend
            .apply_batch(&[
                RegionOp::Assign {
                    region: RegionId::new(1),
                    domain: enclave(1),
                    perms: MemPerms::RWX,
                },
                RegionOp::SetDmaBlocked {
                    region: RegionId::new(1),
                    blocked: true,
                },
            ])
            .unwrap_err();
        assert_eq!(err, IsolationError::TransientFault);
        assert_eq!(
            backend.region_owner(RegionId::new(1)).unwrap(),
            DomainKind::Untrusted,
            "the assignment must not land when the batch's DMA flush faults"
        );
        assert_eq!(backend.pmp_entries_used(), 1);
        machine.fault_injector().disarm();
    }
}
