//! The remote verifier: nonce issuance, key agreement and evidence checking.
//!
//! Built for fleet-scale attestation from many threads at once. Every public
//! method takes `&self`; internally the verifier is a small lock hierarchy
//! (ranks 110–120 of `sanctorum_core::lockorder`):
//!
//! * **Challenges** live in index-interleaved shards, each a ranked mutex.
//!   `begin` draws the nonce and DH secret under the DRBG mutex — preserving
//!   the exact single-threaded nonce sequence for a given seed — then files
//!   the challenge in the nonce's shard. Challenges expire after a
//!   **generation-counted TTL** (no wall clock): every `begin` advances the
//!   generation, and a challenge older than [`RemoteVerifier::challenge_ttl`]
//!   generations is evicted the next time its shard files a new one, with
//!   evictions surfaced in [`VerifierStats`].
//! * **Trust state** (accepted manufacturer roots, trusted measurements, the
//!   device revocation list) is an [`EpochCell`] snapshot: every evidence
//!   check reads it without blocking, while rotation and revocation build
//!   the next epoch under the writer mutex and flip it atomically with
//!   [`EpochCell::publish`].
//! * The **chain cache** (validated device/SM certificate chains) is a
//!   second `EpochCell`: a hit skips both certificate verifications without
//!   taking any lock; a miss verifies the chain and publishes the grown
//!   cache under the same writer mutex. Revoking a device or retiring a
//!   root also purges the matching cache entries in the same publish, so a
//!   stale cache can never resurrect a revoked chain.
//! * [`RemoteVerifier::verify_batch`] amortizes further: one trust-state
//!   load for the whole batch, one chain validation per *distinct* chain in
//!   the batch (evidence from the same machine shares its chain), and one
//!   cache publish for all newly validated chains.

use crate::session::SecureSession;
use sanctorum_core::attestation::AttestationEvidence;
use sanctorum_core::epoch::EpochCell;
use sanctorum_core::lockorder::{rank, OrderedMutex};
use sanctorum_core::measurement::Measurement;
use sanctorum_crypto::ct::ct_eq;
use sanctorum_crypto::drbg::ChaChaDrbg;
use sanctorum_crypto::ed25519::{self, PublicKey};
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_crypto::x25519;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The challenge the verifier sends to the (untrusted) platform: a fresh
/// nonce and the verifier's ephemeral DH public value (Fig. 7 steps ①–②).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Anti-replay nonce to be signed by the signing enclave.
    pub nonce: [u8; 32],
    /// The verifier's X25519 public value.
    pub verifier_dh_public: [u8; 32],
}

/// Why evidence verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// A certificate or the report signature did not verify.
    BadSignature,
    /// The certificate chain does not root in an accepted manufacturer key.
    UntrustedRoot,
    /// The device key the chain presents has been revoked.
    RevokedChain,
    /// The nonce in the report does not match an outstanding challenge.
    StaleNonce,
    /// The report data does not bind the enclave's DH public value.
    ChannelBindingMismatch,
    /// The enclave measurement is not one the verifier trusts.
    UnexpectedMeasurement,
    /// No challenge is outstanding.
    NoChallenge,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            VerifyError::BadSignature => "signature or certificate verification failed",
            VerifyError::UntrustedRoot => "certificate chain does not root in the manufacturer",
            VerifyError::RevokedChain => "device key has been revoked",
            VerifyError::StaleNonce => "nonce mismatch (replayed, stale or evicted evidence)",
            VerifyError::ChannelBindingMismatch => "report data does not bind the enclave key",
            VerifyError::UnexpectedMeasurement => "enclave measurement is not trusted",
            VerifyError::NoChallenge => "no outstanding challenge",
        };
        write!(f, "{text}")
    }
}

impl std::error::Error for VerifyError {}

/// A point-in-time snapshot of the verifier's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifierStats {
    /// Challenges currently outstanding across all shards.
    pub outstanding_challenges: usize,
    /// Evidence checks that skipped certificate validation via the cache.
    pub chain_cache_hits: u64,
    /// Distinct validated chains currently cached.
    pub chain_cache_entries: usize,
    /// Challenges evicted by the generation TTL without being consumed.
    pub evicted_challenges: u64,
    /// Evidence checks that produced a secure session.
    pub verified_sessions: u64,
    /// Evidence checks rejected (any [`VerifyError`]).
    pub rejected_evidence: u64,
    /// Trust-state epoch: bumped by every rotation, revocation or newly
    /// trusted measurement.
    pub trust_epoch: u64,
}

/// Read-mostly trust state, swapped atomically as one epoch.
#[derive(Debug, Clone)]
struct TrustState {
    /// Accepted manufacturer roots. More than one only mid-rotation: the
    /// incoming root is accepted alongside the outgoing one until the old
    /// root is retired.
    roots: Vec<PublicKey>,
    /// Enclave measurements the verifier accepts.
    measurements: Vec<Measurement>,
    /// Revoked device public keys (chain middles); evidence whose device
    /// certificate names one of these never verifies, cache or no cache.
    revoked_devices: BTreeSet<[u8; 32]>,
    /// Epoch counter, bumped by every publish.
    epoch: u64,
}

/// One validated chain: the SM key it vouches for, plus the device key and
/// root that vouched, so revocation and root retirement can purge it.
#[derive(Debug, Clone, Copy)]
struct ChainEntry {
    sm_key: PublicKey,
    device_key: [u8; 32],
    root: [u8; 32],
}

/// An issued, not-yet-consumed challenge.
#[derive(Debug, Clone, Copy)]
struct ChallengeEntry {
    dh_secret: [u8; 32],
    generation: u64,
}

/// One shard of the outstanding-challenge map: the entries plus an
/// issue-order queue that makes TTL eviction O(evicted), not O(shard).
#[derive(Debug, Default)]
struct ChallengeShard {
    entries: BTreeMap<[u8; 32], ChallengeEntry>,
    issued: VecDeque<([u8; 32], u64)>,
}

/// How many shards the outstanding-challenge map is interleaved across.
const CHALLENGE_SHARDS: usize = 16;

/// Default challenge TTL in generations (one generation per `begin`).
const DEFAULT_CHALLENGE_TTL: u64 = 1 << 16;

/// The remote verifier (the paper's trusted first party), shareable across
/// any number of threads.
pub struct RemoteVerifier {
    /// lock rank: rank::VERIFIER_DRBG
    drbg: OrderedMutex<ChaChaDrbg>,
    /// lock rank: rank::VERIFIER_CHALLENGE_SHARD (one shard at a time)
    challenge_shards: Vec<OrderedMutex<ChallengeShard>>,
    /// Serializes all epoch publishes. lock rank: rank::VERIFIER_WRITER
    writer: OrderedMutex<()>,
    /// lock rank: rank::VERIFIER_TRUST_EPOCH
    trust: EpochCell<TrustState>,
    /// lock rank: rank::VERIFIER_CHAIN_EPOCH
    chain_cache: EpochCell<BTreeMap<[u8; 32], ChainEntry>>,
    /// Generation counter: one tick per issued challenge.
    generation: AtomicU64,
    /// TTL in generations beyond which an unconsumed challenge is evicted.
    challenge_ttl: AtomicU64,
    outstanding: AtomicUsize,
    chain_cache_hits: AtomicU64,
    evicted_challenges: AtomicU64,
    verified_sessions: AtomicU64,
    rejected_evidence: AtomicU64,
}

impl fmt::Debug for RemoteVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let trust = self.trust.load();
        write!(
            f,
            "RemoteVerifier {{ trust_epoch: {}, roots: {}, measurements: {}, revoked: {}, outstanding: {} }}",
            trust.epoch,
            trust.roots.len(),
            trust.measurements.len(),
            trust.revoked_devices.len(),
            self.outstanding.load(Ordering::Relaxed),
        )
    }
}

impl RemoteVerifier {
    /// Creates a verifier pinning `manufacturer_root` and trusting enclaves
    /// whose measurement appears in `trusted_measurements`.
    pub fn new(
        manufacturer_root: PublicKey,
        trusted_measurements: Vec<Measurement>,
        rng_seed: [u8; 32],
    ) -> Self {
        Self {
            drbg: OrderedMutex::new(rank::VERIFIER_DRBG, ChaChaDrbg::from_seed(rng_seed)),
            challenge_shards: (0..CHALLENGE_SHARDS)
                .map(|_| OrderedMutex::new(rank::VERIFIER_CHALLENGE_SHARD, ChallengeShard::default()))
                .collect(),
            writer: OrderedMutex::new(rank::VERIFIER_WRITER, ()),
            trust: EpochCell::new(
                rank::VERIFIER_TRUST_EPOCH,
                TrustState {
                    roots: vec![manufacturer_root],
                    measurements: trusted_measurements,
                    revoked_devices: BTreeSet::new(),
                    epoch: 0,
                },
            ),
            chain_cache: EpochCell::new(rank::VERIFIER_CHAIN_EPOCH, BTreeMap::new()),
            generation: AtomicU64::new(0),
            challenge_ttl: AtomicU64::new(DEFAULT_CHALLENGE_TTL),
            outstanding: AtomicUsize::new(0),
            chain_cache_hits: AtomicU64::new(0),
            evicted_challenges: AtomicU64::new(0),
            verified_sessions: AtomicU64::new(0),
            rejected_evidence: AtomicU64::new(0),
        }
    }

    // ---- trust-state epochs -------------------------------------------------

    /// Rebuilds the trust state under the writer mutex and publishes it as
    /// the next epoch. Readers mid-`verify` keep their snapshot; every
    /// check that starts after the publish sees the new state.
    fn publish_trust(&self, mutate: impl FnOnce(&mut TrustState)) {
        let _writer = self.writer.lock();
        let mut next = (*self.trust.load()).clone();
        mutate(&mut next);
        next.epoch += 1;
        self.trust.publish(Arc::new(next));
        self.trust.quiesce();
    }

    /// Rebuilds the chain cache under the writer mutex, keeping only the
    /// entries `keep` approves.
    fn retain_chains(&self, keep: impl Fn(&ChainEntry) -> bool) {
        let _writer = self.writer.lock();
        let current = self.chain_cache.load();
        let next: BTreeMap<[u8; 32], ChainEntry> = current
            .iter()
            .filter(|(_, entry)| keep(entry))
            .map(|(fp, entry)| (*fp, *entry))
            .collect();
        self.chain_cache.publish(Arc::new(next));
        self.chain_cache.quiesce();
    }

    /// Adds a measurement to the trusted set (next trust epoch).
    pub fn trust_measurement(&self, measurement: Measurement) {
        self.publish_trust(|trust| trust.measurements.push(measurement));
    }

    /// Begins accepting `new_root` alongside the current root(s): the
    /// rotation window during which devices re-certify under the new CA.
    pub fn rotate_manufacturer_root(&self, new_root: PublicKey) {
        self.publish_trust(|trust| {
            if !trust.roots.contains(&new_root) {
                trust.roots.push(new_root);
            }
        });
    }

    /// Stops accepting `old_root`, completing a rotation. Cached chains
    /// that rooted in it are purged in the same stroke.
    pub fn retire_manufacturer_root(&self, old_root: PublicKey) {
        self.publish_trust(|trust| trust.roots.retain(|r| *r != old_root));
        self.retain_chains(|entry| entry.root != old_root.to_bytes());
    }

    /// Revokes a device public key: evidence whose chain presents it never
    /// verifies again, and its cached chains are purged atomically with the
    /// revocation-list publish.
    pub fn revoke_device(&self, device_key: PublicKey) {
        self.publish_trust(|trust| {
            trust.revoked_devices.insert(device_key.to_bytes());
        });
        self.retain_chains(|entry| entry.device_key != device_key.to_bytes());
    }

    /// Drops trust-state and chain-cache snapshots retired by past epoch
    /// publishes that no reader still holds (callable from any thread; also
    /// runs opportunistically on every publish).
    pub fn quiesce(&self) -> usize {
        self.trust.quiesce() + self.chain_cache.quiesce()
    }

    // ---- stats --------------------------------------------------------------

    /// Number of challenges currently outstanding.
    pub fn outstanding_challenges(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// How many evidence checks skipped certificate validation via the
    /// chain cache.
    pub fn chain_cache_hits(&self) -> u64 {
        self.chain_cache_hits.load(Ordering::Relaxed)
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> VerifierStats {
        VerifierStats {
            outstanding_challenges: self.outstanding.load(Ordering::Relaxed),
            chain_cache_hits: self.chain_cache_hits.load(Ordering::Relaxed),
            chain_cache_entries: self.chain_cache.load().len(),
            evicted_challenges: self.evicted_challenges.load(Ordering::Relaxed),
            verified_sessions: self.verified_sessions.load(Ordering::Relaxed),
            rejected_evidence: self.rejected_evidence.load(Ordering::Relaxed),
            trust_epoch: self.trust.load().epoch,
        }
    }

    /// Sets the challenge TTL in generations (one generation per `begin`).
    /// A challenge unconsumed for more than `ttl` generations is evicted.
    pub fn set_challenge_ttl(&self, ttl: u64) {
        self.challenge_ttl.store(ttl.max(1), Ordering::Relaxed);
    }

    /// The current challenge TTL in generations.
    pub fn challenge_ttl(&self) -> u64 {
        self.challenge_ttl.load(Ordering::Relaxed)
    }

    // ---- challenges ---------------------------------------------------------

    fn challenge_shard(&self, nonce: &[u8; 32]) -> &OrderedMutex<ChallengeShard> {
        // Shard routing by the nonce's first byte. The nonce travels in the
        // clear, so the index is public information; the secret-dependent
        // comparison inside the shard stays constant-time.
        &self.challenge_shards[nonce[0] as usize % self.challenge_shards.len()]
    }

    /// Begins an attestation: generates a nonce and an ephemeral DH key.
    /// Challenges accumulate — beginning a new one does not invalidate those
    /// already outstanding — but a challenge left unconsumed for more than
    /// [`Self::challenge_ttl`] generations is evicted (counted in stats).
    pub fn begin(&self) -> Challenge {
        // Draw under the DRBG mutex in the fixed nonce-then-secret order, so
        // the sequence of issued nonces for a given seed is bit-identical to
        // the single-threaded verifier's (the signature memo and signing
        // caches of the explorer workloads depend on this schedule).
        let (nonce, dh_secret) = {
            let mut drbg = self.drbg.lock();
            let nonce: [u8; 32] = drbg.random_array();
            let dh_secret = x25519::clamp_scalar(drbg.random_array());
            (nonce, dh_secret)
        };
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let ttl = self.challenge_ttl.load(Ordering::Relaxed);
        let mut evicted = 0usize;
        {
            let mut shard = self.challenge_shard(&nonce).lock();
            // Expire this shard's over-TTL challenges before filing the new
            // one. The issue queue is in generation order, so eviction stops
            // at the first live entry.
            while let Some(&(stale_nonce, issued_at)) = shard.issued.front() {
                if generation.saturating_sub(issued_at) <= ttl {
                    break;
                }
                shard.issued.pop_front();
                // Consumed challenges were already removed from `entries`;
                // only evict one that is still outstanding from this issue
                // (the generation check pins the queue entry to its map
                // entry even if a nonce were ever re-issued).
                let still_outstanding = shard
                    .entries
                    .get(&stale_nonce)
                    .is_some_and(|entry| entry.generation == issued_at);
                if still_outstanding {
                    shard.entries.remove(&stale_nonce);
                    evicted += 1;
                }
            }
            shard
                .entries
                .insert(nonce, ChallengeEntry { dh_secret, generation });
            shard.issued.push_back((nonce, generation));
        }
        if evicted > 0 {
            self.evicted_challenges
                .fetch_add(evicted as u64, Ordering::Relaxed);
            self.outstanding.fetch_sub(evicted, Ordering::Relaxed);
        }
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        Challenge {
            nonce,
            verifier_dh_public: x25519::public_key(&dh_secret),
        }
    }

    /// Issues `count` challenges at once (one per client of a batch).
    pub fn begin_many(&self, count: usize) -> Vec<Challenge> {
        (0..count).map(|_| self.begin()).collect()
    }

    /// Consumes the outstanding challenge matching `nonce`, if any.
    fn take_challenge(&self, nonce: &[u8; 32]) -> Result<[u8; 32], VerifyError> {
        if self.outstanding.load(Ordering::Relaxed) == 0 {
            return Err(VerifyError::NoChallenge);
        }
        let mut shard = self.challenge_shard(nonce).lock();
        // The attacker-supplied nonce is matched against every outstanding
        // challenge of its shard in constant time per comparison (no
        // early-exit prefix matching), preserving the hardening the
        // single-map verifier had.
        let matched = shard
            .entries
            .keys()
            .fold(None, |found, candidate| {
                if ct_eq(candidate, nonce) {
                    Some(*candidate)
                } else {
                    found
                }
            })
            .ok_or(VerifyError::StaleNonce)?;
        let entry = shard.entries.remove(&matched).expect("matched key exists");
        drop(shard);
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        Ok(entry.dh_secret)
    }

    // ---- evidence -----------------------------------------------------------

    fn chain_fingerprint(evidence: &AttestationEvidence) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(256);
        for cert in [&evidence.device_certificate, &evidence.sm_certificate] {
            bytes.extend_from_slice(&cert.subject_public_key.to_bytes());
            bytes.extend_from_slice(&(cert.subject_info.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&cert.subject_info);
            bytes.extend_from_slice(&cert.issuer_public_key.to_bytes());
            bytes.extend_from_slice(&cert.signature.to_bytes());
        }
        Sha3_256::digest(&bytes)
    }

    /// Validates the evidence's certificate chain against a trust snapshot,
    /// via the cache when the exact (device certificate, SM certificate)
    /// pair has been seen before, and returns the SM attestation key the
    /// chain vouches for. `publish` controls whether a cache miss installs
    /// the validated chain (batch verification defers to one publish).
    fn validate_chain(
        &self,
        evidence: &AttestationEvidence,
        trust: &TrustState,
        publish: bool,
    ) -> Result<ChainEntry, VerifyError> {
        let root = evidence.device_certificate.issuer_public_key;
        if !trust.roots.contains(&root) {
            return Err(VerifyError::UntrustedRoot);
        }
        let device_key = evidence.device_certificate.subject_public_key.to_bytes();
        if trust.revoked_devices.contains(&device_key) {
            return Err(VerifyError::RevokedChain);
        }
        let fingerprint = Self::chain_fingerprint(evidence);
        if let Some(entry) = self.chain_cache.load().get(&fingerprint) {
            self.chain_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*entry);
        }
        let chain_ok = evidence.device_certificate.verify()
            && evidence.sm_certificate.verify()
            && evidence.sm_certificate.issuer_public_key
                == evidence.device_certificate.subject_public_key;
        if !chain_ok {
            return Err(VerifyError::BadSignature);
        }
        let entry = ChainEntry {
            sm_key: evidence.sm_certificate.subject_public_key,
            device_key,
            root: root.to_bytes(),
        };
        if publish {
            self.install_chains(&[(fingerprint, entry)]);
        }
        Ok(entry)
    }

    /// Publishes newly validated chains into the cache (one epoch flip for
    /// the whole slice). Re-checks revocation under the writer mutex so a
    /// concurrent `revoke_device` cannot be undone by a racing install.
    fn install_chains(&self, chains: &[([u8; 32], ChainEntry)]) {
        if chains.is_empty() {
            return;
        }
        let _writer = self.writer.lock();
        let trust = self.trust.load();
        let current = self.chain_cache.load();
        let mut next = (*current).clone();
        for (fingerprint, entry) in chains {
            if !trust.revoked_devices.contains(&entry.device_key)
                && trust.roots.iter().any(|r| r.to_bytes() == entry.root)
            {
                next.insert(*fingerprint, *entry);
            }
        }
        self.chain_cache.publish(Arc::new(next));
        self.chain_cache.quiesce();
    }

    /// The checks downstream of challenge consumption: chain, report
    /// signature, channel binding, measurement; then session derivation.
    fn verify_evidence(
        &self,
        evidence: &AttestationEvidence,
        enclave_dh_public: &[u8; 32],
        dh_secret: [u8; 32],
        trust: &TrustState,
        chain: Result<ChainEntry, VerifyError>,
    ) -> Result<SecureSession, VerifyError> {
        let entry = chain?;
        if !entry
            .sm_key
            .verify(&evidence.report.to_signed_bytes(), &evidence.signature)
        {
            return Err(VerifyError::BadSignature);
        }
        self.finish_evidence(evidence, enclave_dh_public, dh_secret, trust)
    }

    /// The checks downstream of the report signature: channel binding,
    /// measurement, session derivation (shared by the serial path and the
    /// batch-verified path).
    fn finish_evidence(
        &self,
        evidence: &AttestationEvidence,
        enclave_dh_public: &[u8; 32],
        dh_secret: [u8; 32],
        trust: &TrustState,
    ) -> Result<SecureSession, VerifyError> {
        let expected_binding = Sha3_256::digest(enclave_dh_public);
        if !ct_eq(&evidence.report.report_data, &expected_binding) {
            return Err(VerifyError::ChannelBindingMismatch);
        }
        if !trust
            .measurements
            .iter()
            .any(|m| m.ct_eq(&evidence.report.enclave_measurement))
        {
            return Err(VerifyError::UnexpectedMeasurement);
        }
        let shared = x25519::shared_secret(&dh_secret, enclave_dh_public);
        Ok(SecureSession::new(&shared, &evidence.report.nonce))
    }

    fn count_outcome<T>(&self, result: &Result<T, VerifyError>) {
        match result {
            Ok(_) => self.verified_sessions.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.rejected_evidence.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Verifies attestation evidence and, on success, derives the secure
    /// session bound to the attested enclave (Fig. 7 steps ⑧–⑩).
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] describing the first check that failed; the
    /// matching outstanding challenge is consumed either way (nonces are
    /// single-use).
    pub fn verify(
        &self,
        evidence: &AttestationEvidence,
        enclave_dh_public: &[u8; 32],
    ) -> Result<SecureSession, VerifyError> {
        let result = (|| {
            let dh_secret = self.take_challenge(&evidence.report.nonce)?;
            let trust = self.trust.load();
            let chain = self.validate_chain(evidence, &trust, true);
            self.verify_evidence(evidence, enclave_dh_public, dh_secret, &trust, chain)
        })();
        self.count_outcome(&result);
        result
    }

    /// Verifies a batch of evidence, one result per item, amortizing across
    /// the batch: the trust state is loaded once, each *distinct* chain in
    /// the batch is validated at most once (evidence from one machine shares
    /// its chain), and all newly validated chains land in the cache with a
    /// single epoch publish.
    pub fn verify_batch(
        &self,
        items: &[(AttestationEvidence, [u8; 32])],
    ) -> Vec<Result<SecureSession, VerifyError>> {
        let trust = self.trust.load();
        let mut resolved: BTreeMap<[u8; 32], Result<ChainEntry, VerifyError>> = BTreeMap::new();
        let mut fresh: Vec<([u8; 32], ChainEntry)> = Vec::new();
        for (evidence, _) in items {
            let fingerprint = Self::chain_fingerprint(evidence);
            resolved.entry(fingerprint).or_insert_with(|| {
                let had_entry = self.chain_cache.load().contains_key(&fingerprint);
                let outcome = self.validate_chain(evidence, &trust, false);
                if let Ok(entry) = outcome {
                    if !had_entry {
                        fresh.push((fingerprint, entry));
                    }
                }
                outcome
            });
        }
        self.install_chains(&fresh);

        // Consume each item's challenge and chain verdict, staging the report
        // signature inputs of every still-valid item.
        struct StagedEvidence {
            dh_secret: [u8; 32],
            entry: ChainEntry,
            signed: Vec<u8>,
        }
        let staged: Vec<Result<StagedEvidence, VerifyError>> = items
            .iter()
            .map(|(evidence, _)| {
                let dh_secret = self.take_challenge(&evidence.report.nonce)?;
                let entry = resolved[&Self::chain_fingerprint(evidence)]?;
                Ok(StagedEvidence {
                    dh_secret,
                    entry,
                    signed: evidence.report.to_signed_bytes(),
                })
            })
            .collect();

        // One random-linear-combination check covers every staged report
        // signature: the multiscalar doubling chain is shared across the
        // batch, so per-evidence signature cost drops well below a lone
        // verification. A failed batch falls back to per-item verification,
        // which both preserves exact single-verify semantics and pins the
        // failure on the right evidence.
        let batch_ok = {
            let triples: Vec<(&PublicKey, &[u8], &ed25519::Signature)> = staged
                .iter()
                .zip(items)
                .filter_map(|(stage, (evidence, _))| {
                    stage
                        .as_ref()
                        .ok()
                        .map(|s| (&s.entry.sm_key, s.signed.as_slice(), &evidence.signature))
                })
                .collect();
            ed25519::verify_batch(&triples)
        };

        items
            .iter()
            .zip(staged)
            .map(|((evidence, dh_public), stage)| {
                let result = (|| {
                    let s = stage?;
                    if !batch_ok && !s.entry.sm_key.verify(&s.signed, &evidence.signature) {
                        return Err(VerifyError::BadSignature);
                    }
                    self.finish_evidence(evidence, dh_public, s.dh_secret, &trust)
                })();
                self.count_outcome(&result);
                result
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_core::attestation::{AttestationReport, Certificate};
    use sanctorum_crypto::ed25519::Keypair;

    struct Fixture {
        verifier: RemoteVerifier,
        sm_key: Keypair,
        device_cert: Certificate,
        sm_cert: Certificate,
        enclave_measurement: Measurement,
    }

    fn fixture() -> Fixture {
        let manufacturer = Keypair::from_seed([1; 32]);
        let device = Keypair::from_seed([2; 32]);
        let sm_key = Keypair::from_seed([3; 32]);
        let device_cert = Certificate::issue(&manufacturer, *device.public(), b"device".to_vec());
        let sm_cert = Certificate::issue(&device, *sm_key.public(), b"sm".to_vec());
        let enclave_measurement = Measurement([0x44; 32]);
        let verifier = RemoteVerifier::new(
            *manufacturer.public(),
            vec![enclave_measurement],
            [9; 32],
        );
        Fixture {
            verifier,
            sm_key,
            device_cert,
            sm_cert,
            enclave_measurement,
        }
    }

    fn make_evidence(
        f: &Fixture,
        nonce: [u8; 32],
        enclave_dh_public: &[u8; 32],
        measurement: Measurement,
    ) -> AttestationEvidence {
        let report = AttestationReport {
            enclave_measurement: measurement,
            nonce,
            report_data: Sha3_256::digest(enclave_dh_public),
        };
        let signature = f.sm_key.sign(&report.to_signed_bytes());
        AttestationEvidence {
            report,
            signature,
            sm_certificate: f.sm_cert.clone(),
            device_certificate: f.device_cert.clone(),
        }
    }

    #[test]
    fn end_to_end_verification_and_session() {
        let f = fixture();
        let challenge = f.verifier.begin();
        let enclave_secret = x25519::clamp_scalar([7; 32]);
        let enclave_public = x25519::public_key(&enclave_secret);
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        let mut session = f.verifier.verify(&evidence, &enclave_public).expect("verifies");

        // The enclave derives the same session from its side.
        let shared = x25519::shared_secret(&enclave_secret, &challenge.verifier_dh_public);
        let mut enclave_session = SecureSession::new(&shared, &challenge.nonce);
        let sealed = session.seal(b"query for the enclave");
        assert_eq!(
            enclave_session.open(&sealed).expect("opens"),
            b"query for the enclave"
        );
        let stats = f.verifier.stats();
        assert_eq!(stats.verified_sessions, 1);
        assert_eq!(stats.rejected_evidence, 0);
        assert_eq!(stats.chain_cache_entries, 1);
    }

    #[test]
    fn nonce_schedule_is_seed_deterministic_and_concurrency_independent() {
        // The whole explorer signature-memo design rests on this: a fresh
        // verifier with a given seed issues the same nonce sequence as the
        // old single-threaded implementation, regardless of sharding.
        let a = RemoteVerifier::new(
            *Keypair::from_seed([1; 32]).public(),
            Vec::new(),
            [0x42; 32],
        );
        let b = RemoteVerifier::new(
            *Keypair::from_seed([2; 32]).public(),
            Vec::new(),
            [0x42; 32],
        );
        let from_a: Vec<_> = a.begin_many(16).iter().map(|c| c.nonce).collect();
        let from_b: Vec<_> = b.begin_many(16).iter().map(|c| c.nonce).collect();
        assert_eq!(from_a, from_b);
        // And the DH halves agree too (same draw order).
        assert_eq!(
            a.begin().verifier_dh_public,
            b.begin().verifier_dh_public
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let f = fixture();
        let _ = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, [0xab; 32], &enclave_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::StaleNonce
        );
    }

    #[test]
    fn unexpected_measurement_rejected() {
        let f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, Measurement([0; 32]));
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::UnexpectedMeasurement
        );
    }

    #[test]
    fn channel_binding_mismatch_rejected() {
        let f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let other_public = x25519::public_key(&x25519::clamp_scalar([8; 32]));
        // Evidence binds a *different* key than the one presented.
        let evidence = make_evidence(&f, challenge.nonce, &other_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::ChannelBindingMismatch
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let mut evidence =
            make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        // Re-issue the device certificate under a different (untrusted) CA.
        let rogue_ca = Keypair::from_seed([66; 32]);
        evidence.device_certificate = Certificate::issue(
            &rogue_ca,
            evidence.device_certificate.subject_public_key,
            b"device".to_vec(),
        );
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::UntrustedRoot
        );
    }

    #[test]
    fn replayed_evidence_rejected() {
        let f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());
        // The challenge has been consumed; replaying the same evidence fails.
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::NoChallenge
        );
    }

    #[test]
    fn revoked_device_never_verifies_even_with_a_warm_cache() {
        let f = fixture();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));

        // Warm the chain cache with a successful verification.
        let challenge = f.verifier.begin();
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());
        assert_eq!(f.verifier.stats().chain_cache_entries, 1);

        // Revoke the device the chain presents: the cached chain is purged
        // in the same stroke as the revocation-list publish.
        f.verifier
            .revoke_device(f.device_cert.subject_public_key);
        assert_eq!(f.verifier.stats().chain_cache_entries, 0);

        let challenge = f.verifier.begin();
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::RevokedChain
        );
        assert!(f.verifier.stats().trust_epoch >= 1);
    }

    #[test]
    fn root_rotation_window_accepts_both_then_retires_the_old() {
        let f = fixture();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let new_ca = Keypair::from_seed([77; 32]);

        // Mid-rotation: both roots accepted.
        f.verifier.rotate_manufacturer_root(*new_ca.public());
        let challenge = f.verifier.begin();
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());

        // A chain re-issued under the new CA also verifies.
        let device = Keypair::from_seed([2; 32]);
        let new_device_cert =
            Certificate::issue(&new_ca, *device.public(), b"device".to_vec());
        let challenge = f.verifier.begin();
        let mut evidence =
            make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        evidence.device_certificate = new_device_cert.clone();
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());

        // Rotation completes: the old root is retired, its cached chains are
        // purged, and old-chain evidence stops verifying.
        let old_root = f.device_cert.issuer_public_key;
        f.verifier.retire_manufacturer_root(old_root);
        let challenge = f.verifier.begin();
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::UntrustedRoot
        );
        // New-chain evidence still verifies after the retirement.
        let challenge = f.verifier.begin();
        let mut evidence =
            make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        evidence.device_certificate = new_device_cert;
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());
    }

    #[test]
    fn unconsumed_challenges_evict_after_the_generation_ttl() {
        // Regression test for the unbounded outstanding-challenge map: with
        // a TTL of 8 generations, sustained `begin` traffic with no matching
        // evidence must keep the outstanding count bounded near the TTL and
        // surface the evictions in stats — not grow without limit.
        let f = fixture();
        f.verifier.set_challenge_ttl(8);
        let first = f.verifier.begin();
        for _ in 0..256 {
            let _ = f.verifier.begin();
        }
        let stats = f.verifier.stats();
        assert!(
            stats.evicted_challenges > 0,
            "sustained unanswered challenges must evict"
        );
        assert!(
            stats.outstanding_challenges < 257,
            "outstanding map must stay bounded, saw {}",
            stats.outstanding_challenges
        );
        // The very first challenge is long past its TTL: its evidence is
        // stale (evicted), not verifiable.
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, first.nonce, &enclave_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::StaleNonce
        );
        // A freshly issued challenge still verifies fine.
        let live = f.verifier.begin();
        let evidence = make_evidence(&f, live.nonce, &enclave_public, f.enclave_measurement);
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());
    }

    #[test]
    fn batch_verification_amortizes_chain_validation() {
        let f = fixture();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let challenges = f.verifier.begin_many(8);
        let items: Vec<_> = challenges
            .iter()
            .map(|c| {
                (
                    make_evidence(&f, c.nonce, &enclave_public, f.enclave_measurement),
                    enclave_public,
                )
            })
            .collect();
        let results = f.verifier.verify_batch(&items);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = f.verifier.stats();
        // All eight shared one chain: it was validated once, cached once.
        assert_eq!(stats.chain_cache_entries, 1);
        assert_eq!(stats.verified_sessions, 8);
    }

    #[test]
    fn batch_with_one_tampered_signature_pins_only_that_item() {
        // The fast path batch-verifies every report signature at once; a
        // tampered signature must fail the combined check and the per-item
        // fallback must blame exactly the tampered evidence.
        let f = fixture();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let challenges = f.verifier.begin_many(4);
        let mut items: Vec<_> = challenges
            .iter()
            .map(|c| {
                (
                    make_evidence(&f, c.nonce, &enclave_public, f.enclave_measurement),
                    enclave_public,
                )
            })
            .collect();
        let mut sig = items[2].0.signature.to_bytes();
        sig[10] ^= 1;
        items[2].0.signature = sanctorum_crypto::ed25519::Signature::from_bytes(&sig);
        let results = f.verifier.verify_batch(&items);
        for (i, result) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(result.as_ref().unwrap_err(), &VerifyError::BadSignature);
            } else {
                assert!(result.is_ok(), "item {i} should verify");
            }
        }
    }

    #[test]
    fn concurrent_verification_from_many_threads() {
        use std::sync::Arc;
        let f = Arc::new(fixture());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                let mut verified = 0usize;
                for i in 0..16 {
                    let challenge = f.verifier.begin();
                    let secret = x25519::clamp_scalar([t.wrapping_mul(31).wrapping_add(i); 32]);
                    let public = x25519::public_key(&secret);
                    let evidence =
                        make_evidence(&f, challenge.nonce, &public, f.enclave_measurement);
                    if f.verifier.verify(&evidence, &public).is_ok() {
                        verified += 1;
                    }
                }
                verified
            }));
        }
        let verified: usize = handles.into_iter().map(|h| h.join().expect("joins")).sum();
        assert_eq!(verified, 8 * 16, "every thread's every exchange verifies");
        let stats = f.verifier.stats();
        assert_eq!(stats.verified_sessions, 8 * 16);
        assert_eq!(stats.outstanding_challenges, 0);
        assert_eq!(stats.chain_cache_entries, 1);
    }
}
