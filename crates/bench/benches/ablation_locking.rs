//! Ablation A1 — fine-grained locking with transaction failures
//! (paper Section V-A) versus a single global monitor lock: single-caller
//! latency and multi-threaded OS call throughput.
//!
//! Ablation A2 — incremental (generation-cached) audit snapshots versus a
//! from-scratch rebuild per snapshot, over a populated monitor: the speedup
//! that lets the explorer's invariant kernel run after every step.
//!
//! Ablation A3 — the giant-lock cost made visible in-repo: eight OS threads
//! hammer *disjoint* enclaves (each worker owns its own region, mapping to
//! its own resource shard), the workload the paper's per-object locking is
//! designed for. Under FineGrained the workers touch disjoint locks and the
//! ticket lock is never taken; under Global every lifecycle call joins one
//! FIFO queue. See also `scaling_stats` / BENCH_scaling.json for the
//! 1/2/4/8-thread sweep with CI gates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot_with_locking;
use sanctorum_core::error::SmError;
use sanctorum_core::monitor::LockingMode;
use sanctorum_core::resource::ResourceId;
use sanctorum_hal::addr::VirtAddr;
use sanctorum_hal::isolation::RegionId;
use sanctorum_os::system::PlatformKind;
use std::sync::Arc;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200))
}

fn mode_name(mode: LockingMode) -> &'static str {
    match mode {
        LockingMode::FineGrained => "fine_grained",
        LockingMode::Global => "global_lock",
    }
}

fn bench_locking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_locking");
    for mode in [LockingMode::FineGrained, LockingMode::Global] {
        // Uncontended single-caller latency of a metadata-only API call.
        group.bench_with_input(
            BenchmarkId::new("uncontended_call", mode_name(mode)),
            &mode,
            |b, &mode| {
                let (system, _os) = boot_with_locking(PlatformKind::Sanctum, mode);
                b.iter(|| system.monitor.resource_state(ResourceId::Region(RegionId::new(1))))
            },
        );

        // Contended throughput: four OS threads performing create/delete
        // cycles on disjoint regions. Fine-grained locking lets them proceed
        // in parallel (with occasional retries); the global lock serializes
        // everything.
        group.bench_with_input(
            BenchmarkId::new("contended_4_threads", mode_name(mode)),
            &mode,
            |b, &mode| {
                b.iter_custom(|iters| {
                    let (system, _os) = boot_with_locking(PlatformKind::Sanctum, mode);
                    let monitor = Arc::clone(&system.monitor);
                    // Make regions 1..5 available.
                    for r in 1..5u32 {
                        monitor
                            .block_resource(CallerSession::os(), ResourceId::Region(RegionId::new(r)))
                            .unwrap();
                        monitor
                            .clean_resource(CallerSession::os(), ResourceId::Region(RegionId::new(r)))
                            .unwrap();
                    }
                    let start = std::time::Instant::now();
                    let handles: Vec<_> = (1..5u32)
                        .map(|r| {
                            let monitor = Arc::clone(&monitor);
                            std::thread::spawn(move || {
                                let region = RegionId::new(r);
                                // Retry helper: fine-grained locking reports
                                // conflicts as ConcurrentCall, which callers
                                // are expected to retry.
                                fn retry<T>(mut f: impl FnMut() -> Result<T, SmError>) -> T {
                                    loop {
                                        match f() {
                                            Ok(v) => return v,
                                            Err(SmError::ConcurrentCall) => continue,
                                            Err(other) => panic!("unexpected error: {other:?}"),
                                        }
                                    }
                                }
                                for _ in 0..iters {
                                    let eid = retry(|| {
                                        monitor.create_enclave(
                                            CallerSession::os(),
                                            VirtAddr::new(0x10_0000),
                                            0x10000,
                                            &[region],
                                        )
                                    });
                                    retry(|| monitor.delete_enclave(CallerSession::os(), eid));
                                    retry(|| {
                                        monitor.clean_resource(
                                            CallerSession::os(),
                                            ResourceId::Region(region),
                                        )
                                    });
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                    start.elapsed()
                })
            },
        );
    }
    group.finish();
}

/// A3: eight threads, each running the full metadata lifecycle (create →
/// page tables → thread → init → delete → clean) on its *own* region —
/// disjoint objects, so FineGrained takes disjoint shard/meta locks while
/// Global serializes everything behind the ticket lock.
fn bench_contended_disjoint(c: &mut Criterion) {
    use sanctorum_core::api::SmApi;
    use sanctorum_core::monitor::SmConfig;
    use sanctorum_explorer::concurrent::concurrent_machine_config;
    use sanctorum_os::system::System;

    const THREADS: u32 = 8;
    let mut group = c.benchmark_group("ablation_locking");
    for mode in [LockingMode::FineGrained, LockingMode::Global] {
        group.bench_with_input(
            BenchmarkId::new("disjoint_enclaves_8_threads", mode_name(mode)),
            &mode,
            |b, &mode| {
                b.iter_custom(|iters| {
                    let system = System::boot(
                        PlatformKind::Sanctum,
                        concurrent_machine_config(),
                        SmConfig {
                            locking: mode,
                            ..SmConfig::default()
                        },
                    );
                    let monitor = Arc::clone(&system.monitor);
                    // One untrusted region per worker (the backend reserves
                    // some regions for the SM itself), made Available
                    // upfront; consecutive indices land on distinct shards.
                    let regions: Vec<RegionId> = (0..system.machine.config().num_regions() as u32)
                        .map(RegionId::new)
                        .filter(|r| {
                            matches!(
                                monitor.resource_state(ResourceId::Region(*r)),
                                Ok(sanctorum_core::resource::ResourceState::Owned(
                                    sanctorum_hal::domain::DomainKind::Untrusted
                                ))
                            )
                        })
                        .take(THREADS as usize)
                        .collect();
                    assert_eq!(regions.len(), THREADS as usize);
                    for region in &regions {
                        monitor
                            .block_resource(CallerSession::os(), ResourceId::Region(*region))
                            .unwrap();
                        monitor
                            .clean_resource(CallerSession::os(), ResourceId::Region(*region))
                            .unwrap();
                    }
                    let start = std::time::Instant::now();
                    let handles: Vec<_> = regions
                        .into_iter()
                        .map(|region| {
                            let monitor = Arc::clone(&monitor);
                            std::thread::spawn(move || {
                                fn retry<T>(mut f: impl FnMut() -> Result<T, SmError>) -> T {
                                    loop {
                                        match f() {
                                            Ok(v) => return v,
                                            // Yield on conflict: an
                                            // oversubscribed host must let
                                            // the conflicting caller finish
                                            // instead of burning the slice.
                                            Err(SmError::ConcurrentCall) => {
                                                std::thread::yield_now()
                                            }
                                            Err(other) => panic!("unexpected error: {other:?}"),
                                        }
                                    }
                                }
                                let os = CallerSession::os;
                                for _ in 0..iters {
                                    let eid = retry(|| {
                                        monitor.create_enclave(
                                            os(),
                                            VirtAddr::new(0x10_0000),
                                            0x4000,
                                            &[region],
                                        )
                                    });
                                    retry(|| monitor.allocate_page_table(os(), eid));
                                    retry(|| monitor.load_thread(os(), eid, 0x10_0000, None));
                                    retry(|| monitor.init_enclave(os(), eid));
                                    retry(|| monitor.delete_enclave(os(), eid));
                                    retry(|| {
                                        monitor.clean_resource(os(), ResourceId::Region(region))
                                    });
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                    start.elapsed()
                })
            },
        );
    }
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    use sanctorum_bench::boot;
    use sanctorum_enclave::image::EnclaveImage;
    use sanctorum_hal::domain::CoreId;

    // A populated monitor: several live enclaves, one of them running a
    // thread, so snapshots carry real window/thread payloads.
    let (system, mut os) = boot(PlatformKind::Sanctum);
    for param in 0..3u64 {
        os.build_enclave(&EnclaveImage::hello(param), 1)
            .expect("bench enclave builds");
    }
    let spinner = os.build_enclave(&EnclaveImage::spinner(), 1).expect("spinner builds");
    os.run_thread(&spinner, spinner.main_thread(), CoreId::new(0), 16)
        .expect("spinner preempts");

    let mut group = c.benchmark_group("ablation_audit");
    // Steady state of the explorer loop: audit after a step that changed
    // nothing — the incremental path is pure cache reuse.
    group.bench_function("incremental_unchanged", |b| {
        let _ = system.monitor.audit(); // warm the cache
        b.iter(|| system.monitor.audit())
    });
    // Audit under ongoing mutation traffic: each iteration churns the
    // thread table (two API calls) and snapshots; the incremental path pays
    // the generation compare plus only the component that moved, still
    // reusing every cached enclave record and window list.
    group.bench_function("incremental_after_mutation", |b| {
        let session = CallerSession::os();
        b.iter(|| {
            let tid = system.monitor.create_thread(session, 0x4000).expect("create");
            system.monitor.delete_thread(session, tid).expect("delete");
            system.monitor.audit()
        })
    });
    // The ablated baseline: every snapshot rebuilt from scratch (the PR 2
    // behaviour), cloning every window list and thread table.
    group.bench_function("full_rebuild", |b| b.iter(|| system.monitor.audit_full()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_locking, bench_contended_disjoint, bench_audit
}
criterion_main!(benches);
