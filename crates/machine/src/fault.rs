//! Deterministic fault injection for crash-consistency testing.
//!
//! M-mode firmware can lose a hart mid-mutation: a machine check in the
//! middle of `create_enclave`'s PMP-grant sequence, a power cut between two
//! pages of a region scrub. The monitor's crash-consistency story (the
//! mutation journal and `SecurityMonitor::recover`) is only testable if
//! those interruptions can be *produced on demand, deterministically* —
//! which is what this module does, following the filesystem
//! crash-consistency methodology: every interruptible step in the stack is
//! marked with a named, compiled-in fault point, and a seedable plan decides
//! which crossing of which point crashes or fails.
//!
//! Three modes:
//!
//! * **off** (the default): every crossing is a single relaxed atomic load —
//!   pinned replay digests are unaffected by the instrumentation;
//! * **recording**: crossings are logged (site name + per-site index) so a
//!   sweep harness can enumerate the exact crash surface of a trace;
//! * **armed**: a [`FaultPlan`] either panics with an [`InjectedCrash`]
//!   payload at a chosen crossing (the "power cut" — callers catch it with
//!   `catch_unwind` and then exercise recovery) or makes a fallible
//!   operation report a transient backend error for its first *n* matching
//!   crossings (the "flaky device").
//!
//! Fault points are crossed via the [`fault_point!`](crate::fault_point)
//! macro; `cargo xtask lint` (rule D) requires every call site to carry a
//! `// journal:` or `// atomic:` classification comment explaining why a
//! crash at that point is recoverable.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Crosses a named fault point on an injector, evaluating to the
/// [`Crossing`] verdict. The macro form exists so `cargo xtask lint` can
/// enumerate every fault site textually (rule D: each call site must carry
/// a `// journal:` or `// atomic:` classification comment).
#[macro_export]
macro_rules! fault_point {
    ($injector:expr, $site:expr $(,)?) => {
        $injector.cross($site)
    };
}

/// The compiled-in fault-site inventory: every name a [`fault_point!`]
/// call site in the stack declares. Crash harnesses use it as the coverage
/// bar — a site listed here that a sweep never crosses is untested crash
/// surface, and a crossed site missing from this list is an undeclared
/// fault point (both are failures in `explorer/tests/crash_sweep.rs`).
pub const ALL_SITES: &[&str] = &[
    "backend.assign-region",
    "backend.set-dma-blocked",
    "backend.flush-region-cache",
    "backend.tlb-shootdown",
    "monitor.scrub-page",
    "monitor.mail-copy",
    "monitor.mail-fetch",
    "journal.record",
    "journal.step",
    "journal.complete",
];

/// Panic payload of an injected crash. Crash harnesses `catch_unwind` and
/// downcast to this type; any other payload is a real bug and must be
/// propagated with `resume_unwind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedCrash {
    /// The fault point that crashed.
    pub site: &'static str,
    /// The 1-based global crossing index (since arming) at which it fired.
    pub crossing: u64,
}

impl std::fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected crash at {} (crossing {})", self.site, self.crossing)
    }
}

/// What an armed injector does to fault-point crossings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// Panic with [`InjectedCrash`] at a chosen crossing: the k-th crossing
    /// of `site`, or — with `site: None` — the k-th crossing of *any*
    /// point (the form crash sweeps use, with k counted from arming).
    CrashAt {
        /// Restrict to one named fault point, or `None` for any.
        site: Option<&'static str>,
        /// 1-based crossing index at which to crash.
        crossing: u64,
    },
    /// Report [`Crossing::FailOp`] for the first `times` matching crossings,
    /// then proceed normally — a transient backend fault that goes away
    /// under retry (or, with a large `times`, a persistent one that
    /// exercises quarantine).
    FailOp {
        /// Restrict to one named fault point, or `None` for any.
        site: Option<&'static str>,
        /// Number of crossings to fail before recovering.
        times: u64,
    },
}

/// The verdict of one fault-point crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crossing {
    /// Continue normally.
    Proceed,
    /// The operation guarded by this point must report a transient backend
    /// error. Crash-only sites (journal steps) may ignore this verdict.
    FailOp,
}

/// Installs (once per process) a panic-hook filter that suppresses the
/// default "thread panicked" report for [`InjectedCrash`] payloads — a
/// crash sweep fires thousands of them on purpose, each one caught — while
/// chaining every other panic to the previously installed hook.
pub fn silence_injected_crash_reports() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                previous(info);
            }
        }));
    });
}

#[derive(Debug, Default)]
struct InjectorState {
    plan: Option<FaultPlan>,
    recording: bool,
    /// Global crossings since arming/recording started.
    total: u64,
    /// Per-site crossing counts since arming/recording started.
    per_site: BTreeMap<&'static str, u64>,
    /// FailOp verdicts already issued.
    failed: u64,
    /// Recorded crossings: `(site, per-site 1-based index)`, in order.
    log: Vec<(&'static str, u64)>,
}

/// The machine's fault-injection switchboard (one per [`Machine`]).
///
/// Excluded from [`Machine::state_digest`] by construction — the digest
/// covers harts and DRAM only — so arming, recording and disarming never
/// perturb replay digests.
///
/// [`Machine`]: crate::Machine
/// [`Machine::state_digest`]: crate::Machine::state_digest
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Fast-path gate: `false` means off, and crossings cost one load.
    active: AtomicBool,
    state: Mutex<InjectorState>,
}

enum Verdict {
    Proceed,
    Fail,
    Crash(u64),
}

impl FaultInjector {
    /// Creates a disarmed injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `plan`, resetting all crossing counters.
    pub fn arm(&self, plan: FaultPlan) {
        let mut state = self.state.lock();
        *state = InjectorState { plan: Some(plan), ..InjectorState::default() };
        self.active.store(true, Ordering::Release);
    }

    /// Starts recording crossings (no faults fire), resetting all counters.
    pub fn record(&self) {
        let mut state = self.state.lock();
        *state = InjectorState { recording: true, ..InjectorState::default() };
        self.active.store(true, Ordering::Release);
    }

    /// Disarms the injector and clears all recorded state.
    pub fn disarm(&self) {
        // Order matters for the fast path: close the gate first, then wipe.
        self.active.store(false, Ordering::Release);
        *self.state.lock() = InjectorState::default();
    }

    /// Whether the injector is armed or recording.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Takes the recorded crossing log: `(site, per-site 1-based index)` in
    /// crossing order. Counters keep running; only the log is drained.
    pub fn take_log(&self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.state.lock().log)
    }

    /// Total fault-point crossings since the injector was last armed or put
    /// into recording mode.
    pub fn crossings(&self) -> u64 {
        self.state.lock().total
    }

    /// One fault-point crossing. Off: a single atomic load. Recording: the
    /// crossing is logged and proceeds. Armed: the plan decides — a
    /// [`FaultPlan::CrashAt`] match panics with [`InjectedCrash`] (the lock
    /// is released first, so the panic unwinds through *caller* state only),
    /// a [`FaultPlan::FailOp`] match returns [`Crossing::FailOp`].
    pub fn cross(&self, site: &'static str) -> Crossing {
        if !self.active.load(Ordering::Acquire) {
            return Crossing::Proceed;
        }
        let verdict = {
            let mut state = self.state.lock();
            state.total = state.total.saturating_add(1);
            let site_k = state.per_site.entry(site).or_insert(0);
            *site_k += 1;
            let site_k = *site_k;
            if state.recording {
                state.log.push((site, site_k));
            }
            let total = state.total;
            match state.plan {
                Some(FaultPlan::CrashAt { site: None, crossing }) if total == crossing => {
                    Verdict::Crash(total)
                }
                Some(FaultPlan::CrashAt { site: Some(s), crossing })
                    if s == site && site_k == crossing =>
                {
                    Verdict::Crash(total)
                }
                Some(FaultPlan::FailOp { site: sel, times })
                    if (sel.is_none() || sel == Some(site)) && state.failed < times =>
                {
                    state.failed += 1;
                    Verdict::Fail
                }
                _ => Verdict::Proceed,
            }
        };
        match verdict {
            Verdict::Proceed => Crossing::Proceed,
            Verdict::Fail => Crossing::FailOp,
            Verdict::Crash(crossing) => {
                std::panic::panic_any(InjectedCrash { site, crossing })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_crossings_proceed_and_count_nothing() {
        let inj = FaultInjector::new();
        assert_eq!(inj.cross("a"), Crossing::Proceed);
        assert_eq!(inj.crossings(), 0);
        assert!(!inj.is_active());
    }

    #[test]
    fn recording_logs_per_site_indices_in_order() {
        let inj = FaultInjector::new();
        inj.record();
        inj.cross("a");
        inj.cross("b");
        inj.cross("a");
        assert_eq!(inj.take_log(), vec![("a", 1), ("b", 1), ("a", 2)]);
        assert_eq!(inj.take_log(), vec![], "log drains");
        inj.cross("a");
        assert_eq!(inj.take_log(), vec![("a", 3)], "counters keep running");
        inj.disarm();
        inj.cross("a");
        assert_eq!(inj.crossings(), 0);
    }

    #[test]
    fn crash_at_global_crossing_panics_with_typed_payload() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::CrashAt { site: None, crossing: 3 });
        inj.cross("a");
        inj.cross("b");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.cross("c");
        }))
        .expect_err("third crossing crashes");
        let crash = caught.downcast_ref::<InjectedCrash>().expect("typed payload");
        assert_eq!((crash.site, crash.crossing), ("c", 3));
    }

    #[test]
    fn crash_at_named_site_counts_per_site() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::CrashAt { site: Some("b"), crossing: 2 });
        inj.cross("b");
        inj.cross("a");
        inj.cross("a");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.cross("b");
        }))
        .expect_err("second crossing of b crashes");
        assert!(caught.downcast_ref::<InjectedCrash>().is_some());
    }

    #[test]
    fn fail_op_fails_n_times_then_recovers() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan::FailOp { site: Some("a"), times: 2 });
        assert_eq!(inj.cross("b"), Crossing::Proceed, "other sites unaffected");
        assert_eq!(inj.cross("a"), Crossing::FailOp);
        assert_eq!(inj.cross("a"), Crossing::FailOp);
        assert_eq!(inj.cross("a"), Crossing::Proceed, "budget exhausted");
    }

    #[test]
    fn macro_form_crosses() {
        let inj = FaultInjector::new();
        inj.record();
        // atomic: test-only site; nothing is mutated around it.
        let verdict = crate::fault_point!(inj, "macro.site");
        assert_eq!(verdict, Crossing::Proceed);
        assert_eq!(inj.take_log(), vec![("macro.site", 1)]);
    }
}
