//! Cross-crate integration tests: the full enclave lifecycle (paper Figs. 2–4)
//! driven by the OS model on both platform backends.

use sanctorum_bench::{boot, boot_with_enclave};
use sanctorum_core::api::{status, SmApi, SmCall};
use sanctorum_core::session::CallerSession;
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_machine::trap::{Interrupt, TrapCause};
use sanctorum_os::os::ThreadRunOutcome;
use sanctorum_os::system::PlatformKind;

#[test]
fn multiple_enclaves_coexist_and_cycle_through_lifecycle() {
    for platform in PlatformKind::ALL {
        let (_system, mut os) = boot(platform);
        let a = os.build_enclave(&EnclaveImage::hello(1), 1).unwrap();
        let b = os.build_enclave(&EnclaveImage::hello(2), 1).unwrap();
        assert_ne!(a.eid, b.eid);
        assert_ne!(a.measurement, b.measurement);

        // Run both, on different cores.
        let ra = os.run_thread(&a, a.main_thread(), CoreId::new(0), 10_000).unwrap();
        let rb = os.run_thread(&b, b.main_thread(), CoreId::new(1), 10_000).unwrap();
        assert!(matches!(ra, ThreadRunOutcome::Exited { .. }));
        assert!(matches!(rb, ThreadRunOutcome::Exited { .. }));

        // Tear down in reverse order and rebuild a third enclave in the
        // recycled memory.
        os.teardown_enclave(&b).unwrap();
        os.teardown_enclave(&a).unwrap();
        let c = os.build_enclave(&EnclaveImage::hello(1), 1).unwrap();
        assert_eq!(
            c.measurement, a.measurement,
            "recycled placement must not change the measurement"
        );
    }
}

#[test]
fn resource_states_follow_fig2_during_lifecycle() {
    let (system, mut os) = boot(PlatformKind::Sanctum);
    let built = os.build_enclave(&EnclaveImage::hello(7), 1).unwrap();
    let region = ResourceId::Region(built.regions[0]);
    assert_eq!(
        system.monitor.resource_state(region).unwrap(),
        ResourceState::Owned(DomainKind::Enclave(built.eid))
    );
    system
        .monitor
        .delete_enclave(CallerSession::os(), built.eid)
        .unwrap();
    assert!(matches!(
        system.monitor.resource_state(region).unwrap(),
        ResourceState::Blocked(_)
    ));
    system
        .monitor
        .clean_resource(CallerSession::os(), region)
        .unwrap();
    assert_eq!(
        system.monitor.resource_state(region).unwrap(),
        ResourceState::Available
    );
    system
        .monitor
        .grant_resource(CallerSession::os(), region, DomainKind::Untrusted)
        .unwrap();
    assert_eq!(
        system.monitor.resource_state(region).unwrap(),
        ResourceState::Owned(DomainKind::Untrusted)
    );
}

#[test]
fn aex_preserves_enclave_progress_and_hides_state_from_os() {
    let (system, mut os, built) = {
        let (system, mut os) = boot(PlatformKind::Sanctum);
        let built = os.build_enclave(&EnclaveImage::spinner(), 1).unwrap();
        (system, os, built)
    };
    let tid = built.main_thread();
    let core = CoreId::new(0);

    // Run briefly, then the OS scheduler tick interrupts the enclave.
    system
        .monitor
        .enter_enclave(CallerSession::os_on(core), built.eid, tid)
        .unwrap();
    system.machine.raise_interrupt(core, Interrupt::Timer).unwrap();
    let program = built.program(tid).unwrap().clone();
    let result = system.machine.run_guest(core, &program, 1_000);
    assert!(matches!(
        result.exit,
        sanctorum_machine::guest::ExitReason::Trap(TrapCause::Interrupt(_))
    ));
    let outcome = system.monitor.handle_event(core, TrapCause::Interrupt(Interrupt::Timer));
    assert!(matches!(
        outcome,
        sanctorum_core::dispatch::EventOutcome::DelegateToOs { aex_performed: true, .. }
    ));

    // After the AEX the core is clean: no enclave registers remain.
    assert!(system.machine.hart(core).is_clean());
    assert!(!system.machine.tlb(core).has_entries_for(DomainKind::Enclave(built.eid)));

    // The thread records its AEX state and can be resumed.
    let info = system.monitor.thread_info(tid).unwrap();
    assert!(info.aex_pending);
    assert!(info.aex_state.is_some());
    let resumed = os.run_thread(&built, tid, core, 32).unwrap();
    assert_eq!(resumed, ThreadRunOutcome::Preempted);
}

#[test]
fn register_level_abi_drives_the_monitor() {
    // Exercise the Fig. 1 ecall path end to end: the OS stages call
    // arguments in registers, executes an ecall from a guest program, and the
    // dispatcher performs the call.
    let (system, _os, built) = boot_with_enclave(PlatformKind::Keystone);
    let core = CoreId::new(1);
    system.machine.install_context(
        core,
        DomainKind::Untrusted,
        sanctorum_machine::hart::PrivilegeLevel::Supervisor,
        None,
        0,
    );
    // Accepting mail is an enclave-only call: issued from the OS context it
    // must be rejected with UNAUTHORIZED through the ABI as well.
    system
        .monitor
        .stage_call(core, &SmCall::AcceptMail { mailbox: 0, sender_id: 0 });
    let program = sanctorum_machine::guest::GuestProgram::new(
        "ecall-once",
        vec![sanctorum_machine::guest::GuestOp::Ecall, sanctorum_machine::guest::GuestOp::Exit],
    );
    let run = system.machine.run_guest(core, &program, 10);
    assert_eq!(run.exit, sanctorum_machine::guest::ExitReason::Ecall);
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    let (code, _) = system.monitor.read_call_result(core);
    assert_eq!(code, status::UNAUTHORIZED);

    // A legal call through the ABI: query a public field. Reset the guest
    // context so the ecall runs again from the top of the program.
    system.machine.install_context(
        core,
        DomainKind::Untrusted,
        sanctorum_machine::hart::PrivilegeLevel::Supervisor,
        None,
        0,
    );
    system.monitor.stage_call(core, &SmCall::GetField { field: 3 });
    let run = system.machine.run_guest(core, &program, 10);
    assert_eq!(run.exit, sanctorum_machine::guest::ExitReason::Ecall);
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    let (code, value) = system.monitor.read_call_result(core);
    assert_eq!(code, status::OK);
    assert_eq!(value, 32, "the SM measurement field is 32 bytes long");
    let _ = built;
}

#[test]
fn keystone_pmp_exhaustion_limits_live_enclaves() {
    use sanctorum_core::error::SmError;
    use sanctorum_core::monitor::SmConfig;
    use sanctorum_machine::MachineConfig;
    use sanctorum_os::os::Os;
    use sanctorum_os::system::System;

    // Only 3 PMP entries: one for the SM, so at most two protected enclaves.
    let system = System::boot(
        PlatformKind::Keystone,
        MachineConfig {
            pmp_entries: 3,
            ..MachineConfig::small()
        },
        SmConfig::default(),
    );
    let mut os = Os::new(&system);
    let _a = os.build_enclave(&EnclaveImage::hello(1), 1).unwrap();
    let _b = os.build_enclave(&EnclaveImage::hello(2), 1).unwrap();
    let err = os.build_enclave(&EnclaveImage::hello(3), 1).unwrap_err();
    assert!(matches!(err, SmError::Platform(_)), "got {err:?}");
}
