//! Arithmetic in GF(2^255 - 19), the base field of Curve25519.
//!
//! Elements are stored as five 51-bit little-endian limbs. The code favours
//! clarity over speed: every operation finishes with a carry pass so limbs
//! stay comfortably below 2^52 and intermediate products fit in `u128`.

use core::ops::{Add, Mul, Neg, Sub};

/// Mask selecting the low 51 bits of a limb.
const LOW_51: u64 = (1 << 51) - 1;

/// An element of GF(2^255 - 19).
#[derive(Debug, Clone, Copy)]
pub struct FieldElement {
    limbs: [u64; 5],
}

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement { limbs: [0; 5] };
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement {
        limbs: [1, 0, 0, 0, 0],
    };

    /// Constructs an element from a small unsigned integer.
    pub const fn from_u64(v: u64) -> Self {
        FieldElement {
            limbs: [v & LOW_51, v >> 51, 0, 0, 0],
        }
    }

    /// Decodes an element from 32 little-endian bytes, ignoring the top bit
    /// (bit 255) per the Curve25519 conventions.
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        let load = |start: usize| -> u64 {
            let mut v = 0u64;
            for i in 0..8 {
                v |= (bytes[start + i] as u64) << (8 * i);
            }
            v
        };
        // Load 64-bit words then slice into 51-bit limbs.
        let w0 = load(0);
        let w1 = load(8);
        let w2 = load(16);
        let w3 = load(24);
        let limbs = [
            w0 & LOW_51,
            ((w0 >> 51) | (w1 << 13)) & LOW_51,
            ((w1 >> 38) | (w2 << 26)) & LOW_51,
            ((w2 >> 25) | (w3 << 39)) & LOW_51,
            (w3 >> 12) & LOW_51,
        ];
        FieldElement { limbs }.carried()
    }

    /// Encodes the element as 32 little-endian bytes in fully reduced form.
    pub fn to_bytes(&self) -> [u8; 32] {
        let reduced = self.freeze();
        let l = reduced.limbs;
        let mut out = [0u8; 32];
        let w0 = l[0] | (l[1] << 51);
        let w1 = (l[1] >> 13) | (l[2] << 38);
        let w2 = (l[2] >> 26) | (l[3] << 25);
        let w3 = (l[3] >> 39) | (l[4] << 12);
        out[0..8].copy_from_slice(&w0.to_le_bytes());
        out[8..16].copy_from_slice(&w1.to_le_bytes());
        out[16..24].copy_from_slice(&w2.to_le_bytes());
        out[24..32].copy_from_slice(&w3.to_le_bytes());
        out
    }

    /// One carry pass: brings every limb below 2^51 plus a small excess in
    /// limb 0.
    fn carried(mut self) -> Self {
        let mut carry;
        for i in 0..4 {
            carry = self.limbs[i] >> 51;
            self.limbs[i] &= LOW_51;
            self.limbs[i + 1] += carry;
        }
        carry = self.limbs[4] >> 51;
        self.limbs[4] &= LOW_51;
        self.limbs[0] += carry * 19;
        // One more partial pass to keep limb 0 in range.
        let c = self.limbs[0] >> 51;
        self.limbs[0] &= LOW_51;
        self.limbs[1] += c;
        self
    }

    /// Produces the canonical representative (all limbs < 2^51 and the value
    /// < p).
    fn freeze(&self) -> Self {
        let mut v = self.carried().carried();
        // Now v < 2^255 + small. Subtract p if v >= p, possibly twice.
        for _ in 0..2 {
            // Compute v - p = v - (2^255 - 19) = v + 19 - 2^255.
            let mut t = v.limbs;
            t[0] += 19;
            let mut carry;
            for i in 0..4 {
                carry = t[i] >> 51;
                t[i] &= LOW_51;
                t[i + 1] += carry;
            }
            let borrow = t[4] >> 51; // set iff v + 19 >= 2^255, i.e. v >= p
            t[4] &= LOW_51;
            if borrow != 0 {
                v.limbs = t;
            }
        }
        v
    }

    /// Returns `true` if the element equals zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Returns the least significant bit of the canonical encoding (used as
    /// the "sign" of an x-coordinate in point compression).
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Squares the element.
    ///
    /// Dedicated squaring: the symmetric cross terms of the schoolbook
    /// product collapse (`a_i·a_j + a_j·a_i = 2·a_i·a_j`), so 15 limb
    /// multiplications replace the generic 25. Squarings dominate both the
    /// Montgomery ladder and every exponentiation-based inversion, so this
    /// is the single hottest primitive in the crate.
    #[must_use]
    pub fn square(&self) -> Self {
        let a = &self.limbs;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let d0 = a[0] * 2;
        let d1 = a[1] * 2;
        let d3 = a[3] * 2;

        let c0 = m(a[0], a[0]) + 38 * (m(a[1], a[4]) + m(a[2], a[3]));
        let c1 = m(d0, a[1]) + 38 * m(a[2], a[4]) + 19 * m(a[3], a[3]);
        let c2 = m(d0, a[2]) + m(a[1], a[1]) + 19 * m(d3, a[4]);
        let c3 = m(d0, a[3]) + m(d1, a[2]) + 19 * m(a[4], a[4]);
        let c4 = m(d0, a[4]) + m(d1, a[3]) + m(a[2], a[2]);

        Self::carry_wide([c0, c1, c2, c3, c4])
    }

    /// Multiplies by a small constant (at most 17 bits, e.g. the ladder's
    /// `a24 = 121665`) without paying a full 25-multiplication product.
    #[must_use]
    pub fn mul_small(&self, k: u32) -> Self {
        let k = k as u128;
        let c = self.limbs.map(|l| (l as u128) * k);
        Self::carry_wide(c)
    }

    /// Reduces five wide column sums into a carried element (the shared tail
    /// of multiplication, squaring and small-constant multiplication).
    fn carry_wide(mut c: [u128; 5]) -> Self {
        let mut limbs = [0u64; 5];
        let mut carry: u128;
        carry = c[0] >> 51;
        limbs[0] = (c[0] as u64) & LOW_51;
        for i in 1..5 {
            c[i] += carry;
            carry = c[i] >> 51;
            limbs[i] = (c[i] as u64) & LOW_51;
        }
        limbs[0] += (carry as u64) * 19;
        FieldElement { limbs }.carried()
    }

    /// Squares the element `n` times in sequence.
    #[must_use]
    fn square_n(&self, n: u32) -> Self {
        let mut out = *self;
        for _ in 0..n {
            out = out.square();
        }
        out
    }

    /// The shared prefix of the inversion and square-root addition chains:
    /// returns `(self^(2^250 - 1), self^11)`.
    fn pow22501(&self) -> (Self, Self) {
        let z2 = self.square();
        let z8 = z2.square_n(2);
        let z9 = z8 * *self;
        let z11 = z9 * z2;
        let z2_5_0 = z11.square() * z9; // 2^5 - 1
        let z2_10_0 = z2_5_0.square_n(5) * z2_5_0;
        let z2_20_0 = z2_10_0.square_n(10) * z2_10_0;
        let z2_40_0 = z2_20_0.square_n(20) * z2_20_0;
        let z2_50_0 = z2_40_0.square_n(10) * z2_10_0;
        let z2_100_0 = z2_50_0.square_n(50) * z2_50_0;
        let z2_200_0 = z2_100_0.square_n(100) * z2_100_0;
        let z2_250_0 = z2_200_0.square_n(50) * z2_50_0;
        (z2_250_0, z11)
    }

    /// Raises the element to the power encoded by `exponent` (little-endian
    /// bytes), via square-and-multiply.
    #[must_use]
    pub fn pow_le(&self, exponent: &[u8; 32]) -> Self {
        let mut result = FieldElement::ONE;
        // Find the highest set bit.
        let mut started = false;
        for bit in (0..256).rev() {
            if started {
                result = result.square();
            }
            if (exponent[bit / 8] >> (bit % 8)) & 1 == 1 {
                if started {
                    result = result * *self;
                } else {
                    result = *self;
                    started = true;
                }
            }
        }
        if started {
            result
        } else {
            FieldElement::ONE
        }
    }

    /// Multiplicative inverse (returns zero for zero).
    ///
    /// Uses the standard Curve25519 addition chain for `self^(p-2)`:
    /// 254 squarings and 11 multiplications, roughly half the cost of generic
    /// square-and-multiply over the nearly-all-ones exponent.
    #[must_use]
    pub fn invert(&self) -> Self {
        let (z2_250_0, z11) = self.pow22501();
        z2_250_0.square_n(5) * z11 // 2^255 - 21 = p - 2
    }

    /// Computes `self^((p-5)/8)`, the exponentiation used in square-root
    /// extraction during point decompression (same addition chain as
    /// [`Self::invert`], different tail).
    #[must_use]
    pub fn pow_p58(&self) -> Self {
        let (z2_250_0, _) = self.pow22501();
        z2_250_0.square_n(2) * *self // 2^252 - 3 = (p - 5) / 8
    }

    /// Returns sqrt(-1) mod p.
    ///
    /// The value is a fixed curve constant, so the exponentiation runs once
    /// per process; point decompression sits on the attestation hot path and
    /// must not pay a ~250-squaring `pow_le` per call.
    pub fn sqrt_m1() -> Self {
        static CACHE: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
        *CACHE.get_or_init(|| {
            // 2^((p-1)/4); (p-1)/4 = 2^253 - 5, bytes: 0xfb, 30 × 0xff, 0x1f.
            let mut exp = [0xffu8; 32];
            exp[0] = 0xfb;
            exp[31] = 0x1f;
            FieldElement::from_u64(2).pow_le(&exp)
        })
    }

    /// Constant-time-ish equality on canonical encodings.
    pub fn ct_equals(&self, other: &Self) -> bool {
        crate::ct::ct_eq(&self.to_bytes(), &other.to_bytes())
    }

    /// Conditionally swaps `a` and `b` when `choice` is 1.
    pub fn conditional_swap(choice: u8, a: &mut Self, b: &mut Self) {
        crate::ct::ct_swap_u64(choice, &mut a.limbs, &mut b.limbs);
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for FieldElement {}

impl Add for FieldElement {
    type Output = FieldElement;
    fn add(self, rhs: Self) -> Self {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            limbs[i] = self.limbs[i] + rhs.limbs[i];
        }
        FieldElement { limbs }.carried()
    }
}

impl Sub for FieldElement {
    type Output = FieldElement;
    fn sub(self, rhs: Self) -> Self {
        // Add 2p before subtracting so limbs never underflow.
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            limbs[i] = self.limbs[i] + TWO_P[i] - rhs.limbs[i];
        }
        FieldElement { limbs }.carried()
    }
}

impl Neg for FieldElement {
    type Output = FieldElement;
    fn neg(self) -> Self {
        FieldElement::ZERO - self
    }
}

impl Mul for FieldElement {
    type Output = FieldElement;
    fn mul(self, rhs: Self) -> Self {
        let a = &self.limbs;
        let b = &rhs.limbs;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };

        let mut c0 = m(a[0], b[0]);
        let mut c1 = m(a[0], b[1]) + m(a[1], b[0]);
        let mut c2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]);
        let mut c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]);
        let c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        c0 += 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        c1 += 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        c2 += 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        c3 += 19 * m(a[4], b[4]);

        FieldElement::carry_wide([c0, c1, c2, c3, c4])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fe(v: u64) -> FieldElement {
        FieldElement::from_u64(v)
    }

    #[test]
    fn add_sub_round_trip() {
        let a = fe(123456789);
        let b = fe(987654321);
        assert_eq!((a + b) - b, a);
        assert_eq!(a - a, FieldElement::ZERO);
    }

    #[test]
    fn mul_matches_small_integers() {
        assert_eq!(fe(7) * fe(6), fe(42));
        assert_eq!(fe(1 << 30) * fe(1 << 30), fe(1 << 60));
    }

    #[test]
    fn inverse_is_correct() {
        let a = fe(1234567);
        assert_eq!(a * a.invert(), FieldElement::ONE);
        assert_eq!(FieldElement::ZERO.invert(), FieldElement::ZERO);
    }

    #[test]
    fn negation() {
        let a = fe(5);
        assert_eq!(a + (-a), FieldElement::ZERO);
    }

    #[test]
    fn bytes_round_trip() {
        let a = fe(0xdead_beef_cafe);
        let b = FieldElement::from_bytes(&a.to_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn modulus_encodes_to_zero() {
        // p = 2^255 - 19 should reduce to 0.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = FieldElement::from_bytes(&p_bytes);
        assert!(p.is_zero());
    }

    #[test]
    fn p_minus_one_is_minus_one() {
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xec;
        bytes[31] = 0x7f;
        let v = FieldElement::from_bytes(&bytes);
        assert_eq!(v + FieldElement::ONE, FieldElement::ZERO);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = FieldElement::sqrt_m1();
        assert_eq!(i.square(), -FieldElement::ONE);
    }

    #[test]
    fn pow_le_small_cases() {
        let two = fe(2);
        let mut exp = [0u8; 32];
        exp[0] = 10;
        assert_eq!(two.pow_le(&exp), fe(1024));
        let zero_exp = [0u8; 32];
        assert_eq!(two.pow_le(&zero_exp), FieldElement::ONE);
    }

    #[test]
    fn is_negative_of_small_values() {
        assert!(fe(1).is_negative());
        assert!(!fe(2).is_negative());
    }

    proptest! {
        #[test]
        fn mul_commutes(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(fe(a) * fe(b), fe(b) * fe(a));
        }

        #[test]
        fn mul_distributes_over_add(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let (a, b, c) = (fe(a), fe(b), fe(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn invert_random(a in 1u64..) {
            prop_assert_eq!(fe(a) * fe(a).invert(), FieldElement::ONE);
        }

        #[test]
        fn square_matches_mul(a in any::<u64>()) {
            prop_assert_eq!(fe(a).square(), fe(a) * fe(a));
        }

        #[test]
        fn square_matches_mul_on_wide_elements(bytes in any::<[u8; 32]>()) {
            let mut b = bytes;
            b[31] &= 0x7f;
            let x = FieldElement::from_bytes(&b);
            prop_assert_eq!(x.square(), x * x);
        }

        #[test]
        fn mul_small_matches_full_mul(bytes in any::<[u8; 32]>(), k in any::<u32>()) {
            let mut b = bytes;
            b[31] &= 0x7f;
            let k = k & 0x1ffff; // mul_small's 17-bit contract
            let x = FieldElement::from_bytes(&b);
            prop_assert_eq!(x.mul_small(k), x * FieldElement::from_u64(k as u64));
        }

        #[test]
        fn addition_chain_invert_matches_pow_le(bytes in any::<[u8; 32]>()) {
            let mut b = bytes;
            b[31] &= 0x7f;
            let x = FieldElement::from_bytes(&b);
            // p - 2 = 2^255 - 21, little-endian bytes: 0xeb, 30 × 0xff, 0x7f.
            let mut exp = [0xffu8; 32];
            exp[0] = 0xeb;
            exp[31] = 0x7f;
            prop_assert_eq!(x.invert(), x.pow_le(&exp));
            // (p - 5) / 8 = 2^252 - 3, bytes: 0xfd, 30 × 0xff, 0x0f.
            let mut exp = [0xffu8; 32];
            exp[0] = 0xfd;
            exp[31] = 0x0f;
            prop_assert_eq!(x.pow_p58(), x.pow_le(&exp));
        }

        #[test]
        fn bytes_round_trip_random(bytes in any::<[u8; 32]>()) {
            let mut b = bytes;
            b[31] &= 0x7f;
            let x = FieldElement::from_bytes(&b);
            let y = FieldElement::from_bytes(&x.to_bytes());
            prop_assert_eq!(x, y);
        }
    }
}
