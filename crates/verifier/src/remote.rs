//! The remote verifier: nonce issuance, key agreement and evidence checking.
//!
//! Built for service-scale attestation: any number of challenges may be
//! outstanding at once (each nonce keys its own DH secret), evidence can be
//! checked in batches, and a **certificate-chain cache** makes the steady
//! state cheap — the (device certificate, SM certificate) pair is validated
//! once per platform, after which each report costs a single Ed25519
//! verification instead of three.

use crate::session::SecureSession;
use sanctorum_core::attestation::AttestationEvidence;
use sanctorum_core::measurement::Measurement;
use sanctorum_crypto::ct::ct_eq;
use sanctorum_crypto::drbg::ChaChaDrbg;
use sanctorum_crypto::ed25519::PublicKey;
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_crypto::x25519;
use std::collections::BTreeMap;
use std::fmt;

/// The challenge the verifier sends to the (untrusted) platform: a fresh
/// nonce and the verifier's ephemeral DH public value (Fig. 7 steps ①–②).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Anti-replay nonce to be signed by the signing enclave.
    pub nonce: [u8; 32],
    /// The verifier's X25519 public value.
    pub verifier_dh_public: [u8; 32],
}

/// Why evidence verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// A certificate or the report signature did not verify.
    BadSignature,
    /// The certificate chain does not root in the pinned manufacturer key.
    UntrustedRoot,
    /// The nonce in the report does not match the outstanding challenge.
    StaleNonce,
    /// The report data does not bind the enclave's DH public value.
    ChannelBindingMismatch,
    /// The enclave measurement is not one the verifier trusts.
    UnexpectedMeasurement,
    /// No challenge is outstanding.
    NoChallenge,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            VerifyError::BadSignature => "signature or certificate verification failed",
            VerifyError::UntrustedRoot => "certificate chain does not root in the manufacturer",
            VerifyError::StaleNonce => "nonce mismatch (replayed or stale evidence)",
            VerifyError::ChannelBindingMismatch => "report data does not bind the enclave key",
            VerifyError::UnexpectedMeasurement => "enclave measurement is not trusted",
            VerifyError::NoChallenge => "no outstanding challenge",
        };
        write!(f, "{text}")
    }
}

impl std::error::Error for VerifyError {}

/// The remote verifier (the paper's trusted first party).
pub struct RemoteVerifier {
    manufacturer_root: PublicKey,
    trusted_measurements: Vec<Measurement>,
    drbg: ChaChaDrbg,
    /// Outstanding challenges: nonce → the DH secret issued with it. Any
    /// number may be in flight, which is what lets a fleet of clients attest
    /// concurrently against one verifier.
    outstanding: BTreeMap<[u8; 32], [u8; 32]>,
    /// Validated certificate chains: digest of (device cert, SM cert) → the
    /// SM attestation public key the chain vouches for. A hit skips both
    /// certificate verifications.
    chain_cache: BTreeMap<[u8; 32], PublicKey>,
    chain_cache_hits: u64,
}

impl fmt::Debug for RemoteVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RemoteVerifier {{ trusted_measurements: {}, outstanding: {} }}",
            self.trusted_measurements.len(),
            self.outstanding.len()
        )
    }
}

impl RemoteVerifier {
    /// Creates a verifier pinning `manufacturer_root` and trusting enclaves
    /// whose measurement appears in `trusted_measurements`.
    pub fn new(
        manufacturer_root: PublicKey,
        trusted_measurements: Vec<Measurement>,
        rng_seed: [u8; 32],
    ) -> Self {
        Self {
            manufacturer_root,
            trusted_measurements,
            drbg: ChaChaDrbg::from_seed(rng_seed),
            outstanding: BTreeMap::new(),
            chain_cache: BTreeMap::new(),
            chain_cache_hits: 0,
        }
    }

    /// Adds a measurement to the trusted set.
    pub fn trust_measurement(&mut self, measurement: Measurement) {
        self.trusted_measurements.push(measurement);
    }

    /// Number of challenges currently outstanding.
    pub fn outstanding_challenges(&self) -> usize {
        self.outstanding.len()
    }

    /// How many evidence checks skipped certificate validation via the
    /// chain cache.
    pub fn chain_cache_hits(&self) -> u64 {
        self.chain_cache_hits
    }

    /// Begins an attestation: generates a nonce and an ephemeral DH key.
    /// Challenges accumulate — beginning a new one does not invalidate those
    /// already outstanding.
    pub fn begin(&mut self) -> Challenge {
        let nonce: [u8; 32] = self.drbg.random_array();
        let dh_secret = x25519::clamp_scalar(self.drbg.random_array());
        let challenge = Challenge {
            nonce,
            verifier_dh_public: x25519::public_key(&dh_secret),
        };
        self.outstanding.insert(nonce, dh_secret);
        challenge
    }

    /// Issues `count` challenges at once (one per client of a batch).
    pub fn begin_many(&mut self, count: usize) -> Vec<Challenge> {
        (0..count).map(|_| self.begin()).collect()
    }

    fn chain_fingerprint(evidence: &AttestationEvidence) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(256);
        for cert in [&evidence.device_certificate, &evidence.sm_certificate] {
            bytes.extend_from_slice(&cert.subject_public_key.to_bytes());
            bytes.extend_from_slice(&(cert.subject_info.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&cert.subject_info);
            bytes.extend_from_slice(&cert.issuer_public_key.to_bytes());
            bytes.extend_from_slice(&cert.signature.to_bytes());
        }
        Sha3_256::digest(&bytes)
    }

    /// Validates the evidence's certificate chain, via the cache when the
    /// exact (device certificate, SM certificate) pair has been seen before,
    /// and returns the SM attestation key the chain vouches for.
    fn validate_chain(
        &mut self,
        evidence: &AttestationEvidence,
    ) -> Result<PublicKey, VerifyError> {
        if evidence.device_certificate.issuer_public_key != self.manufacturer_root {
            return Err(VerifyError::UntrustedRoot);
        }
        let fingerprint = Self::chain_fingerprint(evidence);
        if let Some(key) = self.chain_cache.get(&fingerprint) {
            self.chain_cache_hits += 1;
            return Ok(*key);
        }
        let chain_ok = evidence.device_certificate.verify()
            && evidence.sm_certificate.verify()
            && evidence.sm_certificate.issuer_public_key
                == evidence.device_certificate.subject_public_key;
        if !chain_ok {
            return Err(VerifyError::BadSignature);
        }
        let key = evidence.sm_certificate.subject_public_key;
        self.chain_cache.insert(fingerprint, key);
        Ok(key)
    }

    /// Verifies attestation evidence and, on success, derives the secure
    /// session bound to the attested enclave (Fig. 7 steps ⑧–⑩).
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] describing the first check that failed; the
    /// matching outstanding challenge is consumed either way (nonces are
    /// single-use).
    pub fn verify(
        &mut self,
        evidence: &AttestationEvidence,
        enclave_dh_public: &[u8; 32],
    ) -> Result<SecureSession, VerifyError> {
        if self.outstanding.is_empty() {
            return Err(VerifyError::NoChallenge);
        }
        // The attacker-supplied nonce is matched against every outstanding
        // challenge in constant time per comparison (no early-exit prefix
        // matching), preserving the hardening the single-challenge verifier
        // had.
        let nonce = evidence.report.nonce;
        let matched = self
            .outstanding
            .keys()
            .fold(None, |found, candidate| {
                if ct_eq(candidate, &nonce) {
                    Some(*candidate)
                } else {
                    found
                }
            })
            .ok_or(VerifyError::StaleNonce)?;
        let dh_secret = self.outstanding.remove(&matched).expect("matched key exists");

        let sm_key = self.validate_chain(evidence)?;
        if !sm_key.verify(&evidence.report.to_signed_bytes(), &evidence.signature) {
            return Err(VerifyError::BadSignature);
        }
        let expected_binding = Sha3_256::digest(enclave_dh_public);
        if !ct_eq(&evidence.report.report_data, &expected_binding) {
            return Err(VerifyError::ChannelBindingMismatch);
        }
        if !self
            .trusted_measurements
            .iter()
            .any(|m| m.ct_eq(&evidence.report.enclave_measurement))
        {
            return Err(VerifyError::UnexpectedMeasurement);
        }

        let shared = x25519::shared_secret(&dh_secret, enclave_dh_public);
        Ok(SecureSession::new(&shared, &nonce))
    }

    /// Verifies a batch of evidence, one result per item, sharing the chain
    /// cache across the whole batch — on one platform only the first item
    /// pays the certificate verifications.
    pub fn verify_batch(
        &mut self,
        items: &[(AttestationEvidence, [u8; 32])],
    ) -> Vec<Result<SecureSession, VerifyError>> {
        items
            .iter()
            .map(|(evidence, dh_public)| self.verify(evidence, dh_public))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_core::attestation::{AttestationReport, Certificate};
    use sanctorum_crypto::ed25519::Keypair;

    struct Fixture {
        verifier: RemoteVerifier,
        sm_key: Keypair,
        device_cert: Certificate,
        sm_cert: Certificate,
        enclave_measurement: Measurement,
    }

    fn fixture() -> Fixture {
        let manufacturer = Keypair::from_seed([1; 32]);
        let device = Keypair::from_seed([2; 32]);
        let sm_key = Keypair::from_seed([3; 32]);
        let device_cert = Certificate::issue(&manufacturer, *device.public(), b"device".to_vec());
        let sm_cert = Certificate::issue(&device, *sm_key.public(), b"sm".to_vec());
        let enclave_measurement = Measurement([0x44; 32]);
        let verifier = RemoteVerifier::new(
            *manufacturer.public(),
            vec![enclave_measurement],
            [9; 32],
        );
        Fixture {
            verifier,
            sm_key,
            device_cert,
            sm_cert,
            enclave_measurement,
        }
    }

    fn make_evidence(
        f: &Fixture,
        nonce: [u8; 32],
        enclave_dh_public: &[u8; 32],
        measurement: Measurement,
    ) -> AttestationEvidence {
        let report = AttestationReport {
            enclave_measurement: measurement,
            nonce,
            report_data: Sha3_256::digest(enclave_dh_public),
        };
        let signature = f.sm_key.sign(&report.to_signed_bytes());
        AttestationEvidence {
            report,
            signature,
            sm_certificate: f.sm_cert.clone(),
            device_certificate: f.device_cert.clone(),
        }
    }

    #[test]
    fn end_to_end_verification_and_session() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_secret = x25519::clamp_scalar([7; 32]);
        let enclave_public = x25519::public_key(&enclave_secret);
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        let mut session = f.verifier.verify(&evidence, &enclave_public).expect("verifies");

        // The enclave derives the same session from its side.
        let shared = x25519::shared_secret(&enclave_secret, &challenge.verifier_dh_public);
        let mut enclave_session = SecureSession::new(&shared, &challenge.nonce);
        let sealed = session.seal(b"query for the enclave");
        assert_eq!(
            enclave_session.open(&sealed).expect("opens"),
            b"query for the enclave"
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let mut f = fixture();
        let _ = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, [0xab; 32], &enclave_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::StaleNonce
        );
    }

    #[test]
    fn unexpected_measurement_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, Measurement([0; 32]));
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::UnexpectedMeasurement
        );
    }

    #[test]
    fn channel_binding_mismatch_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let other_public = x25519::public_key(&x25519::clamp_scalar([8; 32]));
        // Evidence binds a *different* key than the one presented.
        let evidence = make_evidence(&f, challenge.nonce, &other_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::ChannelBindingMismatch
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let mut evidence =
            make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        // Re-issue the device certificate under a different (untrusted) CA.
        let rogue_ca = Keypair::from_seed([66; 32]);
        evidence.device_certificate = Certificate::issue(
            &rogue_ca,
            evidence.device_certificate.subject_public_key,
            b"device".to_vec(),
        );
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::UntrustedRoot
        );
    }

    #[test]
    fn replayed_evidence_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());
        // The challenge has been consumed; replaying the same evidence fails.
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::NoChallenge
        );
    }
}
