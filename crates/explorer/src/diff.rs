//! Differential execution: the same trace, step for step, against the
//! Sanctum and the Keystone backend.
//!
//! Both worlds boot from the same machine configuration (same device id, so
//! identical keys and identical region geometry) and receive every op through
//! the object-safe `SmApi` surface. After each step the two
//! [`OpOutcome`](sanctorum_os::ops::OpOutcome) summaries — status codes,
//! platform-invariant details, measurements, identity/attack verdicts — must
//! be equal. The single sanctioned exception is a *declared capacity*
//! divergence: the failing side returned a capacity-class status
//! (`PLATFORM` / `NO_RESOURCES`) **and** its backend declared the tighter
//! [`PlatformCapacity`](sanctorum_hal::isolation::PlatformCapacity). After
//! such a divergence the two worlds' populations legitimately differ, so
//! lockstep comparison stops for the rest of the run (the invariant kernel
//! keeps checking both worlds independently).
//!
//! Measurement determinism is also enforced here, in both directions: within
//! a run (same recipe ⇒ same measurement, on each world separately) and
//! across backends (the recipe → measurement map is shared).

use crate::invariants::{CheckedWorld, Violation};
use sanctorum_core::api::status;
use sanctorum_core::measurement::Measurement;
use sanctorum_core::monitor::TestWeakening;
use sanctorum_hal::domain::CoreId;
use sanctorum_machine::MachineConfig;
use sanctorum_os::ops::{ImageKind, Op, OpOutcome};
use sanctorum_os::system::PlatformKind;
use std::collections::BTreeMap;

/// A Sanctum world and a Keystone world driven in lockstep.
#[derive(Debug)]
pub struct DiffPair {
    /// The Sanctum-backed world.
    pub sanctum: CheckedWorld,
    /// The Keystone-backed world.
    pub keystone: CheckedWorld,
    /// Shared recipe → measurement map (measurement determinism).
    measurements: BTreeMap<(ImageKind, u64), Measurement>,
    /// Declared-capacity divergences observed so far.
    pub declared_divergences: usize,
    /// Set once a declared divergence desynchronizes the two populations.
    desynced: bool,
}

impl DiffPair {
    /// Boots both worlds from the same machine configuration, optionally
    /// weakening both monitors (the explorer's self-check).
    pub fn boot(config: &MachineConfig, weaken: Option<TestWeakening>) -> Self {
        Self {
            sanctum: CheckedWorld::boot(PlatformKind::Sanctum, config.clone(), weaken),
            keystone: CheckedWorld::boot(PlatformKind::Keystone, config.clone(), weaken),
            measurements: BTreeMap::new(),
            declared_divergences: 0,
            desynced: false,
        }
    }

    /// Applies one op to both worlds, checks both invariant kernels, records
    /// measurements, and compares the OS-visible outcomes.
    ///
    /// # Errors
    ///
    /// Returns the first invariant violation or undeclared divergence.
    pub fn step(&mut self, hart: CoreId, op: &Op) -> Result<(), Violation> {
        let sanctum_outcome = self.sanctum.step(hart, op)?;
        let keystone_outcome = self.keystone.step(hart, op)?;

        // Measurement determinism: the recipe → measurement map is shared
        // across worlds and across the whole run, so it catches divergence in
        // either dimension even after a capacity desync.
        if let Op::Build { kind, param } = op {
            let recipe = kind.recipe(*param);
            for outcome in [&sanctum_outcome, &keystone_outcome] {
                if let Some(measurement) = outcome.measurement {
                    match self.measurements.get(&recipe) {
                        None => {
                            self.measurements.insert(recipe, measurement);
                        }
                        Some(expected) if *expected == measurement => {}
                        Some(_) => {
                            return Err(Violation::MeasurementMismatch {
                                detail: format!("recipe {recipe:?} measured two ways"),
                            });
                        }
                    }
                }
            }
        }

        if self.desynced {
            return Ok(());
        }
        if sanctum_outcome == keystone_outcome {
            return Ok(());
        }
        if self.is_declared_capacity_divergence(op, &sanctum_outcome, &keystone_outcome) {
            self.declared_divergences += 1;
            self.desynced = true;
            return Ok(());
        }
        Err(Violation::Divergence {
            sanctum: format!("{sanctum_outcome:?}"),
            keystone: format!("{keystone_outcome:?}"),
        })
    }

    /// Returns `true` once a declared divergence has stopped lockstep
    /// comparison for this run.
    pub const fn desynced(&self) -> bool {
        self.desynced
    }

    fn is_declared_capacity_divergence(
        &self,
        op: &Op,
        sanctum_outcome: &OpOutcome,
        keystone_outcome: &OpOutcome,
    ) -> bool {
        // Only ops that can *allocate* isolation units may legitimately hit
        // a declared capacity limit: enclave builds, grants toward enclaves,
        // and attacks that build their own enclaves. A capacity-class status
        // anywhere else (a clean, a flush, a mail call) is a genuine
        // divergence and must not be excused just because the failing
        // backend is capacity-limited in general.
        if !matches!(
            op,
            Op::Build { .. }
                | Op::GrantRegion { .. }
                | Op::Attack { .. }
                // The first AttestService op builds the signing enclave.
                | Op::AttestService { .. }
        ) {
            return false;
        }
        let capacity_status =
            |o: &OpOutcome| matches!(o.status, status::PLATFORM | status::NO_RESOURCES);
        let sanctum_capacity = self.sanctum.world.system.monitor.platform_capacity();
        let keystone_capacity = self.keystone.world.system.monitor.platform_capacity();
        (capacity_status(keystone_outcome)
            && !capacity_status(sanctum_outcome)
            && keystone_capacity.tighter_than(&sanctum_capacity))
            || (capacity_status(sanctum_outcome)
                && !capacity_status(keystone_outcome)
                && sanctum_capacity.tighter_than(&keystone_capacity))
    }
}
