//! Explorer statistics and throughput benchmark — the coverage and
//! `steps/sec` numbers EXPERIMENTS.md records for the adversarial explorer
//! (seeds × steps × both backends, op mix, violations, declared divergences,
//! wall-clock), optionally emitted as `BENCH_explorer.json` and gated
//! against a committed baseline.
//!
//! Usage:
//!
//! ```text
//! explorer_stats [SEEDS] [--steps N] [--out PATH] [--baseline PATH]
//! ```
//!
//! * `SEEDS` — number of seeds to sweep (default 100).
//! * `--steps N` — ops per seed (default 200).
//! * `--out PATH` — write the machine-readable result JSON to `PATH` (see
//!   EXPERIMENTS.md, "Perf trajectory", for the schema).
//! * `--baseline PATH` — read a previously committed result JSON and exit
//!   non-zero if throughput regressed more than 2× against its
//!   `steps_per_second` (the CI bench-smoke gate). The comparison is
//!   normalized by each run's `calibration_hashes_per_second` — a fixed
//!   pure-CPU workload measured in-process — so a baseline recorded on a
//!   fast workstation does not fail an honest run on a slower CI runner.
//!
//! Run with: `cargo run --release -p sanctorum-bench --bin explorer_stats`

use sanctorum_bench::{calibrate, extract_number};
use sanctorum_explorer::{Explorer, ExplorerConfig};
use std::time::Instant;

/// Throughput regression tolerance for the `--baseline` gate: fail only when
/// the current run is more than this factor slower than the baseline (CI
/// machines are noisy; a 2× cliff is a real regression, not jitter).
const MAX_REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut seeds: u64 = 100;
    let mut steps: usize = 200;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--steps" => steps = args.next().and_then(|v| v.parse().ok()).expect("--steps N"),
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => seeds = other.parse().expect("SEEDS must be a number"),
        }
    }

    let config = ExplorerConfig {
        steps,
        ..ExplorerConfig::default()
    };
    let harts = config.harts;
    let explorer = Explorer::new(config);

    let calibration = calibrate();
    let start = Instant::now();
    let stats = explorer.sweep(0..seeds);
    let elapsed = start.elapsed();
    let steps_per_second = stats.total_steps as f64 / elapsed.as_secs_f64();

    println!("# explorer sweep");
    println!("seeds:                 {}", stats.seeds);
    println!("steps per seed:        {steps}");
    println!("backends per step:     2 (sanctum + keystone, lockstep)");
    println!("total ops applied:     {} per backend", stats.total_steps);
    println!("declared divergences:  {}", stats.declared_divergences);
    println!("violations:            {}", stats.failures.len());
    println!("wall clock:            {:.2?}", elapsed);
    println!("steps/sec per backend: {steps_per_second:.0}");
    println!("calibration:           {calibration:.0} hashes/sec");
    println!("\n## op mix");
    for (label, count) in &stats.op_counts {
        println!("{label:>16}: {count}");
    }
    for failure in &stats.failures {
        println!("\n{failure}");
    }

    if let Some(path) = &out {
        let json = render_json(
            seeds,
            steps,
            harts,
            stats.total_steps,
            elapsed.as_secs_f64(),
            steps_per_second,
            calibration,
            stats.failures.len(),
            stats.declared_divergences,
        );
        std::fs::write(path, json).expect("write result JSON");
        println!("\nwrote {path}");
    }

    if !stats.failures.is_empty() {
        std::process::exit(1);
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).expect("read baseline JSON");
        let reference = extract_number(&text, "steps_per_second")
            .expect("baseline JSON has a steps_per_second field");
        // Normalize both sides by their machine's calibration so the gate
        // measures the code, not the runner. Older baselines without the
        // field fall back to an absolute comparison.
        let reference_calibration =
            extract_number(&text, "calibration_hashes_per_second").unwrap_or(calibration);
        let normalized_current = steps_per_second / calibration;
        let normalized_reference = reference / reference_calibration;
        println!(
            "baseline {path}: {reference:.0} steps/sec at {reference_calibration:.0} hashes/sec \
             (normalized gate: {normalized_current:.2e} vs floor {:.2e})",
            normalized_reference / MAX_REGRESSION_FACTOR
        );
        if normalized_current * MAX_REGRESSION_FACTOR < normalized_reference {
            eprintln!(
                "FAIL: throughput regressed more than {MAX_REGRESSION_FACTOR}x \
                 (machine-normalized {normalized_current:.2e} vs baseline {normalized_reference:.2e})"
            );
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    seeds: u64,
    steps: usize,
    harts: u32,
    total_steps: usize,
    wall_clock_seconds: f64,
    steps_per_second: f64,
    calibration: f64,
    violations: usize,
    declared_divergences: usize,
) -> String {
    // The baseline block records the pre-optimization measurement (PR 2
    // seed: O(world) audit clones + full rescans per step) on the same
    // 100×200 configuration, so the perf trajectory survives in-repo.
    format!(
        r#"{{
  "bench": "explorer_throughput",
  "config": {{
    "seeds": {seeds},
    "steps_per_seed": {steps},
    "harts": {harts},
    "backends_per_step": 2
  }},
  "total_steps_per_backend": {total_steps},
  "wall_clock_seconds": {wall_clock_seconds:.3},
  "steps_per_second": {steps_per_second:.1},
  "calibration_hashes_per_second": {calibration:.1},
  "violations": {violations},
  "declared_divergences": {declared_divergences},
  "baseline_before_indexing": {{
    "description": "PR 2 seed: per-step O(world) audit rebuild, uncached secure boot, full-DRAM digest",
    "config": {{ "seeds": 100, "steps_per_seed": 200 }},
    "wall_clock_seconds": 10.29,
    "steps_per_second": 1944.0
  }}
}}
"#
    )
}

