//! Event dispatch: the paper's Fig. 1 decision flow, plus the batch executor.
//!
//! Every machine event — interrupt, fault or SM API environment call — lands
//! in the monitor first. For environment calls the monitor *authenticates*
//! the caller by minting a [`CallerSession`] from the hart state it
//! configured itself ([`SecurityMonitor::authenticate`]), decodes the
//! argument registers through the call registry ([`SmCall::decode`]), and
//! performs the call through the registry's single dispatch table
//! ([`crate::api`]). There are no per-call decode or dispatch arms here: this
//! module only sequences authenticate → decode → perform → write-back, and
//! the registry owns everything call-specific.
//!
//! # Batched calls
//!
//! [`SmCall::Batch`] executes a table of packed calls in one trap. The wire
//! layout is 64 bytes per entry in caller-owned memory:
//!
//! ```text
//! word 0..=5   a0–a5 of the packed call (same encoding as a single ecall)
//! word 6       written back: status code (see crate::api::status)
//! word 7       written back: call return value (0 on failure)
//! ```
//!
//! Entries run in order with exactly the semantics of issuing them serially.
//! An entry that fails to decode gets [`status::ILLEGAL_CALL`] and the batch
//! continues; a context-switching call (`EnterEnclave` / `ExitEnclave`) or a
//! nested `Batch` gets [`status::INVALID_ARGUMENT`] and cleanly aborts the
//! batch — the monitor never switches the hart's context from inside a
//! batch, so the caller always gets its `(status, value)` write-backs. The
//! batch call itself returns the number of entries that received a status.

use crate::api::{perform, status, status_of, CallOutcome, SmCall, MAX_BATCH_CALLS};
use crate::error::{SmError, SmResult};
use crate::monitor::SecurityMonitor;
use crate::session::CallerSession;
use sanctorum_hal::addr::{PhysAddr, Span};
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_machine::guest::{REG_A0, REG_A1};
use sanctorum_machine::trap::TrapCause;
use sanctorum_trust::{Checked, RwAccess, SpanPolicy, Tainted, TrustError};

/// Size of one packed batch entry in bytes (6 argument words plus the
/// written-back status and value words).
pub const BATCH_ENTRY_BYTES: u64 = 64;

/// The monitor's decision about an event (the exit arcs of Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventOutcome {
    /// The event belongs to the OS. If it arrived while an enclave occupied
    /// the core, an AEX was performed first and `aex_performed` is set.
    DelegateToOs {
        /// The original trap cause to forward to the OS handler.
        cause: TrapCause,
        /// Whether an asynchronous enclave exit was performed.
        aex_performed: bool,
    },
    /// A synchronous fault is delegated to the enclave's registered fault
    /// handler; the hart stays inside the enclave with `pc = handler_pc`.
    DelegateToEnclave {
        /// The handler entry point installed on the hart.
        handler_pc: u64,
    },
    /// An SM API call was processed; the status/value registers have been
    /// written back into the hart (unless the call switched context).
    SmCallDone {
        /// Status code (see [`crate::api::status`]).
        status: u64,
        /// Call-specific return value.
        value: u64,
    },
    /// The event was an environment call that did not decode to a registered
    /// SM call; it is reported to the caller as [`status::ILLEGAL_CALL`].
    IllegalCall,
}

/// Result of one batch entry: continue or cleanly abort.
enum BatchStep {
    Continue(CallOutcome),
    Abort(CallOutcome),
}

impl SecurityMonitor {
    /// Mints an authenticated [`CallerSession`] for the software currently
    /// occupying `core`.
    ///
    /// This is the paper's caller-authentication step: the hart's domain tag
    /// was installed by the monitor itself on every context switch, so it
    /// cannot be forged by the caller. All register-ABI traffic flows through
    /// sessions minted here; direct Rust callers use the harness
    /// constructors on [`CallerSession`] instead.
    pub fn authenticate(&self, core: CoreId) -> CallerSession {
        let domain = self.machine().hart(core).domain;
        CallerSession::authenticated(domain, core)
    }

    /// Handles a machine event on `core` (Fig. 1).
    ///
    /// The hart's `pending_trap` should already describe the event (the
    /// simulator sets it when `run_guest` stops); `cause` is passed
    /// explicitly so the harness can also inject events.
    pub fn handle_event(&self, core: CoreId, cause: TrapCause) -> EventOutcome {
        let session = self.authenticate(core);
        match cause {
            TrapCause::EnvironmentCall => self.handle_ecall(session),
            TrapCause::Interrupt(_) => {
                // The OS is always able to de-schedule an enclave by
                // interrupting it; the SM interposes to clean the core first.
                if session.domain().is_enclave() {
                    let _ = self.asynchronous_enclave_exit(core);
                    EventOutcome::DelegateToOs { cause, aex_performed: true }
                } else {
                    EventOutcome::DelegateToOs { cause, aex_performed: false }
                }
            }
            TrapCause::PageFault { .. }
            | TrapCause::IllegalInstruction
            | TrapCause::IsolationFault { .. } => {
                if let DomainKind::Enclave(_) = session.domain() {
                    // Enclaves may register fault handlers for synchronous
                    // exceptions (demand paging inside evrange, emulation).
                    if cause.enclave_handleable() {
                        if let Some(tid) = self.thread_on_core(core) {
                            if let Ok(Some(handler)) = self.thread_fault_handler(tid) {
                                let mut hart = self.machine().hart(core);
                                hart.pc = handler;
                                hart.pending_trap = None;
                                return EventOutcome::DelegateToEnclave {
                                    handler_pc: handler,
                                };
                            }
                        }
                    }
                    // No handler: the enclave cannot make progress; perform
                    // an AEX and let the OS decide what to do with it.
                    let _ = self.asynchronous_enclave_exit(core);
                    EventOutcome::DelegateToOs { cause, aex_performed: true }
                } else {
                    EventOutcome::DelegateToOs { cause, aex_performed: false }
                }
            }
        }
    }

    fn read_args(&self, core: CoreId) -> [u64; 6] {
        let hart = self.machine().hart(core);
        [
            hart.regs[10], hart.regs[11], hart.regs[12], hart.regs[13], hart.regs[14],
            hart.regs[15],
        ]
    }

    fn write_result(&self, core: CoreId, status_code: u64, value: u64) {
        let mut hart = self.machine().hart(core);
        hart.regs[REG_A0 as usize] = status_code;
        hart.regs[REG_A1 as usize] = value;
        hart.pending_trap = None;
    }

    fn handle_ecall(&self, session: CallerSession) -> EventOutcome {
        let core = session.core();
        let args = self.read_args(core);
        let call = match SmCall::decode(&args) {
            Ok(call) => call,
            Err(_) => {
                self.write_result(core, status::ILLEGAL_CALL, 0);
                return EventOutcome::IllegalCall;
            }
        };

        // Context-switching calls manage the hart themselves; everything else
        // writes (status, value) back to the caller's registers.
        let context_switches = call.context_switches();
        match perform(self, session, call) {
            Ok(value) => {
                if !context_switches {
                    self.write_result(core, status::OK, value);
                }
                EventOutcome::SmCallDone { status: status::OK, value }
            }
            Err(err) => {
                let code = status_of(&err);
                self.write_result(core, code, 0);
                EventOutcome::SmCallDone { status: code, value: 0 }
            }
        }
    }

    /// Executes one batch entry, already decoded (or not).
    fn batch_step(
        &self,
        session: CallerSession,
        decoded: Result<SmCall, crate::api::DecodeError>,
    ) -> BatchStep {
        let call = match decoded {
            Ok(call) => call,
            Err(_) => {
                return BatchStep::Continue(CallOutcome { status: status::ILLEGAL_CALL, value: 0 })
            }
        };
        if call.context_switches() || matches!(call, SmCall::Batch { .. }) {
            // Refuse context switches (and recursion) inside a batch: the
            // batch loop must retain the hart to write the remaining
            // statuses, so the entry is rejected and the batch aborts.
            return BatchStep::Abort(CallOutcome { status: status::INVALID_ARGUMENT, value: 0 });
        }
        match perform(self, session, call) {
            Ok(value) => BatchStep::Continue(CallOutcome { status: status::OK, value }),
            Err(err) => BatchStep::Continue(CallOutcome { status: status_of(&err), value: 0 }),
        }
    }

    /// Validates a batch's length bounds (shared by packed and typed
    /// batches; a packed batch additionally proves its table through the
    /// sanitizer in [`run_packed_batch`](Self::run_packed_batch)).
    fn check_batch_count(count: u64) -> SmResult<()> {
        if count == 0 {
            return Err(SmError::InvalidArgument { reason: "empty batch" });
        }
        if count > MAX_BATCH_CALLS {
            return Err(SmError::InvalidArgument { reason: "batch exceeds MAX_BATCH_CALLS" });
        }
        Ok(())
    }

    /// Maps a refused batch-table proof onto the ABI's historical errors:
    /// alignment → `InvalidArgument`, DRAM containment → `Memory` (the
    /// straddling-table shape contract: rejection before any entry runs),
    /// access → `Unauthorized`.
    fn batch_table_error(err: TrustError) -> SmError {
        match err {
            TrustError::Unaligned { .. } => {
                SmError::InvalidArgument { reason: "batch table must be 8-byte aligned" }
            }
            TrustError::OutOfDram => SmError::Memory,
            TrustError::Empty => SmError::InvalidArgument { reason: "empty batch" },
            TrustError::Denied | TrustError::TooLong { .. } => SmError::Unauthorized,
        }
    }

    /// Executes a packed call table (the register-level `SmCall::Batch`
    /// handler). Returns the number of entries that were executed.
    ///
    /// A batched call can revoke the caller's access to the table itself
    /// (blocking or granting away the region that holds it), so the table is
    /// re-validated around every entry: the SM must never read arguments
    /// from, or write status words into, memory the caller no longer owns —
    /// that would dirty a scrubbed or foreign region with caller-influenced
    /// data. When access disappears mid-batch the batch aborts; the entry
    /// that revoked it still executed, but no later write-back happens.
    ///
    /// # Errors
    ///
    /// Fails without touching any entry if the batch shape is invalid or the
    /// caller cannot read/write the whole table; per-entry failures are
    /// written into the table instead.
    pub(crate) fn run_packed_batch(
        &self,
        session: CallerSession,
        table: Tainted<PhysAddr>,
        count: u64,
    ) -> SmResult<u64> {
        Self::check_batch_count(count)?;
        // The whole-table proof: 8-byte alignment, full containment in
        // populated DRAM (the access table is default-allow outside the
        // protected ranges, so without the containment leg a table
        // straddling the end of memory would pass the access walk and abort
        // mid-batch with entries already executed — the shape contract
        // promises rejection before any entry runs), and caller read/write
        // access to every argument word and status write-back.
        let mut token: Option<Checked<Span, RwAccess>> = Some(
            self.sanitizer()
                .check_span::<RwAccess>(
                    session.domain(),
                    table.spanning(count * BATCH_ENTRY_BYTES),
                    SpanPolicy::table(8),
                )
                .map_err(Self::batch_table_error)?,
        );
        // The proof above covers the whole table, so entries only need
        // re-proving once some executed call could have changed the
        // isolation configuration (the registry flags those calls). The
        // revalidation protocol is encoded in the token: it is *moved away*
        // (Checked is not Clone) at the first isolation-mutating entry, and
        // from then on every entry must mint a fresh proof for its own
        // 64-byte window — or the batch stops touching the table.
        let entry_window = |idx: u64| {
            self.sanitizer()
                .check_span::<RwAccess>(
                    session.domain(),
                    table.offset(idx * BATCH_ENTRY_BYTES).spanning(BATCH_ENTRY_BYTES),
                    SpanPolicy::PLAIN,
                )
                .ok()
        };
        let mut executed = 0u64;
        for idx in 0..count {
            let offset = idx * BATCH_ENTRY_BYTES;
            // One bulk read for the six argument words and one bulk write for
            // the (status, value) pair keep the per-entry memory-system cost
            // at two accesses — this is where batching wins over per-call
            // traps.
            let mut arg_bytes = [0u8; 48];
            {
                let fresh;
                let (window, window_offset) = match token.as_ref() {
                    Some(whole_table) => (whole_table, offset),
                    None => match entry_window(idx) {
                        Some(proof) => {
                            fresh = proof;
                            (&fresh, 0)
                        }
                        None => break,
                    },
                };
                self.machine().read_span(window, window_offset, &mut arg_bytes)?;
            }
            let mut regs = [0u64; 6];
            for (word, reg) in regs.iter_mut().enumerate() {
                let mut le = [0u8; 8];
                le.copy_from_slice(&arg_bytes[word * 8..word * 8 + 8]);
                *reg = u64::from_le_bytes(le);
            }
            let decoded = SmCall::decode(&regs);
            let mutates_isolation =
                decoded.as_ref().map(|c| c.mutates_isolation()).unwrap_or(false);
            let step = self.batch_step(session, decoded);
            let (outcome, abort) = match step {
                BatchStep::Continue(o) => (o, false),
                BatchStep::Abort(o) => (o, true),
            };
            executed += 1;
            if mutates_isolation {
                // The entry may have revoked the caller's access to the
                // table itself (blocking or granting away the region that
                // holds it); the whole-table proof is dead from here on.
                token = None;
            }
            let mut result_bytes = [0u8; 16];
            result_bytes[..8].copy_from_slice(&outcome.status.to_le_bytes());
            result_bytes[8..].copy_from_slice(&outcome.value.to_le_bytes());
            {
                let fresh;
                let (window, window_offset) = match token.as_ref() {
                    Some(whole_table) => (whole_table, offset + 48),
                    None => match entry_window(idx) {
                        Some(proof) => {
                            fresh = proof;
                            (&fresh, 48)
                        }
                        // The entry's own call revoked the caller's table
                        // access; do not write into what is now foreign (or
                        // scrubbed) memory.
                        None => break,
                    },
                };
                self.machine().write_span(window, window_offset, &result_bytes)?;
            }
            if abort {
                break;
            }
        }
        self.stats()
            .batched_calls
            .fetch_add(executed, std::sync::atomic::Ordering::Relaxed);
        Ok(executed)
    }

    /// Typed batch execution shared with [`crate::api::SmApi::batch`]: same
    /// semantics as
    /// [`run_packed_batch`](Self::run_packed_batch) minus the memory table.
    pub(crate) fn run_typed_batch(
        &self,
        session: CallerSession,
        calls: &[SmCall],
    ) -> SmResult<Vec<CallOutcome>> {
        Self::check_batch_count(calls.len() as u64)?;
        let mut outcomes = Vec::with_capacity(calls.len());
        for call in calls {
            match self.batch_step(session, Ok(call.clone())) {
                BatchStep::Continue(o) => outcomes.push(o),
                BatchStep::Abort(o) => {
                    outcomes.push(o);
                    break;
                }
            }
        }
        Ok(outcomes)
    }

    /// Helper for callers driving the register ABI: writes an [`SmCall`] into
    /// the argument registers of `core` so the next `Ecall` guest op invokes
    /// it.
    pub fn stage_call(&self, core: CoreId, call: &SmCall) {
        let encoded = call.encode();
        let mut hart = self.machine().hart(core);
        for (i, value) in encoded.iter().enumerate() {
            hart.regs[10 + i] = *value;
        }
    }

    /// Helper for callers driving the batched register ABI: packs `calls`
    /// into a table at `table` (which must be caller-accessible memory) and
    /// stages the corresponding [`SmCall::Batch`] in the argument registers
    /// of `core`.
    ///
    /// # Errors
    ///
    /// Fails if the table lies outside populated memory.
    pub fn stage_batch(
        &self,
        core: CoreId,
        table: PhysAddr,
        calls: &[SmCall],
    ) -> Result<(), SmError> {
        let mut packed = vec![0u8; calls.len() * BATCH_ENTRY_BYTES as usize];
        for (idx, call) in calls.iter().enumerate() {
            let entry = &mut packed[idx * BATCH_ENTRY_BYTES as usize..][..BATCH_ENTRY_BYTES as usize];
            for (word, value) in call.encode().iter().enumerate() {
                entry[word * 8..word * 8 + 8].copy_from_slice(&value.to_le_bytes());
            }
            // Pre-fill the status word with the NOT_RUN sentinel so entries
            // the batch never reached are distinguishable from successes.
            entry[48..56].copy_from_slice(&status::NOT_RUN.to_le_bytes());
        }
        self.machine().phys_write(table, &packed)?;
        self.stage_call(
            core,
            &SmCall::Batch { table: Tainted::new(table), count: calls.len() as u64 },
        );
        Ok(())
    }

    /// Helper reading back the (status, value) pair after an API ecall.
    pub fn read_call_result(&self, core: CoreId) -> (u64, u64) {
        let hart = self.machine().hart(core);
        (hart.regs[REG_A0 as usize], hart.regs[REG_A1 as usize])
    }

    /// Helper reading back one batch entry's `(status, value)` pair from a
    /// staged table.
    ///
    /// # Errors
    ///
    /// Fails if the table lies outside populated memory.
    pub fn read_batch_result(&self, table: PhysAddr, idx: u64) -> Result<(u64, u64), SmError> {
        let entry = table.offset(idx * BATCH_ENTRY_BYTES);
        let status = self.machine().phys_read_u64(entry.offset(48))?;
        let value = self.machine().phys_read_u64(entry.offset(56))?;
        Ok((status, value))
    }

    /// Convenience: copies `data` into untrusted physical memory at `addr`
    /// (test/bench helper for staging mail buffers through the ABI).
    ///
    /// # Errors
    ///
    /// Fails if the destination is outside populated memory.
    pub fn stage_untrusted_buffer(&self, addr: PhysAddr, data: &[u8]) -> Result<(), SmError> {
        self.machine().phys_write(addr, data)?;
        Ok(())
    }
}
