//! The only door from [`Tainted`] to [`Checked`].
//!
//! Every constructor of `Checked` in the workspace lives in this module —
//! the struct's fields are private to the crate, and `cargo xtask lint`
//! additionally rejects any `Checked {` struct expression outside this file.
//!
//! The sanitizer mirrors the monitor's historical validation order exactly,
//! because several pinned test suites (and the explorer's state digests)
//! depend on which error a malformed request produces *first*:
//!
//! * [`Sanitizer::check_span`] with [`SpanPolicy::PLAIN`] proves caller
//!   access only (probing one address per touched page, under a single
//!   access-matrix lock). DRAM containment is *not* part of the proof;
//!   sinks still report containment failures as memory errors afterwards.
//! * [`Sanitizer::check_span`] with [`SpanPolicy::table`] additionally
//!   requires alignment and full DRAM containment *before* the access walk —
//!   the batch-table shape contract introduced when the straddling bug was
//!   fixed (containment failures there precede access failures).
//! * [`Sanitizer::check_empty`] handles the vacuous operations the ABI
//!   permits (empty mail, zero-length output buffers): a zero-length span
//!   carries no access requirement, but its base address must still sit
//!   within DRAM bounds, exactly like the zero-length `phys_read` /
//!   `phys_write` it replaces.

use crate::{
    AccessOracle, CanRead, Checked, PageAligned, Proof, ReadAccess, Tainted, TrustError,
};
use sanctorum_hal::addr::{PhysAddr, Span};
use sanctorum_hal::domain::DomainKind;

/// Validation policy for [`Sanitizer::check_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanPolicy {
    /// Required alignment of the span base, in bytes (1 = none).
    pub align: u64,
    /// Whether the whole span must sit in populated DRAM *before* the
    /// access walk (the batch-table shape contract).
    pub require_dram: bool,
}

impl SpanPolicy {
    /// Access proof only: no alignment, no up-front containment.
    pub const PLAIN: SpanPolicy = SpanPolicy {
        align: 1,
        require_dram: false,
    };

    /// Table policy: `align`-byte base alignment, then DRAM containment,
    /// then the access walk — in that order.
    pub const fn table(align: u64) -> SpanPolicy {
        SpanPolicy {
            align,
            require_dram: true,
        }
    }
}

/// Validates tainted values against an [`AccessOracle`] and mints proofs.
#[derive(Clone, Copy)]
pub struct Sanitizer<'o> {
    oracle: &'o dyn AccessOracle,
}

impl<'o> Sanitizer<'o> {
    /// Creates a sanitizer backed by `oracle`.
    pub fn new(oracle: &'o dyn AccessOracle) -> Self {
        Sanitizer { oracle }
    }

    /// Proves that `domain` may access the non-empty tainted span with the
    /// permission named by `P`, applying `policy` first.
    ///
    /// Check order: empty → alignment → DRAM containment (if required by
    /// the policy) → access walk. Zero-length spans are always refused here;
    /// route deliberate vacuous operations through [`Self::check_empty`].
    ///
    /// # Errors
    ///
    /// [`TrustError::Empty`], [`TrustError::Unaligned`],
    /// [`TrustError::OutOfDram`], or [`TrustError::Denied`], per the order
    /// above.
    pub fn check_span<P: Proof>(
        &self,
        domain: DomainKind,
        span: Tainted<Span>,
        policy: SpanPolicy,
    ) -> Result<Checked<Span, P>, TrustError> {
        let span = span.0;
        if span.is_empty() {
            return Err(TrustError::Empty);
        }
        if policy.align > 1 && !span.base().as_u64().is_multiple_of(policy.align) {
            return Err(TrustError::Unaligned {
                required: policy.align,
            });
        }
        if policy.require_dram && !self.oracle.dram_contains(span) {
            return Err(TrustError::OutOfDram);
        }
        if !self.oracle.allows_span(domain, span, P::perms()) {
            return Err(TrustError::Denied);
        }
        Ok(Checked {
            value: span,
            proof: P::witness(),
        })
    }

    /// Proves a deliberate zero-length span: no access is required, but the
    /// base address must still sit within DRAM bounds (the containment check
    /// a zero-length `phys_read`/`phys_write` historically performed).
    ///
    /// # Errors
    ///
    /// [`TrustError::OutOfDram`] if the base address lies outside DRAM.
    pub fn check_empty<P: Proof>(
        &self,
        base: Tainted<PhysAddr>,
    ) -> Result<Checked<Span, P>, TrustError> {
        let span = Span::new(base.0, 0);
        if !self.oracle.dram_contains(span) {
            return Err(TrustError::OutOfDram);
        }
        Ok(Checked {
            value: span,
            proof: P::witness(),
        })
    }

    /// Proves page alignment of a tainted address — nothing more. The
    /// result still cannot reach a sink; `load_page` upgrades it later via
    /// [`Self::check_page`], preserving the historical alignment-first
    /// error order.
    ///
    /// # Errors
    ///
    /// [`TrustError::Unaligned`] if the address is not page aligned.
    pub fn check_page_aligned(&self, addr: Tainted<PhysAddr>) -> Result<PageAligned, TrustError> {
        if !addr.0.is_page_aligned() {
            return Err(TrustError::Unaligned {
                required: sanctorum_hal::addr::PAGE_SIZE as u64,
            });
        }
        Ok(PageAligned(addr.0))
    }

    /// Upgrades a page-aligned address into a full page proof: `domain`
    /// may access the page with the permission named by `P`.
    ///
    /// # Errors
    ///
    /// [`TrustError::Denied`] if the domain lacks access to the page.
    pub fn check_page<P: Proof>(
        &self,
        domain: DomainKind,
        page: PageAligned,
    ) -> Result<Checked<PhysAddr, P>, TrustError> {
        let span = Span::new(page.0, sanctorum_hal::addr::PAGE_SIZE as u64);
        if !self.oracle.allows_span(domain, span, P::perms()) {
            return Err(TrustError::Denied);
        }
        Ok(Checked {
            value: page.0,
            proof: P::witness(),
        })
    }

    /// Proves a byte buffer already resident in monitor memory: only its
    /// length needs checking. Needs no oracle, so sinks' unit tests can mint
    /// messages directly; readability of the *source* buffer is the
    /// caller-boundary sanitizer's job, discharged before the copy-in.
    ///
    /// # Errors
    ///
    /// [`TrustError::TooLong`] if the buffer exceeds `max` bytes.
    pub fn check_message(
        message: Tainted<&[u8]>,
        max: usize,
    ) -> Result<Checked<&[u8], ReadAccess>, TrustError> {
        if message.0.len() > max {
            return Err(TrustError::TooLong { max });
        }
        Ok(Checked {
            value: message.0,
            proof: ReadAccess(()),
        })
    }

    /// Reads validated bytes out of a checked readable slice — trivial, but
    /// kept here so every taint-to-value transition lives in one module.
    pub fn reveal<'a, P: CanRead>(checked: &Checked<&'a [u8], P>) -> &'a [u8] {
        checked.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RwAccess, WriteAccess};
    use proptest::prelude::*;
    use sanctorum_hal::perm::MemPerms;

    /// A mock DRAM window `[base, base+size)` where `Untrusted` may access
    /// everything inside an `allowed` sub-window and enclaves may access
    /// nothing.
    struct MockOracle {
        dram_base: u64,
        dram_size: u64,
        allowed_base: u64,
        allowed_size: u64,
    }

    impl AccessOracle for MockOracle {
        fn allows_span(&self, domain: DomainKind, span: Span, _perms: MemPerms) -> bool {
            if span.is_empty() {
                return true;
            }
            if !matches!(domain, DomainKind::Untrusted | DomainKind::SecurityMonitor) {
                return false;
            }
            let start = span.base().as_u64();
            let end = start + span.len();
            start >= self.allowed_base && end <= self.allowed_base + self.allowed_size
        }

        fn dram_contains(&self, span: Span) -> bool {
            let start = span.base().as_u64();
            start
                .checked_sub(self.dram_base)
                .map(|off| off + span.len() <= self.dram_size)
                .unwrap_or(false)
        }
    }

    fn oracle() -> MockOracle {
        MockOracle {
            dram_base: 0x8000_0000,
            dram_size: 0x10_0000,
            allowed_base: 0x8000_0000,
            allowed_size: 0x8_0000,
        }
    }

    fn span(base: u64, len: u64) -> Tainted<Span> {
        Tainted::new(PhysAddr::new(base)).spanning(len)
    }

    #[test]
    fn empty_spans_are_refused_by_check_span() {
        let o = oracle();
        let s = Sanitizer::new(&o);
        let err = s
            .check_span::<RwAccess>(DomainKind::Untrusted, span(0x8000_0000, 0), SpanPolicy::PLAIN)
            .unwrap_err();
        assert_eq!(err, TrustError::Empty);
    }

    #[test]
    fn table_policy_checks_align_then_containment_then_access() {
        let o = oracle();
        let s = Sanitizer::new(&o);
        // Unaligned base: alignment error even though it is also out of the
        // allowed window.
        assert_eq!(
            s.check_span::<RwAccess>(
                DomainKind::Untrusted,
                span(0x8009_0004, 64),
                SpanPolicy::table(8)
            )
            .unwrap_err(),
            TrustError::Unaligned { required: 8 }
        );
        // Aligned but straddling the end of DRAM: containment beats access.
        assert_eq!(
            s.check_span::<RwAccess>(
                DomainKind::Untrusted,
                span(0x800f_fff8, 64),
                SpanPolicy::table(8)
            )
            .unwrap_err(),
            TrustError::OutOfDram
        );
        // Aligned, contained, but outside the allowed window.
        assert_eq!(
            s.check_span::<RwAccess>(
                DomainKind::Untrusted,
                span(0x8009_0000, 64),
                SpanPolicy::table(8)
            )
            .unwrap_err(),
            TrustError::Denied
        );
        // All good.
        assert!(s
            .check_span::<RwAccess>(
                DomainKind::Untrusted,
                span(0x8000_1000, 64),
                SpanPolicy::table(8)
            )
            .is_ok());
    }

    #[test]
    fn plain_policy_skips_containment() {
        let o = MockOracle {
            allowed_size: 0x20_0000, // allowed window larger than DRAM
            ..oracle()
        };
        let s = Sanitizer::new(&o);
        // Straddles DRAM but the access matrix allows it: PLAIN mints the
        // proof; containment is the sink's problem (historical ordering).
        assert!(s
            .check_span::<WriteAccess>(
                DomainKind::Untrusted,
                span(0x800f_fff8, 64),
                SpanPolicy::PLAIN
            )
            .is_ok());
    }

    #[test]
    fn check_empty_requires_only_containment() {
        let o = oracle();
        let s = Sanitizer::new(&o);
        // End-of-DRAM base is contained for a zero-length span.
        assert!(s
            .check_empty::<WriteAccess>(Tainted::new(PhysAddr::new(0x8010_0000)))
            .is_ok());
        assert_eq!(
            s.check_empty::<WriteAccess>(Tainted::new(PhysAddr::new(0x8010_0001)))
                .unwrap_err(),
            TrustError::OutOfDram
        );
    }

    #[test]
    fn page_proof_is_staged() {
        let o = oracle();
        let s = Sanitizer::new(&o);
        assert_eq!(
            s.check_page_aligned(Tainted::new(PhysAddr::new(0x8000_1010)))
                .unwrap_err(),
            TrustError::Unaligned { required: 4096 }
        );
        let aligned = s
            .check_page_aligned(Tainted::new(PhysAddr::new(0x8000_1000)))
            .unwrap();
        assert!(s
            .check_page::<ReadAccess>(DomainKind::Untrusted, aligned)
            .is_ok());
        let denied = s
            .check_page_aligned(Tainted::new(PhysAddr::new(0x8009_0000)))
            .unwrap();
        assert_eq!(
            s.check_page::<ReadAccess>(DomainKind::Untrusted, denied)
                .unwrap_err(),
            TrustError::Denied
        );
    }

    #[test]
    fn messages_check_length_only() {
        let ok = Sanitizer::check_message(b"hello".into(), 8).unwrap();
        assert_eq!(Sanitizer::reveal(&ok), b"hello");
        assert_eq!(
            Sanitizer::check_message(b"hello".into(), 4).unwrap_err(),
            TrustError::TooLong { max: 4 }
        );
    }

    proptest! {
        /// Zero-length spans never mint a proof through check_span,
        /// whatever the policy.
        #[test]
        fn prop_rejects_zero_length(base in 0u64..0x2_0000_0000, table in 0u64..2) {
            let o = oracle();
            let s = Sanitizer::new(&o);
            let policy = if table == 1 { SpanPolicy::table(8) } else { SpanPolicy::PLAIN };
            let got = s.check_span::<RwAccess>(DomainKind::Untrusted, span(base, 0), policy);
            prop_assert_eq!(got.unwrap_err(), TrustError::Empty);
        }

        /// Unaligned table bases never mint a proof.
        #[test]
        fn prop_rejects_unaligned_tables(base in 0x8000_0000u64..0x8008_0000, misalign in 1u64..8, len in 1u64..4096) {
            let o = oracle();
            let s = Sanitizer::new(&o);
            let got = s.check_span::<RwAccess>(
                DomainKind::Untrusted,
                span(base / 8 * 8 + misalign, len),
                SpanPolicy::table(8),
            );
            prop_assert_eq!(got.unwrap_err(), TrustError::Unaligned { required: 8 });
        }

        /// Spans straddling the end of DRAM never mint a table proof — the
        /// regression lock for the batch-table straddling bug. Containment
        /// is checked before access, so the error is always `OutOfDram`.
        #[test]
        fn prop_rejects_dram_straddle(back in 0u64..4096, overhang in 1u64..4096) {
            let o = oracle();
            let s = Sanitizer::new(&o);
            let end = o.dram_base + o.dram_size;
            let base = (end - back) / 8 * 8; // aligned, at or before the DRAM end
            let len = (end - base) + overhang; // always extends past the end
            let got = s.check_span::<RwAccess>(
                DomainKind::Untrusted,
                span(base, len),
                SpanPolicy::table(8),
            );
            prop_assert_eq!(got.unwrap_err(), TrustError::OutOfDram);
        }

        /// Enclave domains never mint proofs from this oracle (foreign
        /// domain ≠ allowed), regardless of geometry.
        #[test]
        fn prop_rejects_foreign_domains(base in 0x8000_0000u64..0x8007_0000, len in 1u64..4096, eid in 0u64..64) {
            let o = oracle();
            let s = Sanitizer::new(&o);
            let domain = DomainKind::Enclave(sanctorum_hal::domain::EnclaveId::new(eid));
            let got = s.check_span::<ReadAccess>(domain, span(base / 8 * 8, len), SpanPolicy::PLAIN);
            prop_assert_eq!(got.unwrap_err(), TrustError::Denied);
        }

        /// Whenever a proof IS minted under the table policy, the span was
        /// aligned, fully inside DRAM, and inside the allowed window.
        #[test]
        fn prop_minted_proofs_are_sound(base in 0x8000_0000u64..0x8010_1000, len in 1u64..0x2_0000) {
            let o = oracle();
            let s = Sanitizer::new(&o);
            if let Ok(ok) = s.check_span::<RwAccess>(
                DomainKind::Untrusted,
                span(base, len),
                SpanPolicy::table(8),
            ) {
                let got = ok.get();
                prop_assert_eq!(got.base().as_u64() % 8, 0);
                prop_assert!(o.dram_contains(got));
                prop_assert!(o.allows_span(DomainKind::Untrusted, got, MemPerms::RW));
            }
        }
    }
}
