//! The crash-point sweep acceptance suite.
//!
//! * **Exhaustive sweep** — over the depth-6 lifecycle trace set, every
//!   fault point crossed is crashed at least once (plus one persistent-
//!   fault run per site), and recovery restores every invariant: zero
//!   violations across both platforms.
//! * **Weakening catch** — the same sweep, pointed at a monitor with
//!   `skip-journal-replay` or `skip-quarantine` compiled in, must walk into
//!   a violation with a minimal, replayable counterexample. This is what
//!   makes the zero above evidence rather than absence of evidence.
//! * **Recovery idempotence** — `recover()` on a clean world is a no-op,
//!   and a second `recover()` after a crash is a no-op, both certified by
//!   bit-identical machine state digests and audit digests.

use sanctorum_explorer::crash::{
    crash_machine_config, lifecycle_traces, sweep_all, sweep_trace, CrashSweepReport,
};
use sanctorum_explorer::trace::{format_trace, parse_trace};
use sanctorum_core::monitor::TestWeakening;
use sanctorum_hal::domain::CoreId;
use sanctorum_machine::fault::ALL_SITES;
use sanctorum_os::ops::{ImageKind, Op, OpWorld};
use sanctorum_os::system::PlatformKind;

#[test]
fn lifecycle_sweep_crashes_every_fault_point_and_recovers_clean() {
    let report = sweep_all(&crash_machine_config(), None, &lifecycle_traces());
    for site in ALL_SITES {
        assert!(
            report.site_inventory.contains_key(site),
            "lifecycle traces never cross {site}; inventory: {:?}",
            report.site_inventory
        );
    }
    assert!(
        !report.site_inventory.keys().any(|s| !ALL_SITES.contains(s)),
        "undeclared fault site crossed: {:?}",
        report.site_inventory
    );
    assert_eq!(
        report.crash_sweeps, report.crossings,
        "every crossing gets exactly one crash re-run"
    );
    assert!(report.fault_runs > 0);
    assert!(
        report.clean(),
        "{} violations survived recovery; first: {}",
        report.violations.len(),
        report.violations[0]
    );
}

#[test]
fn skip_journal_replay_is_caught_with_a_minimal_replayable_counterexample() {
    let mut report = CrashSweepReport::default();
    for trace in lifecycle_traces() {
        sweep_trace(
            PlatformKind::Sanctum,
            &crash_machine_config(),
            Some(TestWeakening::SkipJournalReplay),
            &trace,
            true,
            &mut report,
        );
        if !report.clean() {
            break;
        }
    }
    let witness = report
        .violations
        .first()
        .expect("a journal-replay hole must not survive the crash sweep");
    assert_eq!(witness.violation.kind(), "crash-residue", "{witness}");
    assert!(
        witness.trace.iter().any(|t| matches!(t.op, Op::Crashed { .. })),
        "the witness embeds the crash: {witness}"
    );
    // Replayable: the counterexample round-trips through the corpus format.
    let text = format_trace(&witness.trace);
    assert_eq!(parse_trace(&text).expect("witness parses"), witness.trace);
}

#[test]
fn skip_quarantine_is_caught_by_the_persistent_fault_pass() {
    let mut report = CrashSweepReport::default();
    for trace in lifecycle_traces() {
        sweep_trace(
            PlatformKind::Sanctum,
            &crash_machine_config(),
            Some(TestWeakening::SkipQuarantine),
            &trace,
            true,
            &mut report,
        );
        if !report.clean() {
            break;
        }
    }
    let witness = report
        .violations
        .first()
        .expect("a quarantine hole must not survive the fault pass");
    // Swallowing a failed scrub hands a dirty region to the next owner:
    // caught as dirty reuse (or the secret scan, whichever fires first).
    assert!(
        ["dirty-reuse", "secret-in-memory"].contains(&witness.violation.kind()),
        "caught as {}: {witness}",
        witness.violation.kind()
    );
    assert_eq!(witness.fault_site, Some("monitor.scrub-page"), "{witness}");
}

#[test]
fn recovery_is_idempotent_and_a_noop_on_clean_worlds() {
    for platform in PlatformKind::ALL {
        // On a freshly booted (clean) world, recover() replays nothing and
        // perturbs nothing.
        let world = OpWorld::boot(platform, crash_machine_config());
        let digest = world.system.machine.state_digest();
        let audit = world.system.monitor.audit_full().digest();
        let report = world.system.monitor.recover();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.quarantine_cleared, 0);
        assert_eq!(world.system.machine.state_digest(), digest);
        assert_eq!(world.system.monitor.audit_full().digest(), audit);

        // After a real crash+recover (the Crashed op recovers internally),
        // a second recover() is a no-op with bit-identical state.
        let mut world = OpWorld::boot(platform, crash_machine_config());
        world.apply(CoreId::new(0), &Op::Build { kind: ImageKind::Hello, param: 0 });
        world.apply(
            CoreId::new(0),
            &Op::Crashed { point: 2, op: Box::new(Op::DeleteEnclave { slot: 0 }) },
        );
        let digest = world.system.machine.state_digest();
        let audit = world.system.monitor.audit_full().digest();
        let second = world.system.monitor.recover();
        assert_eq!(second.replayed, 0, "first recovery completed the journal");
        assert_eq!(world.system.machine.state_digest(), digest);
        assert_eq!(world.system.monitor.audit_full().digest(), audit);
    }
}
