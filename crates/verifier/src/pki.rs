//! The manufacturer certificate authority.

use sanctorum_core::attestation::Certificate;
use sanctorum_core::boot::derive_device_keypair;
use sanctorum_crypto::ed25519::{Keypair, PublicKey};
use sanctorum_hal::root::RootOfTrust;

/// The manufacturer's offline CA.
///
/// At manufacture time the CA provisions each device with a unique secret and
/// records it; later it can issue a certificate for the device public key
/// without the device being online, because the key derivation is
/// deterministic from that secret (same derivation the boot ROM uses).
#[derive(Debug, Clone)]
pub struct ManufacturerCa {
    seed: [u8; 32],
    keypair: Keypair,
}

impl ManufacturerCa {
    /// Creates a CA from a root seed.
    pub fn new(seed: [u8; 32]) -> Self {
        Self {
            seed,
            keypair: Keypair::from_seed(seed),
        }
    }

    /// The manufacturer root public key that verifiers pin.
    pub fn root_public_key(&self) -> PublicKey {
        *self.keypair.public()
    }

    /// Derives the next CA generation for an epoch-based root rotation.
    ///
    /// The successor's seed is a one-way function of this CA's seed, so the
    /// whole rotation schedule is deterministic from the first generation —
    /// a verifier mid-rotation accepts both `root_public_key()`s until the
    /// old one is retired.
    pub fn successor(&self) -> ManufacturerCa {
        let mut material = Vec::with_capacity(64);
        material.extend_from_slice(b"sanctorum-ca-rotation-v1");
        material.extend_from_slice(&self.seed);
        ManufacturerCa::new(sanctorum_crypto::sha3::Sha3_256::digest(&material))
    }

    /// Issues the device certificate for a provisioned device.
    pub fn certify_device(&self, root: &dyn RootOfTrust) -> Certificate {
        let device_keypair = derive_device_keypair(root);
        Certificate::issue(
            &self.keypair,
            *device_keypair.public(),
            format!("sanctorum device {:#x}", root.device_id()).into_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::root::SimulatedRootOfTrust;

    #[test]
    fn device_certificate_verifies_and_names_the_device() {
        let ca = ManufacturerCa::new([1; 32]);
        let root = SimulatedRootOfTrust::new(0xbeef);
        let cert = ca.certify_device(&root);
        assert!(cert.verify());
        assert_eq!(cert.issuer_public_key, ca.root_public_key());
        assert!(String::from_utf8_lossy(&cert.subject_info).contains("0xbeef"));
    }

    #[test]
    fn device_cert_matches_boot_derived_key() {
        let ca = ManufacturerCa::new([2; 32]);
        let root = SimulatedRootOfTrust::new(7);
        let cert = ca.certify_device(&root);
        let identity = sanctorum_core::boot::secure_boot(&root, b"sm");
        assert_eq!(cert.subject_public_key, identity.device_public_key);
    }

    #[test]
    fn rotation_successors_are_deterministic_and_distinct() {
        let gen0 = ManufacturerCa::new([5; 32]);
        let gen1 = gen0.successor();
        assert_eq!(
            gen1.root_public_key(),
            ManufacturerCa::new([5; 32]).successor().root_public_key()
        );
        assert_ne!(gen0.root_public_key(), gen1.root_public_key());
        assert_ne!(gen1.root_public_key(), gen1.successor().root_public_key());
        // A successor CA certifies devices like any other generation.
        let root = SimulatedRootOfTrust::new(0xf1ee7_u64);
        let cert = gen1.certify_device(&root);
        assert!(cert.verify());
        assert_eq!(cert.issuer_public_key, gen1.root_public_key());
    }

    #[test]
    fn different_cas_produce_different_roots() {
        assert_ne!(
            ManufacturerCa::new([1; 32]).root_public_key(),
            ManufacturerCa::new([2; 32]).root_public_key()
        );
    }
}
