//! The remote verifier: nonce issuance, key agreement and evidence checking.

use crate::session::SecureSession;
use sanctorum_core::attestation::AttestationEvidence;
use sanctorum_core::measurement::Measurement;
use sanctorum_crypto::ct::ct_eq;
use sanctorum_crypto::drbg::ChaChaDrbg;
use sanctorum_crypto::ed25519::PublicKey;
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_crypto::x25519;
use std::fmt;

/// The challenge the verifier sends to the (untrusted) platform: a fresh
/// nonce and the verifier's ephemeral DH public value (Fig. 7 steps ①–②).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Anti-replay nonce to be signed by the signing enclave.
    pub nonce: [u8; 32],
    /// The verifier's X25519 public value.
    pub verifier_dh_public: [u8; 32],
}

/// Why evidence verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// A certificate or the report signature did not verify.
    BadSignature,
    /// The certificate chain does not root in the pinned manufacturer key.
    UntrustedRoot,
    /// The nonce in the report does not match the outstanding challenge.
    StaleNonce,
    /// The report data does not bind the enclave's DH public value.
    ChannelBindingMismatch,
    /// The enclave measurement is not one the verifier trusts.
    UnexpectedMeasurement,
    /// No challenge is outstanding.
    NoChallenge,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            VerifyError::BadSignature => "signature or certificate verification failed",
            VerifyError::UntrustedRoot => "certificate chain does not root in the manufacturer",
            VerifyError::StaleNonce => "nonce mismatch (replayed or stale evidence)",
            VerifyError::ChannelBindingMismatch => "report data does not bind the enclave key",
            VerifyError::UnexpectedMeasurement => "enclave measurement is not trusted",
            VerifyError::NoChallenge => "no outstanding challenge",
        };
        write!(f, "{text}")
    }
}

impl std::error::Error for VerifyError {}

/// The remote verifier (the paper's trusted first party).
pub struct RemoteVerifier {
    manufacturer_root: PublicKey,
    trusted_measurements: Vec<Measurement>,
    drbg: ChaChaDrbg,
    outstanding: Option<([u8; 32], [u8; 32])>, // (nonce, dh secret)
}

impl fmt::Debug for RemoteVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RemoteVerifier {{ trusted_measurements: {} }}",
            self.trusted_measurements.len()
        )
    }
}

impl RemoteVerifier {
    /// Creates a verifier pinning `manufacturer_root` and trusting enclaves
    /// whose measurement appears in `trusted_measurements`.
    pub fn new(
        manufacturer_root: PublicKey,
        trusted_measurements: Vec<Measurement>,
        rng_seed: [u8; 32],
    ) -> Self {
        Self {
            manufacturer_root,
            trusted_measurements,
            drbg: ChaChaDrbg::from_seed(rng_seed),
            outstanding: None,
        }
    }

    /// Adds a measurement to the trusted set.
    pub fn trust_measurement(&mut self, measurement: Measurement) {
        self.trusted_measurements.push(measurement);
    }

    /// Begins an attestation: generates a nonce and an ephemeral DH key.
    pub fn begin(&mut self) -> Challenge {
        let nonce: [u8; 32] = self.drbg.random_array();
        let dh_secret = x25519::clamp_scalar(self.drbg.random_array());
        let challenge = Challenge {
            nonce,
            verifier_dh_public: x25519::public_key(&dh_secret),
        };
        self.outstanding = Some((nonce, dh_secret));
        challenge
    }

    /// Verifies attestation evidence and, on success, derives the secure
    /// session bound to the attested enclave (Fig. 7 steps ⑧–⑩).
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] describing the first check that failed; the
    /// outstanding challenge is consumed either way (nonces are single-use).
    pub fn verify(
        &mut self,
        evidence: &AttestationEvidence,
        enclave_dh_public: &[u8; 32],
    ) -> Result<SecureSession, VerifyError> {
        let (nonce, dh_secret) = self.outstanding.take().ok_or(VerifyError::NoChallenge)?;

        if evidence.device_certificate.issuer_public_key != self.manufacturer_root {
            return Err(VerifyError::UntrustedRoot);
        }
        if !evidence.verify_signatures() {
            return Err(VerifyError::BadSignature);
        }
        if !ct_eq(&evidence.report.nonce, &nonce) {
            return Err(VerifyError::StaleNonce);
        }
        let expected_binding = Sha3_256::digest(enclave_dh_public);
        if !ct_eq(&evidence.report.report_data, &expected_binding) {
            return Err(VerifyError::ChannelBindingMismatch);
        }
        if !self
            .trusted_measurements
            .iter()
            .any(|m| m.ct_eq(&evidence.report.enclave_measurement))
        {
            return Err(VerifyError::UnexpectedMeasurement);
        }

        let shared = x25519::shared_secret(&dh_secret, enclave_dh_public);
        Ok(SecureSession::new(&shared, &nonce))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_core::attestation::{AttestationReport, Certificate};
    use sanctorum_crypto::ed25519::Keypair;

    struct Fixture {
        verifier: RemoteVerifier,
        sm_key: Keypair,
        device_cert: Certificate,
        sm_cert: Certificate,
        enclave_measurement: Measurement,
    }

    fn fixture() -> Fixture {
        let manufacturer = Keypair::from_seed([1; 32]);
        let device = Keypair::from_seed([2; 32]);
        let sm_key = Keypair::from_seed([3; 32]);
        let device_cert = Certificate::issue(&manufacturer, *device.public(), b"device".to_vec());
        let sm_cert = Certificate::issue(&device, *sm_key.public(), b"sm".to_vec());
        let enclave_measurement = Measurement([0x44; 32]);
        let verifier = RemoteVerifier::new(
            *manufacturer.public(),
            vec![enclave_measurement],
            [9; 32],
        );
        Fixture {
            verifier,
            sm_key,
            device_cert,
            sm_cert,
            enclave_measurement,
        }
    }

    fn make_evidence(
        f: &Fixture,
        nonce: [u8; 32],
        enclave_dh_public: &[u8; 32],
        measurement: Measurement,
    ) -> AttestationEvidence {
        let report = AttestationReport {
            enclave_measurement: measurement,
            nonce,
            report_data: Sha3_256::digest(enclave_dh_public),
        };
        let signature = f.sm_key.sign(&report.to_signed_bytes());
        AttestationEvidence {
            report,
            signature,
            sm_certificate: f.sm_cert.clone(),
            device_certificate: f.device_cert.clone(),
        }
    }

    #[test]
    fn end_to_end_verification_and_session() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_secret = x25519::clamp_scalar([7; 32]);
        let enclave_public = x25519::public_key(&enclave_secret);
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        let mut session = f.verifier.verify(&evidence, &enclave_public).expect("verifies");

        // The enclave derives the same session from its side.
        let shared = x25519::shared_secret(&enclave_secret, &challenge.verifier_dh_public);
        let mut enclave_session = SecureSession::new(&shared, &challenge.nonce);
        let sealed = session.seal(b"query for the enclave");
        assert_eq!(
            enclave_session.open(&sealed).expect("opens"),
            b"query for the enclave"
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let mut f = fixture();
        let _ = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, [0xab; 32], &enclave_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::StaleNonce
        );
    }

    #[test]
    fn unexpected_measurement_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, Measurement([0; 32]));
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::UnexpectedMeasurement
        );
    }

    #[test]
    fn channel_binding_mismatch_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let other_public = x25519::public_key(&x25519::clamp_scalar([8; 32]));
        // Evidence binds a *different* key than the one presented.
        let evidence = make_evidence(&f, challenge.nonce, &other_public, f.enclave_measurement);
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::ChannelBindingMismatch
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let mut evidence =
            make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        // Re-issue the device certificate under a different (untrusted) CA.
        let rogue_ca = Keypair::from_seed([66; 32]);
        evidence.device_certificate = Certificate::issue(
            &rogue_ca,
            evidence.device_certificate.subject_public_key,
            b"device".to_vec(),
        );
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::UntrustedRoot
        );
    }

    #[test]
    fn replayed_evidence_rejected() {
        let mut f = fixture();
        let challenge = f.verifier.begin();
        let enclave_public = x25519::public_key(&x25519::clamp_scalar([7; 32]));
        let evidence = make_evidence(&f, challenge.nonce, &enclave_public, f.enclave_measurement);
        assert!(f.verifier.verify(&evidence, &enclave_public).is_ok());
        // The challenge has been consumed; replaying the same evidence fails.
        assert_eq!(
            f.verifier.verify(&evidence, &enclave_public).unwrap_err(),
            VerifyError::NoChallenge
        );
    }
}
