//! SHA-3 and SHAKE (FIPS 202) built on the Keccak-f\[1600\] permutation.
//!
//! The security monitor measures enclaves with SHA-3 (paper Section VI-A);
//! the same primitive backs HMAC, HKDF and the Ed25519-SHA3 signature scheme
//! in this workspace.

/// Number of rounds of Keccak-f[1600].
const KECCAK_ROUNDS: usize = 24;

/// Round constants for the iota step.
const ROUND_CONSTANTS: [u64; KECCAK_ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for the rho step, indexed `[y][x]` flattened as `x + 5*y`.
const RHO_OFFSETS: [u32; 25] = [
    0, 1, 62, 28, 27, //
    36, 44, 6, 55, 20, //
    3, 10, 43, 25, 39, //
    41, 45, 15, 21, 8, //
    18, 2, 61, 56, 14,
];

/// Applies the Keccak-f\[1600\] permutation to `state` in place.
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in ROUND_CONSTANTS.iter() {
        // Theta.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] ^= d[x];
            }
        }

        // Rho and pi.
        let mut b = [0u64; 25];
        for y in 0..5 {
            for x in 0..5 {
                let rotated = state[x + 5 * y].rotate_left(RHO_OFFSETS[x + 5 * y]);
                // pi: B[y, 2x+3y] = rot(A[x, y])
                b[y + 5 * ((2 * x + 3 * y) % 5)] = rotated;
            }
        }

        // Chi.
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }

        // Iota.
        state[0] ^= rc;
    }
}

/// A Keccak sponge with a configurable rate and domain-separation suffix.
#[derive(Debug, Clone)]
struct KeccakSponge {
    state: [u64; 25],
    /// Rate in bytes.
    rate: usize,
    /// Number of bytes absorbed into the current block.
    offset: usize,
    /// Domain separation / padding suffix byte (0x06 for SHA-3, 0x1f for SHAKE).
    suffix: u8,
}

impl KeccakSponge {
    fn new(rate: usize, suffix: u8) -> Self {
        Self {
            state: [0u64; 25],
            rate,
            offset: 0,
            suffix,
        }
    }

    fn absorb(&mut self, data: &[u8]) {
        for &byte in data {
            let lane = self.offset / 8;
            let shift = (self.offset % 8) * 8;
            self.state[lane] ^= (byte as u64) << shift;
            self.offset += 1;
            if self.offset == self.rate {
                keccak_f1600(&mut self.state);
                self.offset = 0;
            }
        }
    }

    fn finalize_into(mut self, out: &mut [u8]) {
        // Padding: suffix bit pattern, then pad10*1 to the end of the rate.
        let lane = self.offset / 8;
        let shift = (self.offset % 8) * 8;
        self.state[lane] ^= (self.suffix as u64) << shift;
        let last_lane = (self.rate - 1) / 8;
        let last_shift = ((self.rate - 1) % 8) * 8;
        self.state[last_lane] ^= 0x80u64 << last_shift;
        keccak_f1600(&mut self.state);

        // Squeeze.
        let mut produced = 0;
        let mut block_offset = 0;
        while produced < out.len() {
            if block_offset == self.rate {
                keccak_f1600(&mut self.state);
                block_offset = 0;
            }
            let lane = block_offset / 8;
            let shift = (block_offset % 8) * 8;
            out[produced] = ((self.state[lane] >> shift) & 0xff) as u8;
            produced += 1;
            block_offset += 1;
        }
    }
}

macro_rules! sha3_impl {
    ($(#[$doc:meta])* $name:ident, $digest_len:expr, $rate:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            sponge: KeccakSponge,
        }

        impl $name {
            /// Digest length in bytes.
            pub const DIGEST_LEN: usize = $digest_len;
            /// Sponge rate (block size for HMAC purposes) in bytes.
            pub const RATE: usize = $rate;

            /// Creates a new incremental hasher.
            pub fn new() -> Self {
                Self { sponge: KeccakSponge::new($rate, 0x06) }
            }

            /// Absorbs `data` into the hash state.
            pub fn update(&mut self, data: &[u8]) {
                self.sponge.absorb(data);
            }

            /// Finalizes the hash and returns the digest.
            pub fn finalize(self) -> [u8; $digest_len] {
                let mut out = [0u8; $digest_len];
                self.sponge.finalize_into(&mut out);
                out
            }

            /// One-shot digest of `data`.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use sanctorum_crypto::sha3::", stringify!($name), ";")]
            #[doc = concat!("let d = ", stringify!($name), "::digest(b\"x\");")]
            #[doc = concat!("assert_eq!(d.len(), ", stringify!($digest_len), ");")]
            /// ```
            pub fn digest(data: &[u8]) -> [u8; $digest_len] {
                let mut h = Self::new();
                h.update(data);
                h.finalize()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

sha3_impl!(
    /// SHA3-256 (FIPS 202).
    Sha3_256,
    32,
    136
);
sha3_impl!(
    /// SHA3-384 (FIPS 202).
    Sha3_384,
    48,
    104
);
sha3_impl!(
    /// SHA3-512 (FIPS 202).
    Sha3_512,
    64,
    72
);

/// SHAKE256 extendable-output function (FIPS 202).
#[derive(Debug, Clone)]
pub struct Shake256 {
    sponge: KeccakSponge,
}

impl Shake256 {
    /// Sponge rate in bytes.
    pub const RATE: usize = 136;

    /// Creates a new SHAKE256 instance.
    pub fn new() -> Self {
        Self {
            sponge: KeccakSponge::new(Self::RATE, 0x1f),
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.sponge.absorb(data);
    }

    /// Finalizes and squeezes `out.len()` bytes of output.
    pub fn finalize_into(self, out: &mut [u8]) {
        self.sponge.finalize_into(out);
    }

    /// One-shot XOF: hashes `data` and returns `N` output bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use sanctorum_crypto::sha3::Shake256;
    /// let out: [u8; 64] = Shake256::xof(b"seed material");
    /// assert_ne!(out[..32], out[32..]);
    /// ```
    pub fn xof<const N: usize>(data: &[u8]) -> [u8; N] {
        let mut x = Self::new();
        x.update(data);
        let mut out = [0u8; N];
        x.finalize_into(&mut out);
        out
    }
}

impl Default for Shake256 {
    fn default() -> Self {
        Self::new()
    }
}

/// SHAKE128 extendable-output function (FIPS 202).
#[derive(Debug, Clone)]
pub struct Shake128 {
    sponge: KeccakSponge,
}

impl Shake128 {
    /// Sponge rate in bytes.
    pub const RATE: usize = 168;

    /// Creates a new SHAKE128 instance.
    pub fn new() -> Self {
        Self {
            sponge: KeccakSponge::new(Self::RATE, 0x1f),
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.sponge.absorb(data);
    }

    /// Finalizes and squeezes `out.len()` bytes of output.
    pub fn finalize_into(self, out: &mut [u8]) {
        self.sponge.finalize_into(out);
    }
}

impl Default for Shake128 {
    fn default() -> Self {
        Self::new()
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Formats a digest as lowercase hex (handy for logs, tests and the bench
/// harness tables).
pub fn to_hex(bytes: &[u8]) -> String {
    hex(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 202 / NIST CAVP known-answer vectors.
    #[test]
    fn sha3_256_empty() {
        assert_eq!(
            to_hex(&Sha3_256::digest(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn sha3_256_abc() {
        assert_eq!(
            to_hex(&Sha3_256::digest(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn sha3_512_empty() {
        assert_eq!(
            to_hex(&Sha3_512::digest(b"")),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
             15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
        );
    }

    #[test]
    fn sha3_512_abc() {
        assert_eq!(
            to_hex(&Sha3_512::digest(b"abc")),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
             10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
        );
    }

    #[test]
    fn sha3_384_abc() {
        assert_eq!(
            to_hex(&Sha3_384::digest(b"abc")),
            "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b2\
             98d88cea927ac7f539f1edf228376d25"
        );
    }

    #[test]
    fn shake256_empty_32() {
        let out: [u8; 32] = Shake256::xof(b"");
        assert_eq!(
            to_hex(&out),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha3_256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha3_256::digest(data));
    }

    #[test]
    fn multi_block_input() {
        // Exercise inputs spanning multiple sponge blocks (rate = 136 bytes).
        let data = vec![0xa5u8; 1000];
        let d1 = Sha3_256::digest(&data);
        let mut h = Sha3_256::new();
        h.update(&data[..500]);
        h.update(&data[500..]);
        assert_eq!(h.finalize(), d1);
    }

    #[test]
    fn rate_boundary_inputs() {
        // Hash inputs of exactly rate-1, rate, rate+1 bytes; these exercise
        // the padding corner cases.
        for len in [135usize, 136, 137, 271, 272, 273] {
            let data = vec![0x3cu8; len];
            let mut h = Sha3_256::new();
            h.update(&data);
            assert_eq!(h.finalize(), Sha3_256::digest(&data), "len {len}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Sha3_256::digest(b"a"), Sha3_256::digest(b"b"));
        assert_ne!(Sha3_512::digest(b"a"), Sha3_512::digest(b"b"));
    }

    #[test]
    fn shake_output_lengths_are_prefix_consistent() {
        let a: [u8; 32] = Shake256::xof(b"seed");
        let b: [u8; 64] = Shake256::xof(b"seed");
        assert_eq!(a[..], b[..32]);
    }

    #[test]
    fn keccak_permutation_changes_state() {
        let mut s = [0u64; 25];
        keccak_f1600(&mut s);
        // Known first lane of Keccak-f[1600] applied to the all-zero state.
        assert_eq!(s[0], 0xf1258f7940e1dde7);
        assert_eq!(s[1], 0x84d5ccf933c0478a);
    }
}
