//! Quickstart: boot a simulated Sanctum machine, load an enclave through the
//! security monitor, run it, and tear it down.
//!
//! Run with: `cargo run -p sanctorum-bench --example quickstart`

use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::domain::CoreId;
use sanctorum_os::os::{Os, ThreadRunOutcome};
use sanctorum_os::system::{PlatformKind, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot the machine, run secure boot and start the monitor.
    let system = System::boot_small(PlatformKind::Sanctum);
    println!("booted platform       : {}", system.monitor.platform_name());
    println!(
        "SM measurement        : {}",
        sanctorum_crypto::sha3::to_hex(&system.monitor.identity().sm_measurement)
    );

    // 2. The (untrusted) OS loads an enclave image through the SM API.
    let mut os = Os::new(&system);
    let image = EnclaveImage::hello(0xc0ffee);
    let built = os.build_enclave(&image, 1)?;
    println!("enclave id            : {}", built.eid);
    println!("enclave measurement   : {}", built.measurement);
    println!("build cost            : {}", built.build_cycles);

    // 3. Schedule the enclave's thread on core 0 and let it run to a
    //    voluntary exit.
    let outcome = os.run_thread(&built, built.main_thread(), CoreId::new(0), 10_000)?;
    match outcome {
        ThreadRunOutcome::Exited { cycles } => {
            println!("enclave ran and exited: {cycles}");
        }
        other => println!("unexpected outcome    : {other:?}"),
    }

    // 4. Destroy the enclave; its memory is scrubbed before the OS gets it
    //    back.
    os.teardown_enclave(&built)?;
    println!("free regions after tear-down: {}", os.free_region_count());
    println!(
        "total simulated cycles: {}",
        system.machine.total_cycles()
    );
    Ok(())
}
