//! A simulated multi-hart machine providing the hardware substrate the
//! Sanctorum security monitor requires.
//!
//! The paper evaluates Sanctorum on two hardware platforms — the MIT Sanctum
//! processor (a modified RISC-V Rocket system) and standard RISC-V machines
//! with physical memory protection (PMP) as used by Keystone. Neither piece
//! of silicon is available here, so this crate provides a deterministic,
//! cycle-counted simulation of the *architectural contract* those platforms
//! expose to privileged software:
//!
//! * byte-addressable physical memory ([`mem`]) carved into isolable units
//!   ([`access`]);
//! * multiple in-order harts with M/S/U privilege levels, architected
//!   registers and trap CSRs ([`hart`]);
//! * a three-level, Sv39-style page-table walker ([`pagetable`]) and per-hart
//!   TLBs ([`tlb`]);
//! * a set-associative, partitionable last-level cache model ([`cache`]);
//! * a trap/interrupt model ([`trap`]) through which every SM API call,
//!   fault and interrupt flows (paper Fig. 1);
//! * a DMA engine whose accesses are subject to the same isolation checks
//!   ([`dma`]);
//! * a small abstract guest-instruction model ([`guest`]) so enclave and OS
//!   programs can run on simulated harts, fault, and invoke the SM.
//!
//! Every modelled operation has a deterministic cycle cost
//! ([`sanctorum_hal::cycles::CostModel`]), which is what the benchmark
//! harness reports (see `EXPERIMENTS.md`).
//!
//! # Examples
//!
//! ```
//! use sanctorum_machine::{Machine, MachineConfig};
//!
//! let machine = Machine::new(MachineConfig::small());
//! assert_eq!(machine.config().num_harts, 2);
//! assert!(machine.config().memory_size >= 4 * 1024 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod cache;
pub mod dma;
pub mod fault;
pub mod guest;
pub mod hart;
pub mod machine;
pub mod mem;
pub mod pagetable;
pub mod tlb;
pub mod trap;

pub use access::{AccessControl, AccessDecision};
pub use fault::{Crossing, FaultInjector, FaultPlan, InjectedCrash};
pub use guest::{ExitReason, GuestOp, GuestProgram, Reg};
pub use hart::{HartState, PrivilegeLevel};
pub use machine::{Machine, MachineConfig};
pub use mem::PhysMemory;
pub use pagetable::{PageTableEntry, PageTableWalker, WalkOutcome};
pub use trap::{Interrupt, TrapCause};
