//! Lock-ordering infrastructure for the monitor's fine-grained locking.
//!
//! The monitor holds several locks at once on some paths (an enclave's
//! metadata plus a thread record plus the occupancy table, say), so a total
//! acquisition order is what keeps `LockingMode::Global`'s blocking locks
//! deadlock-free and keeps the `FineGrained` try-lock discipline livelock
//! free (two multi-shard transactions always contend in the same direction,
//! so one of them wins). The order is a numeric [`LockRank`] per lock:
//!
//! | rank | lock |
//! |------|------|
//! | 0    | `global_lock` (the Global-mode giant lock) |
//! | 5    | audit cache |
//! | 10+k | resource shard *k* (shards acquired in ascending *k*) |
//! | 30   | enclave table |
//! | 34   | enclave-table epoch cell (snapshot publish / retire) |
//! | 40   | one `EnclaveMeta` |
//! | 50   | thread table |
//! | 54   | thread-table epoch cell (snapshot publish / retire) |
//! | 55   | one per-hart id-cache slot |
//! | 56   | the shared id pool |
//! | 60   | one `ThreadMeta` |
//! | 70   | core-occupancy table |
//! | 80   | mail quota ledger |
//! | 90   | isolation backend |
//! | 93   | region quarantine set |
//! | 96   | mutation journal |
//! | 100  | model checker's visited-state set |
//! | 110  | verifier challenge DRBG |
//! | 112  | one verifier challenge shard |
//! | 113  | verifier writer mutex (serializes trust / chain-cache publishes) |
//! | 114  | verifier trust-state epoch cell (roots / revocation / measurements) |
//! | 118  | verifier chain-cache epoch cell |
//! | 120  | one verifier session-pool shard |
//!
//! The verifier tier (ranks 110+) sits entirely above the monitor: a
//! verifier thread may call into a monitor-backed world while holding *no*
//! verifier lock (challenges are drawn and shards unlocked before any
//! fabric traffic), and the monitor never calls into the verifier, so the
//! two domains only compose in one direction.
//!
//! **Rule: a lock may only be acquired while every currently held lock has a
//! strictly lower rank.** (Machine-internal locks — DRAM, harts, TLBs — sit
//! below the monitor entirely: the machine never calls back into the
//! monitor, so they are leaves and are not tracked here.)
//!
//! In debug builds every [`OrderedMutex`] / [`OrderedRwLock`] acquisition is
//! checked against a thread-local stack of held ranks and **panics** on a
//! violation, so the whole test suite (and every explorer sweep) doubles as
//! a lock-hierarchy model checker. Release builds compile the checker to
//! nothing.

use parking_lot::{
    Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::ops::{Deref, DerefMut};

/// Position of one lock in the monitor's total acquisition order. Lower
/// ranks are acquired first; see the module docs for the full table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockRank(pub u16);

/// The monitor's lock hierarchy, as named constants (see the module table).
pub mod rank {
    use super::LockRank;

    /// The Global-mode giant lock — always the first lock taken.
    pub const GLOBAL_CALL: LockRank = LockRank(0);
    /// The incremental-audit cache.
    pub const AUDIT_CACHE: LockRank = LockRank(5);
    /// Base rank of the resource shards; shard `k` has rank `10 + k`, so
    /// multi-shard transactions acquire shards in ascending index order.
    pub const RESOURCE_SHARD_BASE: u16 = 10;
    /// The enclave table (id → metadata handle).
    pub const ENCLAVE_TABLE: LockRank = LockRank(30);
    /// The enclave table's epoch cell: writers publish a fresh snapshot
    /// while still holding the table write lock (rank 30), so the epoch
    /// domain sits directly above the table it mirrors.
    pub const ENCLAVE_EPOCH: LockRank = LockRank(34);
    /// One enclave's metadata record.
    pub const ENCLAVE_META: LockRank = LockRank(40);
    /// The thread table (id → metadata handle).
    pub const THREAD_TABLE: LockRank = LockRank(50);
    /// The thread table's epoch cell; same publish-under-the-write-lock
    /// protocol as `ENCLAVE_EPOCH`.
    pub const THREAD_EPOCH: LockRank = LockRank(54);
    /// One per-hart id-cache slot of the thread-id allocator. Only one slot
    /// is ever held at a time, and a refill then takes the pool above it.
    pub const ID_SLOT: LockRank = LockRank(55);
    /// The shared id pool the per-hart caches refill from (acquired with a
    /// slot lock held, hence strictly above `ID_SLOT`).
    pub const ID_POOL: LockRank = LockRank(56);
    /// One thread's metadata record.
    pub const THREAD_META: LockRank = LockRank(60);
    /// The core-occupancy table.
    pub const OCCUPANCY: LockRank = LockRank(70);
    /// The mail-fabric quota ledger.
    pub const MAIL_LEDGER: LockRank = LockRank(80);
    /// The isolation backend (PMP / region-table mutation).
    pub const BACKEND: LockRank = LockRank(90);
    /// The region quarantine set (persistently faulted regions). Above the
    /// backend: a failed backend operation quarantines its region while the
    /// backend guard is still held.
    pub const QUARANTINE: LockRank = LockRank(93);
    /// The mutation journal. Above every state lock: intent entries are
    /// recorded before any state lock is taken, and completed while shard,
    /// backend or quarantine guards may still be held.
    pub const JOURNAL: LockRank = LockRank(96);
    /// The model checker's shared visited-state set. Above every monitor
    /// rank: worker threads consult it strictly after all monitor locks for
    /// the expanded state have been released.
    pub const MODEL_VISITED: LockRank = LockRank(100);
    /// The remote verifier's challenge DRBG. Held only while drawing a
    /// nonce + ephemeral DH secret, and released before the challenge is
    /// filed in its shard — which is what keeps the nonce *sequence*
    /// bit-identical to the single-threaded verifier under any seed.
    pub const VERIFIER_DRBG: LockRank = LockRank(110);
    /// One shard of the verifier's outstanding-challenge map. Only one
    /// shard is ever held at a time (a nonce names exactly one shard).
    pub const VERIFIER_CHALLENGE_SHARD: LockRank = LockRank(112);
    /// The verifier's writer mutex: serializes every publish into the trust
    /// and chain-cache epoch cells (both sit strictly above it, so a writer
    /// rebuilds and publishes a snapshot while holding this mutex).
    pub const VERIFIER_WRITER: LockRank = LockRank(113);
    /// The verifier's trust-state epoch cell (manufacturer roots, trusted
    /// measurements, revocation list). Read on every evidence check;
    /// rotation / revocation publishes under `VERIFIER_WRITER`.
    pub const VERIFIER_TRUST_EPOCH: LockRank = LockRank(114);
    /// The verifier's chain-cache epoch cell (validated certificate chains).
    pub const VERIFIER_CHAIN_EPOCH: LockRank = LockRank(118);
    /// One shard of a verifier-side session pool. Above the whole verify
    /// path: a session is filed strictly after every trust/chain structure
    /// has been consulted and released.
    pub const VERIFIER_SESSION_SHARD: LockRank = LockRank(120);
}

#[cfg(debug_assertions)]
mod checker {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII token recording one held rank on the current thread's stack.
    #[derive(Debug)]
    pub struct RankToken {
        rank: LockRank,
    }

    pub fn acquire(rank: LockRank) -> RankToken {
        // A violation must be reported *outside* the thread-local borrow:
        // the panic unwinds through `RankToken` drops that need the cell
        // again, and panicking with the borrow (or a poisoned cell) live
        // would turn one bug report into a double panic and abort the
        // process. `try_with`/`try_borrow_mut` degrade to an unchecked
        // acquisition during thread teardown instead of panicking there.
        let conflict = HELD.try_with(|held| {
            let Ok(mut held) = held.try_borrow_mut() else {
                return None;
            };
            if let Some(top) = held.iter().max().copied() {
                if rank <= top {
                    return Some(held.clone());
                }
            }
            held.push(rank);
            None
        });
        if let Ok(Some(held)) = conflict {
            panic!(
                "lock-order violation: acquiring rank {rank:?} while holding {held:?} \
                 (locks must be acquired in strictly ascending rank)",
            );
        }
        RankToken { rank }
    }

    impl Drop for RankToken {
        fn drop(&mut self) {
            // Runs while a panicking holder unwinds (injected crashes drop
            // their guards mid-call) and during thread teardown; neither
            // may panic again, so cell failures degrade to leaving the
            // entry behind rather than aborting the process.
            let _ = HELD.try_with(|held| {
                if let Ok(mut held) = held.try_borrow_mut() {
                    // Guards may be dropped out of acquisition order (a
                    // narrow backend critical section released while a
                    // shard guard lives on), so remove the matching rank,
                    // not the top.
                    if let Some(position) = held.iter().rposition(|r| *r == self.rank) {
                        held.remove(position);
                    }
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod checker {
    use super::LockRank;

    /// Release builds: the token is zero-sized and acquisition is free.
    #[derive(Debug)]
    pub struct RankToken;

    #[inline(always)]
    pub fn acquire(_rank: LockRank) -> RankToken {
        RankToken
    }
}

use checker::RankToken;

/// RAII witness that the current thread logically "holds" `rank` — the hook
/// lock-free structures (the epoch cells, the id allocator's internals) use
/// to participate in the same debug-build hierarchy checking as the ordered
/// locks, even though their synchronization is atomics rather than a mutex.
/// Dropping the guard pops the rank from the thread's shadow stack.
#[derive(Debug)]
pub(crate) struct RankGuard {
    _token: RankToken,
}

/// Records `rank` as held on this thread until the returned guard drops,
/// panicking (debug builds) if any currently held rank is ≥ `rank` — the
/// same rule [`OrderedMutex::lock`] enforces.
pub(crate) fn hold(rank: LockRank) -> RankGuard {
    RankGuard {
        _token: checker::acquire(rank),
    }
}

/// A [`parking_lot::Mutex`] that participates in the monitor's lock order:
/// every acquisition (blocking *and* try) is checked against the thread's
/// currently held ranks in debug builds.
#[derive(Debug)]
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex at the given rank.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: Mutex::new(value),
        }
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// This lock's position in the hierarchy.
    pub const fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires the lock, blocking. Panics (debug builds) on a hierarchy
    /// violation *before* blocking, so the violation is reported even when
    /// the schedule happens not to deadlock.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = checker::acquire(self.rank);
        OrderedMutexGuard {
            guard: self.inner.lock(),
            _token: token,
        }
    }

    /// Attempts the lock without blocking. The hierarchy is checked even for
    /// try-acquisitions: a try-lock out of order cannot deadlock, but it
    /// breaks the ascending-contention argument that makes the fine-grained
    /// mode livelock-free.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let token = checker::acquire(self.rank);
        self.inner.try_lock().map(|guard| OrderedMutexGuard {
            guard,
            _token: token,
        })
    }
}

/// Guard for [`OrderedMutex`]; releases the lock and pops the rank on drop.
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    guard: MutexGuard<'a, T>,
    _token: RankToken,
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A [`parking_lot::RwLock`] that participates in the monitor's lock order.
/// Read and write acquisitions are both checked (a reader can deadlock
/// against a writer just as well as two writers can against each other).
#[derive(Debug)]
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates a reader-writer lock at the given rank.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: RwLock::new(value),
        }
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// This lock's position in the hierarchy.
    pub const fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires a shared read lock, blocking.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        let token = checker::acquire(self.rank);
        OrderedReadGuard {
            guard: self.inner.read(),
            _token: token,
        }
    }

    /// Acquires an exclusive write lock, blocking.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        let token = checker::acquire(self.rank);
        OrderedWriteGuard {
            guard: self.inner.write(),
            _token: token,
        }
    }

    /// Attempts an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<OrderedWriteGuard<'_, T>> {
        let token = checker::acquire(self.rank);
        self.inner.try_write().map(|guard| OrderedWriteGuard {
            guard,
            _token: token,
        })
    }
}

/// Shared-read guard for [`OrderedRwLock`].
#[derive(Debug)]
pub struct OrderedReadGuard<'a, T: ?Sized> {
    guard: RwLockReadGuard<'a, T>,
    _token: RankToken,
}

impl<T: ?Sized> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-write guard for [`OrderedRwLock`].
#[derive(Debug)]
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    guard: RwLockWriteGuard<'a, T>,
    _token: RankToken,
}

impl<T: ?Sized> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// The Global-mode giant lock: a **ticket spinlock**, because that is what
/// the global variant actually models. A machine-mode security monitor has
/// no scheduler to sleep on, and real M-mode firmware (OpenSBI's
/// `spin_lock`, Linux's historical giant locks) uses *ticket* locks so no
/// hart starves — each waiter takes a ticket and spins until the serving
/// counter reaches it, so the lock is handed off in strict FIFO order.
///
/// That FIFO handoff is precisely the giant lock's concurrency cost: every
/// call site must wait for every caller that arrived before it, however
/// unrelated their work. On a multi-core host the waiters burn cycles in
/// the spin phase; on an oversubscribed host (more workers than CPUs) each
/// handoff additionally pays a scheduler round-trip when the next ticket
/// holder is descheduled — the classic oversubscribed-ticket-lock collapse.
/// Both are honest faces of the same serialization the fine-grained mode
/// removes, and both are what the scaling bench records. The spin loop
/// yields the host thread after a bounded number of spins so an
/// oversubscribed run keeps making progress instead of burning whole
/// timeslices.
///
/// The fine-grained mode never takes this lock, and deterministic
/// single-threaded runs never contend it — uncontended acquisition is one
/// `fetch_add` plus one load.
#[derive(Debug, Default)]
pub struct SpinLock {
    next_ticket: std::sync::atomic::AtomicU64,
    now_serving: std::sync::atomic::AtomicU64,
}

impl SpinLock {
    /// Creates an unlocked spinlock.
    pub const fn new() -> Self {
        Self {
            next_ticket: std::sync::atomic::AtomicU64::new(0),
            now_serving: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Acquires the lock (FIFO), recording rank 0 so every lock taken
    /// inside a Global-mode call is order-checked against it.
    pub fn lock(&self) -> SpinGuard<'_> {
        use std::sync::atomic::Ordering;
        let token = checker::acquire(rank::GLOBAL_CALL);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.now_serving.load(Ordering::Acquire) != ticket {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                // A real hart would keep spinning; a host thread yields so
                // a descheduled ticket holder ahead of us can run.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        SpinGuard {
            lock: self,
            ticket,
            _token: token,
        }
    }
}

/// Guard for [`SpinLock`]; passes the lock to the next ticket on drop.
#[derive(Debug)]
pub struct SpinGuard<'a> {
    lock: &'a SpinLock,
    ticket: u64,
    _token: RankToken,
}

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        self.lock
            .now_serving
            .store(self.ticket + 1, std::sync::atomic::Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_accepted() {
        let a = OrderedMutex::new(LockRank(1), 1u32);
        let b = OrderedMutex::new(LockRank(2), 2u32);
        let c = OrderedRwLock::new(LockRank(3), 3u32);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.read();
        assert_eq!(*ga + *gb + *gc, 6);
    }

    #[test]
    fn out_of_order_release_keeps_the_stack_consistent() {
        let a = OrderedMutex::new(LockRank(1), ());
        let b = OrderedMutex::new(LockRank(2), ());
        let c = OrderedMutex::new(LockRank(3), ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // released before b — the ledger must not lose rank 2
        let gc = c.lock(); // 3 > 2: fine
        drop(gb);
        drop(gc);
        // After everything is released, rank 1 is acquirable again.
        let _ga = a.lock();
    }

    #[test]
    fn reacquisition_after_release_is_accepted() {
        let a = OrderedMutex::new(LockRank(5), ());
        drop(a.lock());
        drop(a.lock());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn descending_acquisition_panics_in_debug() {
        let low = OrderedMutex::new(LockRank(1), ());
        let high = OrderedMutex::new(LockRank(9), ());
        let _gh = high.lock();
        let _gl = low.lock(); // 1 while holding 9: hierarchy violation
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn equal_rank_acquisition_panics_in_debug() {
        let a = OrderedMutex::new(LockRank(4), ());
        let b = OrderedMutex::new(LockRank(4), ());
        let _ga = a.lock();
        let _gb = b.lock(); // same rank: two metas at once are forbidden
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn try_lock_is_checked_too() {
        let low = OrderedMutex::new(LockRank(1), ());
        let high = OrderedRwLock::new(LockRank(9), ());
        let _gh = high.write();
        let _ = low.try_lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn read_locks_participate_in_the_order() {
        let low = OrderedRwLock::new(LockRank(1), ());
        let high = OrderedMutex::new(LockRank(9), ());
        let _gh = high.lock();
        let _gl = low.read();
    }

    #[test]
    fn panicking_holder_unwinds_the_shadow_stack_cleanly() {
        // An injected crash panics *while ranked locks are held*; the
        // guards drop during unwind and must leave the thread-local rank
        // stack exactly as it was, so post-crash recovery code on the same
        // thread can take the hierarchy from the top again.
        let low = OrderedMutex::new(LockRank(2), ());
        let high = OrderedMutex::new(LockRank(8), ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gl = low.lock();
            let _gh = high.lock();
            panic!("injected crash while holding ranks 2 and 8");
        }));
        assert!(result.is_err());
        // Both ranks were popped during the unwind: rank 2 is acquirable
        // again (it would violate the order if 2 or 8 were still recorded),
        // and the locks themselves are free (parking-lot shim recovers
        // poisoning).
        let _gl = low.lock();
        let _gh = high.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn caught_violation_leaves_held_ranks_intact() {
        // A lock-order violation reports without corrupting the shadow
        // stack: after catching it, the originally held lock is still
        // recorded (further violations are still detected) and releasing
        // it restores a clean slate.
        let low = OrderedMutex::new(LockRank(3), ());
        let high = OrderedMutex::new(LockRank(7), ());
        let gh = high.lock();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gl = low.lock();
        }));
        assert!(result.is_err(), "descending acquisition still reported");
        // Rank 7 must still be on the stack: the same violation reports
        // again rather than being silently allowed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gl = low.lock();
        }));
        assert!(result.is_err(), "shadow stack lost the held rank");
        drop(gh);
        // Clean slate: low is acquirable once the high guard is gone.
        let _gl = low.lock();
    }

    #[test]
    fn spinlock_excludes_and_releases() {
        let lock = SpinLock::new();
        {
            let _g = lock.lock();
        }
        let _g = lock.lock(); // released by the scope above
    }

    #[test]
    fn spinlock_serializes_across_threads() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let lock = Arc::new(SpinLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = lock.lock();
                    // Non-atomic-looking read-modify-write under the lock:
                    // lost updates would show as a short count.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
