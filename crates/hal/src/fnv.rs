//! A small shared FNV-1a fingerprint.
//!
//! Several harness layers need a cheap, dependency-free 64-bit fingerprint —
//! the machine's replay-determinism digest folds DRAM images through it, and
//! the explorer's op outcomes fingerprint byte strings with it. It is **not**
//! a cryptographic hash; measurement and attestation use SHA-3 from
//! `sanctorum-crypto`.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `seed` through an FNV-1a-style pass over `bytes`, eight bytes per
/// round so fingerprinting megabyte-sized inputs stays cheap.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed ^ OFFSET_BASIS;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        h ^= u64::from_le_bytes(word);
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(fnv1a(0, b"abc"), fnv1a(0, b"abc"));
        assert_ne!(fnv1a(0, b"abc"), fnv1a(0, b"abd"));
        assert_ne!(fnv1a(0, b"abc"), fnv1a(1, b"abc"));
        // Chunked and trailing bytes both contribute.
        assert_ne!(fnv1a(0, &[7u8; 16]), fnv1a(0, &[7u8; 17]));
    }
}
