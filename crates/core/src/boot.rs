//! Secure boot and SM key derivation (paper Sections IV-A and VI-C,
//! following the CSF'18 Sanctum boot protocol the paper cites).
//!
//! At power-on the measurement root (boot ROM):
//!
//! 1. measures the SM binary;
//! 2. derives the *device key pair* from the device-unique secret;
//! 3. derives the *SM attestation key pair* from the device secret **and**
//!    the SM measurement, so a different (possibly malicious) SM binary gets
//!    a different key that the manufacturer never certified;
//! 4. signs an SM certificate (SM public key + SM measurement) with the
//!    device key, and erases the device secret from reach of the SM.
//!
//! The manufacturer, who provisioned the device secret, certifies the device
//! public key offline; that certificate is produced by the verifier crate's
//! manufacturer CA and handed to the SM as part of its boot image.

use crate::attestation::Certificate;
use sanctorum_crypto::ed25519::{Keypair, PublicKey};
use sanctorum_crypto::kdf::hkdf;
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_hal::root::RootOfTrust;

/// The identity material the SM holds after secure boot.
#[derive(Debug, Clone)]
pub struct SmIdentity {
    /// Measurement (SHA3-256) of the SM binary itself.
    pub sm_measurement: [u8; 32],
    /// Device serial number.
    pub device_id: u64,
    /// The SM's attestation key pair (secret released only to the signing
    /// enclave).
    pub attestation_keypair: Keypair,
    /// The device public key (certified by the manufacturer).
    pub device_public_key: PublicKey,
    /// Certificate binding the attestation public key + SM measurement to
    /// the device key.
    pub sm_certificate: Certificate,
}

/// Derives the device key pair from the device secret.
///
/// Exposed so the simulated manufacturer database in `sanctorum-verifier`
/// can reproduce the derivation when issuing device certificates.
pub fn derive_device_keypair(root: &dyn RootOfTrust) -> Keypair {
    let seed: [u8; 32] = hkdf(
        b"sanctorum-device-key-v1",
        root.device_secret().as_bytes(),
        &root.device_id().to_le_bytes(),
    );
    Keypair::from_seed(seed)
}

/// Performs the secure-boot derivation for an SM whose binary is `sm_binary`.
///
/// The derivation is a pure function of the device secret, the device id and
/// the SM measurement (that determinism is itself a protocol requirement —
/// the same device re-booting the same SM must present the same identity),
/// so the result is memoized process-wide: harnesses that boot hundreds of
/// simulated systems with the same device (the adversarial explorer boots
/// two worlds per seed) pay the ed25519/certificate derivation once instead
/// of per boot.
///
/// # Examples
///
/// ```
/// use sanctorum_core::boot::secure_boot;
/// use sanctorum_hal::root::SimulatedRootOfTrust;
///
/// let root = SimulatedRootOfTrust::new(42);
/// let identity = secure_boot(&root, b"security monitor binary image");
/// assert!(identity.sm_certificate.verify());
/// ```
pub fn secure_boot(root: &dyn RootOfTrust, sm_binary: &[u8]) -> SmIdentity {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    let sm_measurement = Sha3_256::digest(sm_binary);
    // The cache key carries only a *hash* of the device secret: the boot
    // protocol erases the secret from reach after derivation, and the memo
    // table must not quietly extend its lifetime.
    type BootKey = (u64, [u8; 32], [u8; 32]);
    static CACHE: OnceLock<Mutex<HashMap<BootKey, SmIdentity>>> = OnceLock::new();
    let key: BootKey = (
        root.device_id(),
        Sha3_256::digest(root.device_secret().as_bytes()),
        sm_measurement,
    );
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(identity) = cache.lock().unwrap().get(&key) {
        return identity.clone();
    }
    let identity = derive_identity(root, sm_measurement);
    cache
        .lock()
        .unwrap()
        .insert(key, identity.clone());
    identity
}

fn derive_identity(root: &dyn RootOfTrust, sm_measurement: [u8; 32]) -> SmIdentity {
    let device_keypair = derive_device_keypair(root);

    // The attestation key is bound to both the device and the SM measurement:
    // patching the SM changes its measurement and therefore its key.
    let mut info = Vec::with_capacity(40);
    info.extend_from_slice(&root.device_id().to_le_bytes());
    info.extend_from_slice(&sm_measurement);
    let attestation_seed: [u8; 32] = hkdf(
        b"sanctorum-sm-attestation-key-v1",
        root.device_secret().as_bytes(),
        &info,
    );
    let attestation_keypair = Keypair::from_seed(attestation_seed);

    let sm_certificate = Certificate::issue(
        &device_keypair,
        *attestation_keypair.public(),
        sm_measurement.to_vec(),
    );

    SmIdentity {
        sm_measurement,
        device_id: root.device_id(),
        attestation_keypair,
        device_public_key: *device_keypair.public(),
        sm_certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::root::SimulatedRootOfTrust;

    #[test]
    fn boot_is_deterministic_per_device_and_binary() {
        let root = SimulatedRootOfTrust::new(7);
        let a = secure_boot(&root, b"sm v1");
        let b = secure_boot(&root, b"sm v1");
        assert_eq!(
            a.attestation_keypair.public().to_bytes(),
            b.attestation_keypair.public().to_bytes()
        );
        assert_eq!(a.sm_measurement, b.sm_measurement);
    }

    #[test]
    fn different_sm_binaries_get_different_keys() {
        let root = SimulatedRootOfTrust::new(7);
        let a = secure_boot(&root, b"sm v1");
        let b = secure_boot(&root, b"sm v1 (patched)");
        assert_ne!(a.sm_measurement, b.sm_measurement);
        assert_ne!(
            a.attestation_keypair.public().to_bytes(),
            b.attestation_keypair.public().to_bytes()
        );
        // Both are certified by the same device key.
        assert_eq!(a.device_public_key, b.device_public_key);
    }

    #[test]
    fn different_devices_get_different_keys_for_same_binary() {
        let a = secure_boot(&SimulatedRootOfTrust::new(1), b"sm v1");
        let b = secure_boot(&SimulatedRootOfTrust::new(2), b"sm v1");
        assert_eq!(a.sm_measurement, b.sm_measurement);
        assert_ne!(a.device_public_key, b.device_public_key);
        assert_ne!(
            a.attestation_keypair.public().to_bytes(),
            b.attestation_keypair.public().to_bytes()
        );
    }

    #[test]
    fn sm_certificate_chains_to_device_key() {
        let root = SimulatedRootOfTrust::new(3);
        let identity = secure_boot(&root, b"sm");
        assert!(identity.sm_certificate.verify());
        assert_eq!(identity.sm_certificate.issuer_public_key, identity.device_public_key);
        assert_eq!(identity.sm_certificate.subject_info, identity.sm_measurement.to_vec());
    }

    #[test]
    fn device_keypair_derivation_matches_manufacturer_view() {
        let root = SimulatedRootOfTrust::new(9);
        let at_boot = derive_device_keypair(&root);
        let at_factory = derive_device_keypair(&root);
        assert_eq!(at_boot.public().to_bytes(), at_factory.public().to_bytes());
    }
}
