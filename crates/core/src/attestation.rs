//! Attestation data structures: certificates, evidence, and the report
//! signed by the signing enclave (paper Section VI-C, Fig. 7).

use crate::measurement::Measurement;
use sanctorum_crypto::ed25519::{Keypair, PublicKey, Signature};
use serde::{Deserialize, Serialize};

/// A minimal certificate: an issuer's signature over a subject public key and
/// free-form subject information.
///
/// Two certificates form the chain the paper assumes: the manufacturer
/// certifies the *device* key (provisioned at manufacture time), and the
/// device key certifies the *SM attestation* key together with the SM
/// measurement (produced by the secure-boot flow).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// The certified public key.
    pub subject_public_key: PublicKey,
    /// Free-form subject information bound by the signature (e.g. the SM
    /// measurement, or the device serial number).
    pub subject_info: Vec<u8>,
    /// The issuer's public key.
    pub issuer_public_key: PublicKey,
    /// The issuer's signature over the payload.
    pub signature: Signature,
}

impl Certificate {
    fn payload(subject: &PublicKey, info: &[u8]) -> Vec<u8> {
        let mut p = Vec::with_capacity(32 + 8 + info.len() + 24);
        p.extend_from_slice(b"sanctorum-certificate-v1");
        p.extend_from_slice(&subject.to_bytes());
        p.extend_from_slice(&(info.len() as u64).to_le_bytes());
        p.extend_from_slice(info);
        p
    }

    /// Issues a certificate for `subject` with `info`, signed by `issuer`.
    pub fn issue(issuer: &Keypair, subject: PublicKey, info: Vec<u8>) -> Self {
        let signature = issuer.sign(&Self::payload(&subject, &info));
        Self {
            subject_public_key: subject,
            subject_info: info,
            issuer_public_key: *issuer.public(),
            signature,
        }
    }

    /// Verifies the certificate's signature against its embedded issuer key.
    ///
    /// Callers must additionally check that the issuer key is one they trust
    /// (chain validation is the verifier's job).
    pub fn verify(&self) -> bool {
        self.issuer_public_key.verify(
            &Self::payload(&self.subject_public_key, &self.subject_info),
            &self.signature,
        )
    }
}

/// The report signed by the signing enclave: the attested enclave's
/// measurement, the verifier's nonce, and enclave-chosen report data (used to
/// bind the attestation to the key-agreement channel of Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationReport {
    /// Measurement of the attested enclave.
    pub enclave_measurement: Measurement,
    /// Verifier-supplied anti-replay nonce.
    pub nonce: [u8; 32],
    /// Enclave-chosen binding data (e.g. a hash of its ephemeral DH public
    /// key).
    pub report_data: [u8; 32],
}

impl AttestationReport {
    /// Serializes the report into the byte string that gets signed.
    pub fn to_signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 * 3 + 24);
        out.extend_from_slice(b"sanctorum-attestation-v1");
        out.extend_from_slice(self.enclave_measurement.as_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.report_data);
        out
    }
}

/// Complete remote-attestation evidence presented to the verifier
/// (Fig. 7 steps ⑦–⑧): the signed report plus the certificate chain rooting
/// trust in the manufacturer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationEvidence {
    /// The report that was signed.
    pub report: AttestationReport,
    /// Signature over [`AttestationReport::to_signed_bytes`] by the SM
    /// attestation key (computed by the signing enclave).
    pub signature: Signature,
    /// Certificate binding the SM attestation key to the device key and the
    /// SM measurement.
    pub sm_certificate: Certificate,
    /// Certificate binding the device key to the manufacturer root.
    pub device_certificate: Certificate,
}

impl AttestationEvidence {
    /// Verifies the evidence's internal consistency: both certificates'
    /// signatures and the report signature under the SM key. Trust in the
    /// manufacturer root and freshness of the nonce are checked by the
    /// verifier crate, which knows the expected root key and issued the
    /// nonce.
    pub fn verify_signatures(&self) -> bool {
        self.device_certificate.verify()
            && self.sm_certificate.verify()
            && self
                .sm_certificate
                .subject_public_key
                .verify(&self.report.to_signed_bytes(), &self.signature)
            // The SM certificate must chain to the device key.
            && self.sm_certificate.issuer_public_key == self.device_certificate.subject_public_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> (Keypair, Keypair, Keypair) {
        (
            Keypair::from_seed([1; 32]), // manufacturer
            Keypair::from_seed([2; 32]), // device
            Keypair::from_seed([3; 32]), // sm attestation key
        )
    }

    fn evidence() -> AttestationEvidence {
        let (manufacturer, device, sm) = keys();
        let device_certificate =
            Certificate::issue(&manufacturer, *device.public(), b"device-001".to_vec());
        let sm_certificate = Certificate::issue(&device, *sm.public(), b"sm-measure".to_vec());
        let report = AttestationReport {
            enclave_measurement: Measurement([7; 32]),
            nonce: [8; 32],
            report_data: [9; 32],
        };
        let signature = sm.sign(&report.to_signed_bytes());
        AttestationEvidence {
            report,
            signature,
            sm_certificate,
            device_certificate,
        }
    }

    #[test]
    fn certificate_issue_verify_round_trip() {
        let (manufacturer, device, _) = keys();
        let cert = Certificate::issue(&manufacturer, *device.public(), b"device-001".to_vec());
        assert!(cert.verify());
    }

    #[test]
    fn tampered_certificate_rejected() {
        let (manufacturer, device, _) = keys();
        let mut cert = Certificate::issue(&manufacturer, *device.public(), b"device-001".to_vec());
        cert.subject_info = b"device-002".to_vec();
        assert!(!cert.verify());
    }

    #[test]
    fn evidence_verifies() {
        assert!(evidence().verify_signatures());
    }

    #[test]
    fn evidence_with_wrong_nonce_fails() {
        let mut e = evidence();
        e.report.nonce = [0xaa; 32];
        assert!(!e.verify_signatures());
    }

    #[test]
    fn evidence_with_broken_chain_fails() {
        let mut e = evidence();
        // Replace the device certificate with one for an unrelated key.
        let (manufacturer, _, _) = keys();
        let stranger = Keypair::from_seed([99; 32]);
        e.device_certificate =
            Certificate::issue(&manufacturer, *stranger.public(), b"device-001".to_vec());
        assert!(!e.verify_signatures());
    }

    #[test]
    fn evidence_with_wrong_measurement_fails() {
        let mut e = evidence();
        e.report.enclave_measurement = Measurement([0; 32]);
        assert!(!e.verify_signatures());
    }

    #[test]
    fn report_serialization_is_stable() {
        let r = AttestationReport {
            enclave_measurement: Measurement([1; 32]),
            nonce: [2; 32],
            report_data: [3; 32],
        };
        assert_eq!(r.to_signed_bytes(), r.to_signed_bytes());
        let mut r2 = r.clone();
        r2.report_data = [4; 32];
        assert_ne!(r.to_signed_bytes(), r2.to_signed_bytes());
    }
}
