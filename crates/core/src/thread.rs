//! Enclave-thread metadata and lifecycle (paper Section V-C, Fig. 4).

use crate::error::{SmError, SmResult};
use sanctorum_hal::domain::{CoreId, EnclaveId};
use sanctorum_machine::hart::HartSnapshot;

/// A thread identifier. The paper uses the physical address of the thread's
/// metadata structure; the reproduction allocates dense ids in SM metadata
/// space, which serve the same role as opaque capabilities.
pub type ThreadId = u64;

/// Run/assignment state of a thread (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Created but not currently bound to an enclave; may be re-assigned.
    Available,
    /// Assigned to an enclave, awaiting the enclave's `accept_thread`.
    Assigned {
        /// The owning enclave.
        enclave: EnclaveId,
        /// Whether the enclave has accepted the assignment (threads created
        /// by `load_thread` during enclave loading are accepted implicitly).
        accepted: bool,
    },
    /// Currently executing on a core.
    Running {
        /// The owning enclave.
        enclave: EnclaveId,
        /// The core it occupies.
        core: CoreId,
    },
}

/// Per-thread metadata held in SM-owned memory.
#[derive(Debug, Clone)]
pub struct ThreadMeta {
    /// The thread's identifier.
    pub tid: ThreadId,
    /// Current state.
    pub state: ThreadState,
    /// Program counter at which `enter_enclave` starts or re-starts the
    /// thread.
    pub entry_pc: u64,
    /// Optional enclave fault-handler entry point.
    pub fault_handler_pc: Option<u64>,
    /// Saved core state from the last asynchronous enclave exit, if any.
    pub aex_state: Option<HartSnapshot>,
    /// Set when an AEX occurred since the last entry; the enclave may inspect
    /// it (via its entry protocol) to decide whether to resume.
    pub aex_pending: bool,
}

impl ThreadMeta {
    /// Creates a thread already assigned (and accepted) to `enclave` — the
    /// `load_thread` path used while the enclave is loading.
    pub fn loaded(tid: ThreadId, enclave: EnclaveId, entry_pc: u64, fault_handler_pc: Option<u64>) -> Self {
        Self {
            tid,
            state: ThreadState::Assigned {
                enclave,
                accepted: true,
            },
            entry_pc,
            fault_handler_pc,
            aex_state: None,
            aex_pending: false,
        }
    }

    /// Creates an unassigned thread (dynamic `create_thread` path).
    pub fn available(tid: ThreadId, entry_pc: u64) -> Self {
        Self {
            tid,
            state: ThreadState::Available,
            entry_pc,
            fault_handler_pc: None,
            aex_state: None,
            aex_pending: false,
        }
    }

    /// Returns the owning enclave, if assigned or running.
    pub fn owner(&self) -> Option<EnclaveId> {
        match self.state {
            ThreadState::Assigned { enclave, .. } | ThreadState::Running { enclave, .. } => {
                Some(enclave)
            }
            ThreadState::Available => None,
        }
    }

    /// `assign_thread(eid, tid)` by the OS: binds an available thread to an
    /// enclave, pending the enclave's acceptance.
    ///
    /// # Errors
    ///
    /// Fails unless the thread is available.
    pub fn assign(&mut self, enclave: EnclaveId) -> SmResult<()> {
        match self.state {
            ThreadState::Available => {
                self.state = ThreadState::Assigned {
                    enclave,
                    accepted: false,
                };
                Ok(())
            }
            _ => Err(SmError::InvalidState {
                reason: "thread is not available for assignment",
            }),
        }
    }

    /// `accept_thread(tid)` by the owning enclave.
    ///
    /// # Errors
    ///
    /// Fails unless the thread is assigned to `caller` and not yet accepted.
    pub fn accept(&mut self, caller: EnclaveId) -> SmResult<()> {
        match self.state {
            ThreadState::Assigned { enclave, accepted: false } if enclave == caller => {
                self.state = ThreadState::Assigned {
                    enclave,
                    accepted: true,
                };
                Ok(())
            }
            ThreadState::Assigned { enclave, .. } if enclave != caller => Err(SmError::Unauthorized),
            _ => Err(SmError::InvalidState {
                reason: "thread is not awaiting acceptance",
            }),
        }
    }

    /// `release_thread(tid)` by the owning enclave: gives the thread back
    /// (the SM clears its saved state before making it available).
    ///
    /// # Errors
    ///
    /// Fails if the thread is running or not owned by `caller`.
    pub fn release(&mut self, caller: EnclaveId) -> SmResult<()> {
        match self.state {
            ThreadState::Assigned { enclave, .. } if enclave == caller => {
                self.clear_sensitive_state();
                self.state = ThreadState::Available;
                Ok(())
            }
            ThreadState::Running { .. } => Err(SmError::InvalidState {
                reason: "cannot release a running thread",
            }),
            _ => Err(SmError::Unauthorized),
        }
    }

    /// `unassign_thread(tid)` by the OS (e.g. when tearing down an enclave
    /// whose threads are not running).
    ///
    /// # Errors
    ///
    /// Fails if the thread is running.
    pub fn unassign(&mut self) -> SmResult<()> {
        match self.state {
            ThreadState::Assigned { .. } => {
                self.clear_sensitive_state();
                self.state = ThreadState::Available;
                Ok(())
            }
            ThreadState::Available => Ok(()),
            ThreadState::Running { .. } => Err(SmError::InvalidState {
                reason: "cannot unassign a running thread",
            }),
        }
    }

    /// Transition to `Running` on `core` (performed by `enter_enclave`).
    ///
    /// # Errors
    ///
    /// Fails unless the thread is assigned-and-accepted to `enclave`.
    pub fn start_running(&mut self, enclave: EnclaveId, core: CoreId) -> SmResult<()> {
        match self.state {
            ThreadState::Assigned { enclave: owner, accepted: true } if owner == enclave => {
                self.state = ThreadState::Running { enclave, core };
                Ok(())
            }
            ThreadState::Assigned { accepted: false, .. } => Err(SmError::InvalidState {
                reason: "thread not yet accepted by the enclave",
            }),
            ThreadState::Running { .. } => Err(SmError::InvalidState {
                reason: "thread is already running",
            }),
            _ => Err(SmError::InvalidState {
                reason: "thread is not assigned to this enclave",
            }),
        }
    }

    /// Transition back to `Assigned` (normal `exit_enclave` or AEX).
    ///
    /// # Errors
    ///
    /// Fails unless the thread is running.
    pub fn stop_running(&mut self) -> SmResult<(EnclaveId, CoreId)> {
        match self.state {
            ThreadState::Running { enclave, core } => {
                self.state = ThreadState::Assigned {
                    enclave,
                    accepted: true,
                };
                Ok((enclave, core))
            }
            _ => Err(SmError::InvalidState {
                reason: "thread is not running",
            }),
        }
    }

    fn clear_sensitive_state(&mut self) {
        self.aex_state = None;
        self.aex_pending = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E1: EnclaveId = EnclaveId::new(0x8010_0000);
    const E2: EnclaveId = EnclaveId::new(0x8020_0000);

    #[test]
    fn loaded_thread_is_accepted_and_enterable() {
        let mut t = ThreadMeta::loaded(1, E1, 0x100, None);
        assert_eq!(t.owner(), Some(E1));
        t.start_running(E1, CoreId::new(0)).unwrap();
        assert!(matches!(t.state, ThreadState::Running { .. }));
        let (owner, core) = t.stop_running().unwrap();
        assert_eq!(owner, E1);
        assert_eq!(core, CoreId::new(0));
        assert!(matches!(t.state, ThreadState::Assigned { accepted: true, .. }));
    }

    #[test]
    fn dynamic_assignment_requires_acceptance() {
        let mut t = ThreadMeta::available(2, 0x200);
        assert_eq!(t.owner(), None);
        t.assign(E1).unwrap();
        // Cannot enter before the enclave accepts.
        assert!(matches!(
            t.start_running(E1, CoreId::new(0)),
            Err(SmError::InvalidState { .. })
        ));
        // The wrong enclave cannot accept it.
        assert_eq!(t.accept(E2), Err(SmError::Unauthorized));
        t.accept(E1).unwrap();
        t.start_running(E1, CoreId::new(1)).unwrap();
    }

    #[test]
    fn wrong_enclave_cannot_enter() {
        let mut t = ThreadMeta::loaded(3, E1, 0, None);
        assert!(matches!(
            t.start_running(E2, CoreId::new(0)),
            Err(SmError::InvalidState { .. })
        ));
    }

    #[test]
    fn release_and_reassign() {
        let mut t = ThreadMeta::loaded(4, E1, 0, None);
        t.aex_pending = true;
        t.release(E1).unwrap();
        assert_eq!(t.state, ThreadState::Available);
        assert!(!t.aex_pending, "sensitive state cleared on release");
        // Re-assign to a different enclave.
        t.assign(E2).unwrap();
        t.accept(E2).unwrap();
        t.start_running(E2, CoreId::new(0)).unwrap();
    }

    #[test]
    fn release_by_non_owner_rejected() {
        let mut t = ThreadMeta::loaded(5, E1, 0, None);
        assert_eq!(t.release(E2), Err(SmError::Unauthorized));
    }

    #[test]
    fn running_thread_cannot_be_unassigned_or_released() {
        let mut t = ThreadMeta::loaded(6, E1, 0, None);
        t.start_running(E1, CoreId::new(0)).unwrap();
        assert!(matches!(t.unassign(), Err(SmError::InvalidState { .. })));
        assert!(matches!(t.release(E1), Err(SmError::InvalidState { .. })));
        assert!(matches!(
            t.start_running(E1, CoreId::new(1)),
            Err(SmError::InvalidState { .. })
        ));
    }

    #[test]
    fn stop_running_requires_running() {
        let mut t = ThreadMeta::loaded(7, E1, 0, None);
        assert!(matches!(t.stop_running(), Err(SmError::InvalidState { .. })));
    }

    #[test]
    fn unassign_available_is_idempotent() {
        let mut t = ThreadMeta::available(8, 0);
        t.unassign().unwrap();
        assert_eq!(t.state, ThreadState::Available);
    }
}
