//! Cryptographic primitives for the Sanctorum security monitor, implemented
//! from scratch.
//!
//! The paper's trusted-code-base argument counts every line of the monitor,
//! including its cryptography (Section VII-A explicitly includes the SHA-3
//! implementation in the LOC budget). To stay faithful to that accounting —
//! and to keep the workspace inside the approved offline dependency set —
//! every primitive here is implemented in this crate rather than pulled from
//! an external library:
//!
//! * [`sha3`] — Keccak-f\[1600\], SHA3-256/384/512 and SHAKE-128/256
//!   (FIPS 202), used for enclave measurement (paper Section VI-A).
//! * [`hmac`] / [`kdf`] — HMAC-SHA3 and HKDF, used for secure-boot key
//!   derivation and secure-channel key expansion.
//! * [`chacha`] / [`drbg`] — the ChaCha20 stream cipher and a ChaCha20-based
//!   deterministic random-bit generator fed by the platform entropy source
//!   (paper Section IV-B4).
//! * [`ed25519`] / [`x25519`] / [`field`] / [`scalar`] — Curve25519
//!   arithmetic, Ed25519 signatures (with SHA3-512 as the internal hash — see
//!   the note below) for remote attestation (Section VI-C), and X25519 key
//!   agreement for the attested channel (Fig. 7 step 1).
//! * [`secretbox`] — ChaCha20 + HMAC-SHA3 encrypt-then-MAC, used by the
//!   verifier/enclave secure channel after attestation.
//! * [`ct`] — constant-time comparison helpers.
//!
//! # Deviation from RFC 8032
//!
//! Standard Ed25519 uses SHA-512 internally. The paper's TCB contains only a
//! SHA-3 implementation, so this reproduction defines an "Ed25519-SHA3"
//! variant that substitutes SHA3-512. Signatures are therefore not
//! interoperable with stock Ed25519 — irrelevant here because both the signer
//! (the SM/signing enclave) and the verifier (`sanctorum-verifier`) live in
//! this workspace — but the curve and protocol structure are identical, and
//! the X25519 implementation (which involves no hash) is validated against the
//! RFC 7748 test vectors.
//!
//! # Examples
//!
//! ```
//! use sanctorum_crypto::sha3::Sha3_256;
//! let digest = Sha3_256::digest(b"hello sanctorum");
//! assert_eq!(digest.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Carry-propagation loops over fixed-width limb arrays read more clearly with
// explicit indices than with iterator adaptors; keep clippy quiet about them.
#![allow(clippy::needless_range_loop)]

pub mod bignum;
pub mod chacha;
pub mod ct;
pub mod drbg;
pub mod ed25519;
pub mod field;
pub mod hmac;
pub mod kdf;
pub mod scalar;
pub mod secretbox;
pub mod sha3;
pub mod x25519;

pub use drbg::ChaChaDrbg;
pub use ed25519::{Keypair, PublicKey, SecretKey, Signature};
pub use sha3::{Sha3_256, Sha3_512, Shake256};
