//! The acceptance sweep: exhaustive bounded search of the small world.
//!
//! This is the run `BENCH_modelcheck.json` benchmarks and CI gates: every
//! state of the 2-enclave/2-hart/4-region world reachable through the
//! lifecycle alphabet within depth 6, visited once (digest-pruned), with
//! the full invariant kernel green on every edge. `complete == true` is
//! the claim that distinguishes this from the explorer's sampling: within
//! this alphabet and depth there is **no** reachable violating state, full
//! stop.

use sanctorum_os::ops::ImageKind;
use sanctorum_modelcheck::{search, ModelConfig};

#[test]
fn lifecycle_alphabet_is_exhaustively_clean_to_depth_6() {
    let config = ModelConfig::ci();
    assert!(config.max_depth >= 6, "the acceptance bar is depth 6");
    let outcome = search(&config);
    if let Some(counterexample) = &outcome.violation {
        panic!(
            "violation ({}) after {} states: {}\n{}",
            counterexample.kind,
            outcome.states,
            counterexample.violation,
            counterexample.to_text()
        );
    }
    assert!(
        outcome.complete,
        "state cap hit at {} states — raise max_states, the sweep must be exhaustive",
        outcome.states
    );
    assert_eq!(outcome.depth_reached, config.max_depth, "frontier died early");
    // The space must be genuinely explored, not collapsed by an over-eager
    // digest: the lifecycle alphabet reaches hundreds of distinct states.
    assert!(outcome.states > 200, "only {} states — digest collapse?", outcome.states);
    assert!(outcome.edges > outcome.states as u64 * 4, "branching factor collapsed");
    eprintln!(
        "exhaustive sweep: {} states, {} edges, depth {}, {:.0} states/s",
        outcome.states,
        outcome.edges,
        outcome.depth_reached,
        outcome.states_per_second()
    );
}

#[test]
fn crash_recover_interleavings_are_exhaustively_clean_to_depth_4() {
    // Every journaled boundary in the restricted alphabet is additionally
    // offered crashed at its first two fault-point crossings, so the BFS
    // walks sequences like build → crashed-teardown → recover → build —
    // crash+recover *interleavings*, not just terminal crashes. Within
    // depth 4 there must be no reachable state, crashed into or recovered
    // from, that violates an invariant.
    let config = ModelConfig {
        labels: Some(&["build", "teardown", "block-region", "clean-region"]),
        build_kinds: &[ImageKind::Hello],
        crash_points: 2,
        max_depth: 4,
        max_live: 1,
        ..ModelConfig::default()
    };
    let outcome = search(&config);
    if let Some(counterexample) = &outcome.violation {
        panic!(
            "crash+recover violation ({}) after {} states: {}\n{}",
            counterexample.kind,
            outcome.states,
            counterexample.violation,
            counterexample.to_text()
        );
    }
    assert!(outcome.complete, "state cap hit at {} states", outcome.states);
    assert_eq!(outcome.depth_reached, config.max_depth, "frontier died early");
    eprintln!(
        "crash sweep: {} states, {} edges, depth {}, {:.0} states/s",
        outcome.states,
        outcome.edges,
        outcome.depth_reached,
        outcome.states_per_second()
    );
}
