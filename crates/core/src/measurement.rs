//! Enclave measurement (paper Section VI-A).
//!
//! The SM computes a SHA-3 hash over every operation that affects an
//! enclave's initial state: creation (configuration and virtual range),
//! page-table allocation, page loads (virtual address + contents) and thread
//! loads (entry point). Physical addresses are deliberately excluded so two
//! enclaves loaded at different physical locations but with identical virtual
//! contents measure identically. The monotonic physical-page-order invariant
//! that makes the virtual→physical mapping provably injective is enforced by
//! the enclave metadata (see [`crate::enclave`]), not here.

use sanctorum_crypto::sha3::{to_hex, Sha3_256};
use sanctorum_hal::addr::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finalized enclave measurement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Constant-time equality (measurement comparison must not leak the
    /// position of the first differing byte).
    pub fn ct_eq(&self, other: &Measurement) -> bool {
        sanctorum_crypto::ct::ct_eq(&self.0, &other.0)
    }
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Measurement({})", &to_hex(&self.0)[..16])
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", to_hex(&self.0))
    }
}

/// Domain-separation tags for each measured operation.
mod tag {
    pub const CREATE: &[u8] = b"sanctorum.create";
    pub const PAGE_TABLE: &[u8] = b"sanctorum.page_table";
    pub const PAGE: &[u8] = b"sanctorum.page";
    pub const THREAD: &[u8] = b"sanctorum.thread";
    pub const FINALIZE: &[u8] = b"sanctorum.finalize";
}

/// An in-progress measurement, extended by each initialization operation.
#[derive(Debug, Clone)]
pub struct MeasurementContext {
    hasher: Sha3_256,
    operations: u64,
}

impl MeasurementContext {
    /// Starts a measurement for an enclave being created.
    ///
    /// `sm_identity` binds the measurement to the SM version / hardware
    /// capabilities ("any global state necessary to convey trust",
    /// Section VI-A).
    pub fn start(sm_identity: &[u8; 32], evrange_base: VirtAddr, evrange_len: u64) -> Self {
        let mut hasher = Sha3_256::new();
        hasher.update(tag::CREATE);
        hasher.update(sm_identity);
        hasher.update(&evrange_base.as_u64().to_le_bytes());
        hasher.update(&evrange_len.to_le_bytes());
        Self {
            hasher,
            operations: 1,
        }
    }

    /// Extends the measurement with a page-table page allocation at virtual
    /// table level `level`.
    pub fn extend_page_table(&mut self, level: u8) {
        self.hasher.update(tag::PAGE_TABLE);
        self.hasher.update(&[level]);
        self.operations += 1;
    }

    /// Extends the measurement with a loaded page: its virtual address and
    /// full contents. The physical destination is *not* measured.
    pub fn extend_page(&mut self, vaddr: VirtAddr, contents: &[u8]) {
        self.hasher.update(tag::PAGE);
        self.hasher.update(&vaddr.as_u64().to_le_bytes());
        self.hasher.update(&(contents.len() as u64).to_le_bytes());
        self.hasher.update(contents);
        self.operations += 1;
    }

    /// Extends the measurement with a loaded thread (its entry point and
    /// fault-handler entry).
    pub fn extend_thread(&mut self, entry_pc: u64, fault_handler_pc: Option<u64>) {
        self.hasher.update(tag::THREAD);
        self.hasher.update(&entry_pc.to_le_bytes());
        self.hasher.update(&fault_handler_pc.unwrap_or(u64::MAX).to_le_bytes());
        self.operations += 1;
    }

    /// Number of operations folded into the measurement so far.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Finalizes the measurement (performed by `init_enclave`).
    pub fn finalize(self) -> Measurement {
        let mut hasher = self.hasher;
        hasher.update(tag::FINALIZE);
        hasher.update(&self.operations.to_le_bytes());
        Measurement(hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> [u8; 32] {
        [0x5a; 32]
    }

    #[test]
    fn identical_sequences_measure_identically() {
        let build = || {
            let mut ctx = MeasurementContext::start(&identity(), VirtAddr::new(0x1000), 0x4000);
            ctx.extend_page_table(0);
            ctx.extend_page(VirtAddr::new(0x1000), &[1, 2, 3]);
            ctx.extend_thread(0x1000, None);
            ctx.finalize()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn physical_placement_does_not_affect_measurement() {
        // The API simply never takes a physical address, so two enclaves at
        // different physical locations measure the same; this test documents
        // that property by construction.
        let mut a = MeasurementContext::start(&identity(), VirtAddr::new(0x1000), 0x2000);
        let mut b = MeasurementContext::start(&identity(), VirtAddr::new(0x1000), 0x2000);
        a.extend_page(VirtAddr::new(0x1000), b"same contents");
        b.extend_page(VirtAddr::new(0x1000), b"same contents");
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn different_contents_or_vaddrs_measure_differently() {
        let base = |vaddr: u64, data: &[u8]| {
            let mut ctx = MeasurementContext::start(&identity(), VirtAddr::new(0x1000), 0x2000);
            ctx.extend_page(VirtAddr::new(vaddr), data);
            ctx.finalize()
        };
        assert_ne!(base(0x1000, b"aaaa"), base(0x1000, b"aaab"));
        assert_ne!(base(0x1000, b"aaaa"), base(0x2000, b"aaaa"));
    }

    #[test]
    fn operation_order_matters() {
        let mut a = MeasurementContext::start(&identity(), VirtAddr::new(0), 0x2000);
        a.extend_page(VirtAddr::new(0), b"x");
        a.extend_thread(0, None);
        let mut b = MeasurementContext::start(&identity(), VirtAddr::new(0), 0x2000);
        b.extend_thread(0, None);
        b.extend_page(VirtAddr::new(0), b"x");
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn sm_identity_is_bound() {
        let a = MeasurementContext::start(&[1; 32], VirtAddr::new(0), 0x1000).finalize();
        let b = MeasurementContext::start(&[2; 32], VirtAddr::new(0), 0x1000).finalize();
        assert_ne!(a, b);
    }

    #[test]
    fn evrange_is_bound() {
        let a = MeasurementContext::start(&identity(), VirtAddr::new(0x1000), 0x1000).finalize();
        let b = MeasurementContext::start(&identity(), VirtAddr::new(0x1000), 0x2000).finalize();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_handler_is_measured() {
        let mk = |h: Option<u64>| {
            let mut ctx = MeasurementContext::start(&identity(), VirtAddr::new(0), 0x1000);
            ctx.extend_thread(0x100, h);
            ctx.finalize()
        };
        assert_ne!(mk(None), mk(Some(0x200)));
    }

    #[test]
    fn display_and_ct_eq() {
        let m = MeasurementContext::start(&identity(), VirtAddr::new(0), 0x1000).finalize();
        assert_eq!(format!("{m}").len(), 64);
        assert!(m.ct_eq(&m));
        let other = MeasurementContext::start(&identity(), VirtAddr::new(8), 0x1000).finalize();
        assert!(!m.ct_eq(&other));
        assert!(format!("{m:?}").starts_with("Measurement("));
    }

    #[test]
    fn operation_count_tracked() {
        let mut ctx = MeasurementContext::start(&identity(), VirtAddr::new(0), 0x1000);
        assert_eq!(ctx.operations(), 1);
        ctx.extend_page_table(1);
        ctx.extend_page(VirtAddr::new(0), b"p");
        assert_eq!(ctx.operations(), 3);
    }
}
