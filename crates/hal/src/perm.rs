//! Memory permission flags.

use core::fmt;
use core::ops::{BitAnd, BitOr};
use serde::{Deserialize, Serialize};

/// Read/write/execute permissions attached to page-table entries and PMP
/// entries.
///
/// A small hand-rolled flag set (rather than an external `bitflags`
/// dependency) keeps the workspace within the approved dependency list.
///
/// # Examples
///
/// ```
/// use sanctorum_hal::perm::MemPerms;
/// let rw = MemPerms::READ | MemPerms::WRITE;
/// assert!(rw.allows(MemPerms::READ));
/// assert!(!rw.allows(MemPerms::EXEC));
/// assert!(MemPerms::RWX.allows(rw));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MemPerms(u8);

impl MemPerms {
    /// No access.
    pub const NONE: MemPerms = MemPerms(0);
    /// Read permission.
    pub const READ: MemPerms = MemPerms(1);
    /// Write permission.
    pub const WRITE: MemPerms = MemPerms(2);
    /// Execute permission.
    pub const EXEC: MemPerms = MemPerms(4);
    /// Read + write.
    pub const RW: MemPerms = MemPerms(1 | 2);
    /// Read + execute.
    pub const RX: MemPerms = MemPerms(1 | 4);
    /// Read + write + execute.
    pub const RWX: MemPerms = MemPerms(1 | 2 | 4);

    /// Returns `true` if every permission bit in `needed` is present in `self`.
    pub const fn allows(self, needed: MemPerms) -> bool {
        (self.0 & needed.0) == needed.0
    }

    /// Returns `true` if no permission bits are set.
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the read bit is set.
    pub const fn can_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns `true` if the write bit is set.
    pub const fn can_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// Returns `true` if the execute bit is set.
    pub const fn can_exec(self) -> bool {
        self.0 & 4 != 0
    }

    /// Returns the raw bit representation (R=1, W=2, X=4).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs permissions from raw bits, masking unknown bits away.
    pub const fn from_bits(bits: u8) -> Self {
        Self(bits & 0b111)
    }
}

impl BitOr for MemPerms {
    type Output = MemPerms;
    fn bitor(self, rhs: Self) -> Self {
        Self(self.0 | rhs.0)
    }
}

impl BitAnd for MemPerms {
    type Output = MemPerms;
    fn bitand(self, rhs: Self) -> Self {
        Self(self.0 & rhs.0)
    }
}

impl fmt::Display for MemPerms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { "r" } else { "-" },
            if self.can_write() { "w" } else { "-" },
            if self.can_exec() { "x" } else { "-" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_is_subset_check() {
        assert!(MemPerms::RWX.allows(MemPerms::RW));
        assert!(MemPerms::RW.allows(MemPerms::READ));
        assert!(!MemPerms::RW.allows(MemPerms::EXEC));
        assert!(MemPerms::NONE.allows(MemPerms::NONE));
        assert!(!MemPerms::NONE.allows(MemPerms::READ));
    }

    #[test]
    fn bit_ops() {
        assert_eq!(MemPerms::READ | MemPerms::WRITE, MemPerms::RW);
        assert_eq!(MemPerms::RWX & MemPerms::READ, MemPerms::READ);
        assert_eq!(MemPerms::from_bits(0xff), MemPerms::RWX);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", MemPerms::RX), "r-x");
        assert_eq!(format!("{}", MemPerms::NONE), "---");
        assert_eq!(format!("{}", MemPerms::RWX), "rwx");
    }

    #[test]
    fn predicates() {
        assert!(MemPerms::RW.can_read());
        assert!(MemPerms::RW.can_write());
        assert!(!MemPerms::RW.can_exec());
        assert!(MemPerms::NONE.is_none());
    }
}
