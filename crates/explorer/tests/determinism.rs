//! Determinism regression: the single-threaded explorer's machine digests
//! are pinned to the values the pre-refactor (giant-lock) monitor produced.
//!
//! The sharded-locking refactor (ISSUE 5) must be *observationally
//! invisible* to deterministic single-threaded execution: every status code,
//! every measurement and every machine-state transition stays bit-identical,
//! so `(seed, step)` replay coordinates recorded before the refactor keep
//! reproducing. The constants below were captured by running this harness on
//! the last pre-refactor commit (`1d09ee8`, mailbox fabric + pipelined
//! attestation); if they move, a change altered *behaviour*, not just
//! locking, and must be treated as a regression.

use sanctorum_explorer::{Explorer, ExplorerConfig};

/// `(seed, steps, machine digest)` captured on the pre-refactor monitor.
/// Sanctum and Keystone digests were identical on these seeds (no declared
/// capacity divergence under the default explorer geometry), so one value
/// pins both worlds.
const GOLDEN: &[(u64, usize, u64)] = &[
    (0x5eed, 120, 0x83eacd5cf2f32a9a),
    (0x0, 200, 0x8f8fb3ca8a44b0d3),
    (0x2a, 200, 0xbf57c29c52a55f66),
];

#[test]
fn single_threaded_digests_match_pre_refactor_replay() {
    for (seed, steps, digest) in GOLDEN {
        let explorer = Explorer::new(ExplorerConfig {
            steps: *steps,
            ..ExplorerConfig::default()
        });
        let report = explorer.run_seed(*seed);
        assert!(report.failure.is_none(), "seed {seed:#x} failed: {:?}", report.failure);
        assert_eq!(
            report.final_digests,
            (*digest, *digest),
            "seed {seed:#x} diverged from the pre-refactor machine digest — \
             the locking refactor changed observable behaviour",
        );
    }
}

#[test]
fn repeat_runs_stay_bit_identical() {
    let explorer = Explorer::new(ExplorerConfig {
        steps: 150,
        ..ExplorerConfig::default()
    });
    let a = explorer.run_seed(7);
    let b = explorer.run_seed(7);
    assert_eq!(a.final_digests, b.final_digests);
    assert_eq!(a.op_counts, b.op_counts);
}
