//! Multi-hart scalability benchmark — `steps/sec` and `SM-calls/sec` at
//! 1/2/4/8 OS threads, Global vs FineGrained locking, on a read-mostly
//! (public-field reads + mailbox probes) and a mixed-mutation (full
//! lifecycle churn) workload, emitted as `BENCH_scaling.json` and gated in
//! CI (see EXPERIMENTS.md, "Scaling").
//!
//! Usage:
//!
//! ```text
//! scaling_stats [--rounds N] [--read-ops N] [--mixed-ops N] [--out PATH] [--baseline PATH]
//! ```
//!
//! Gates (exit non-zero on failure):
//!
//! * **fine ≥ 2× global at 4 threads, read-mostly** — the tentpole claim:
//!   with the hot path algorithmically cheap, the giant lock is the
//!   dominant cost under concurrency. Always enforced: on a multi-core
//!   host the fine-grained mode scales while the global mode serializes;
//!   on a single-core host the global mode still collapses, because the
//!   giant lock is a *spinlock* (the M-mode monitor it models has no
//!   scheduler to sleep on) and a preempted holder leaves every other
//!   worker burning its timeslice — exactly the spin cost concurrent harts
//!   pay on real hardware.
//! * **fine at 4 threads ≥ 2× fine at 1 thread, read-mostly** — true
//!   parallel scaling. Only enforced when the host actually has ≥ 4 CPUs
//!   (`host_cpus` is recorded in the JSON either way).
//! * **fine at 8 threads ≥ 3× fine at 1 thread, mixed-mutation** — the
//!   *write path* scales too: with the epoch read-side, per-hart id
//!   allocation and batched backend flushes, lifecycle churn must not
//!   serialize on the metadata locks. Only enforced at `host_cpus >= 8`;
//!   the ratio is recorded in the JSON either way.
//! * **`--baseline PATH`** — single-thread FineGrained read-mostly
//!   throughput must not regress more than 2× against the committed JSON,
//!   normalized by each run's `calibration_hashes_per_second`.
//!
//! Each cell additionally records its **retry rate** (`ConcurrentCall`
//! retries per committed step) — the direct measure of write-path
//! contention the mutation-scaling work drives down.
//!
//! Run with: `cargo run --release -p sanctorum-bench --bin scaling_stats`

use sanctorum_bench::{calibrate, extract_number};
use sanctorum_core::monitor::{LockingMode, SmConfig};
use sanctorum_explorer::concurrent::concurrent_machine_config;
use sanctorum_os::concurrent::{run_concurrent, ConcurrentConfig, WorkloadProfile};
use sanctorum_os::system::{PlatformKind, System};
use std::time::Instant;

const MAX_REGRESSION_FACTOR: f64 = 2.0;
const CONTENTION_FLOOR: f64 = 2.0;
const SCALING_FLOOR: f64 = 2.0;
const MIXED_SCALING_FLOOR: f64 = 3.0;
/// Per-hart id-allocation batch for the fine-grained cells (the global-lock
/// cells keep the legacy batch of 1: the giant lock serializes allocation
/// anyway, and batch 1 is the configuration the determinism suite pins).
const FINE_ID_BATCH: usize = 16;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Clone, Copy)]
struct Cell {
    workload: WorkloadProfile,
    locking: LockingMode,
    threads: usize,
    steps_per_second: f64,
    sm_calls_per_second: f64,
    retries: u64,
    /// `ConcurrentCall` retries per committed step (write-path contention).
    retry_rate: f64,
}

fn mode_name(mode: LockingMode) -> &'static str {
    match mode {
        LockingMode::FineGrained => "fine_grained",
        LockingMode::Global => "global_lock",
    }
}

fn run_cell(
    workload: WorkloadProfile,
    locking: LockingMode,
    threads: usize,
    rounds: usize,
    ops_per_round: usize,
) -> Cell {
    // A fresh system per cell: no warm caches or leftover enclaves leak
    // between configurations.
    let system = System::boot(
        PlatformKind::Sanctum,
        concurrent_machine_config(),
        SmConfig {
            locking,
            id_batch: match locking {
                LockingMode::FineGrained => FINE_ID_BATCH,
                LockingMode::Global => 1,
            },
            ..SmConfig::default()
        },
    );
    let config = ConcurrentConfig {
        threads,
        rounds,
        ops_per_round,
        profile: workload,
        seed: 0x5ca1e,
    };
    let start = Instant::now();
    let stats = run_concurrent(&system, &config, |_| Ok(())).expect("bench workload stays clean");
    let elapsed = start.elapsed().as_secs_f64();
    Cell {
        workload,
        locking,
        threads,
        steps_per_second: stats.steps as f64 / elapsed,
        sm_calls_per_second: stats.sm_calls as f64 / elapsed,
        retries: stats.retries,
        retry_rate: stats.retry_rate(),
    }
}

fn find(cells: &[Cell], workload: WorkloadProfile, locking: LockingMode, threads: usize) -> &Cell {
    cells
        .iter()
        .find(|c| c.workload == workload && c.locking == locking && c.threads == threads)
        .expect("cell measured")
}

fn main() {
    // Budgets are sized so one round far exceeds a host scheduler
    // timeslice: with short rounds the workers run back-to-back inside
    // single timeslices and never actually overlap, which silently measures
    // the *uncontended* lock.
    let mut rounds = 2usize;
    let mut read_ops = 2_000_000usize;
    let mut mixed_ops = 8_000usize;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => rounds = args.next().and_then(|v| v.parse().ok()).expect("--rounds N"),
            "--read-ops" => {
                read_ops = args.next().and_then(|v| v.parse().ok()).expect("--read-ops N")
            }
            "--mixed-ops" => {
                mixed_ops = args.next().and_then(|v| v.parse().ok()).expect("--mixed-ops N")
            }
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => panic!("unknown argument {other}"),
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let calibration = calibrate();

    println!("# scaling sweep (host_cpus = {host_cpus})");
    let mut cells: Vec<Cell> = Vec::new();
    for workload in [WorkloadProfile::ReadMostly, WorkloadProfile::MixedMutation] {
        let ops = match workload {
            WorkloadProfile::ReadMostly => read_ops,
            WorkloadProfile::MixedMutation => mixed_ops,
        };
        // The per-worker op budget shrinks as threads grow, so total work
        // (and wall time per cell) stays roughly constant across the sweep.
        for locking in [LockingMode::Global, LockingMode::FineGrained] {
            for threads in THREAD_COUNTS {
                let cell = run_cell(workload, locking, threads, rounds, ops / threads);
                println!(
                    "{:>14} {:>12} {} threads: {:>12.0} steps/s {:>12.0} calls/s \
                     ({} retries, {:.3} retries/step)",
                    workload.name(),
                    mode_name(locking),
                    threads,
                    cell.steps_per_second,
                    cell.sm_calls_per_second,
                    cell.retries,
                    cell.retry_rate
                );
                cells.push(cell);
            }
        }
    }

    let fine_1t = find(&cells, WorkloadProfile::ReadMostly, LockingMode::FineGrained, 1);
    let fine_4t = find(&cells, WorkloadProfile::ReadMostly, LockingMode::FineGrained, 4);
    let global_4t = find(&cells, WorkloadProfile::ReadMostly, LockingMode::Global, 4);
    let mixed_fine_1t = find(&cells, WorkloadProfile::MixedMutation, LockingMode::FineGrained, 1);
    let mixed_fine_8t = find(&cells, WorkloadProfile::MixedMutation, LockingMode::FineGrained, 8);
    let contention_ratio = fine_4t.steps_per_second / global_4t.steps_per_second;
    let scaling_ratio = fine_4t.steps_per_second / fine_1t.steps_per_second;
    let mixed_scaling_ratio = mixed_fine_8t.steps_per_second / mixed_fine_1t.steps_per_second;
    println!("\nfine/global at 4 threads (read-mostly): {contention_ratio:.2}x (floor {CONTENTION_FLOOR}x)");
    println!(
        "fine 4t/1t (read-mostly):               {scaling_ratio:.2}x (floor {SCALING_FLOOR}x, enforced at host_cpus >= 4)"
    );
    println!(
        "fine 8t/1t (mixed-mutation):            {mixed_scaling_ratio:.2}x (floor {MIXED_SCALING_FLOOR}x, enforced at host_cpus >= 8)"
    );
    println!(
        "fine 8t retry rate (mixed-mutation):    {:.3} retries/step",
        mixed_fine_8t.retry_rate
    );

    if let Some(path) = &out {
        let mut results = String::new();
        for (index, cell) in cells.iter().enumerate() {
            let comma = if index + 1 == cells.len() { "" } else { "," };
            results.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"locking\": \"{}\", \"threads\": {}, \
                 \"steps_per_second\": {:.1}, \"sm_calls_per_second\": {:.1}, \"retries\": {}, \
                 \"retry_rate\": {:.4} }}{comma}\n",
                cell.workload.name(),
                mode_name(cell.locking),
                cell.threads,
                cell.steps_per_second,
                cell.sm_calls_per_second,
                cell.retries,
                cell.retry_rate
            ));
        }
        let json = format!(
            r#"{{
  "bench": "scaling",
  "host_cpus": {host_cpus},
  "calibration_hashes_per_second": {calibration:.1},
  "config": {{ "rounds": {rounds}, "read_ops_total_per_worker_at_1t": {read_ops}, "mixed_ops_total_per_worker_at_1t": {mixed_ops} }},
  "single_thread_fine_read_mostly_steps_per_second": {:.1},
  "four_thread_fine_read_mostly_steps_per_second": {:.1},
  "four_thread_global_read_mostly_steps_per_second": {:.1},
  "fine_vs_global_4t_read_mostly_ratio": {contention_ratio:.2},
  "fine_4t_vs_1t_read_mostly_ratio": {scaling_ratio:.2},
  "fine_8t_vs_1t_mixed_mutation_ratio": {mixed_scaling_ratio:.2},
  "fine_8t_mixed_mutation_retry_rate": {:.4},
  "results": [
{results}  ]
}}
"#,
            fine_1t.steps_per_second,
            fine_4t.steps_per_second,
            global_4t.steps_per_second,
            mixed_fine_8t.retry_rate,
        );
        std::fs::write(path, json).expect("write result JSON");
        println!("wrote {path}");
    }

    if contention_ratio < CONTENTION_FLOOR {
        eprintln!(
            "FAIL: fine-grained is only {contention_ratio:.2}x the global lock at 4 threads \
             (floor {CONTENTION_FLOOR}x) on the read-mostly workload"
        );
        std::process::exit(3);
    }
    if host_cpus >= 4 && scaling_ratio < SCALING_FLOOR {
        eprintln!(
            "FAIL: fine-grained at 4 threads is only {scaling_ratio:.2}x its single-thread \
             throughput (floor {SCALING_FLOOR}x) despite {host_cpus} host CPUs"
        );
        std::process::exit(4);
    }
    if host_cpus >= 8 && mixed_scaling_ratio < MIXED_SCALING_FLOOR {
        eprintln!(
            "FAIL: mixed-mutation fine-grained at 8 threads is only {mixed_scaling_ratio:.2}x \
             its single-thread throughput (floor {MIXED_SCALING_FLOOR}x) despite {host_cpus} \
             host CPUs — the write path is serializing"
        );
        std::process::exit(5);
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).expect("read baseline JSON");
        let reference = extract_number(&text, "single_thread_fine_read_mostly_steps_per_second")
            .expect("baseline JSON has the single-thread fine-grained field");
        let reference_calibration =
            extract_number(&text, "calibration_hashes_per_second").unwrap_or(calibration);
        let normalized_current = fine_1t.steps_per_second / calibration;
        let normalized_reference = reference / reference_calibration;
        println!(
            "baseline {path}: {reference:.0} steps/sec at {reference_calibration:.0} hashes/sec \
             (normalized gate: {normalized_current:.2e} vs floor {:.2e})",
            normalized_reference / MAX_REGRESSION_FACTOR
        );
        if normalized_current * MAX_REGRESSION_FACTOR < normalized_reference {
            eprintln!(
                "FAIL: single-thread throughput regressed more than {MAX_REGRESSION_FACTOR}x \
                 (machine-normalized {normalized_current:.2e} vs baseline {normalized_reference:.2e})"
            );
            std::process::exit(2);
        }
    }
}
