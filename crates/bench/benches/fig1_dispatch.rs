//! Fig. 1 — SM event dispatch: latency of the paths through the monitor's
//! event-handling flow (API ecall, OS interrupt delegation, AEX delegation),
//! plus the batched-call path amortizing trap overhead across packed calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_bench::{boot, boot_with_enclave};
use sanctorum_core::api::{SmApi, SmCall};
use sanctorum_core::session::CallerSession;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_machine::guest::GuestProgram;
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_machine::trap::{Interrupt, TrapCause};
use sanctorum_os::system::PlatformKind;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_dispatch");

    // Path 1: an SM API call arriving as an environment call (GetField).
    let (system, os) = boot(PlatformKind::Sanctum);
    let core = CoreId::new(0);
    system.machine.install_context(core, DomainKind::Untrusted, PrivilegeLevel::Supervisor, None, 0);
    group.bench_function("api_ecall_get_field", |b| {
        b.iter(|| {
            system.monitor.stage_call(core, &SmCall::GetField { field: 3 });
            system.monitor.handle_event(core, TrapCause::EnvironmentCall)
        })
    });

    // Path 2: an illegal/unauthorized call is rejected.
    group.bench_function("api_ecall_rejected", |b| {
        b.iter(|| {
            system
                .monitor
                .stage_call(core, &SmCall::AcceptMail { mailbox: 0, sender_id: 0 });
            system.monitor.handle_event(core, TrapCause::EnvironmentCall)
        })
    });

    // Path 3: an OS interrupt with no enclave involved (pure delegation).
    group.bench_function("os_interrupt_delegation", |b| {
        b.iter(|| system.monitor.handle_event(core, TrapCause::Interrupt(Interrupt::Timer)))
    });

    // Path 4: an interrupt landing while an enclave runs — full AEX + resume.
    let (system2, _os2, built) = boot_with_enclave(PlatformKind::Sanctum);
    let core2 = CoreId::new(1);
    group.bench_function("enclave_interrupt_aex", |b| {
        b.iter(|| {
            system2
                .monitor
                .enter_enclave(CallerSession::os_on(core2), built.eid, built.main_thread())
                .unwrap();
            system2
                .monitor
                .handle_event(core2, TrapCause::Interrupt(Interrupt::Timer))
        })
    });

    // Path 5: N calls issued serially (N guest traps, each with its own
    // environment-call exit and dispatch) vs. as one batch (one guest trap
    // through the packed-table ABI). The delta is the amortizable per-trap
    // overhead; recorded in EXPERIMENTS.md next to the other Fig. 1 numbers.
    let table = os.staging_base().offset(0x8000);
    let ecall_once = GuestProgram::new(
        "ecall-once",
        vec![sanctorum_machine::guest::GuestOp::Ecall, sanctorum_machine::guest::GuestOp::Exit],
    );
    let trap_once = |call: &SmCall| {
        system.machine.install_context(
            core,
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            None,
            0,
        );
        system.monitor.stage_call(core, call);
        system.machine.run_guest(core, &ecall_once, 4);
        system.monitor.handle_event(core, TrapCause::EnvironmentCall)
    };
    for n in [8usize, 32] {
        let calls: Vec<SmCall> = (0..n)
            .map(|i| SmCall::GetField { field: (i % 4) as u64 })
            .collect();
        group.bench_with_input(BenchmarkId::new("api_ecall_serial", n), &calls, |b, calls| {
            b.iter(|| {
                for call in calls {
                    trap_once(call);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("api_ecall_batched", n), &calls, |b, calls| {
            b.iter(|| {
                system.machine.install_context(
                    core,
                    DomainKind::Untrusted,
                    PrivilegeLevel::Supervisor,
                    None,
                    0,
                );
                system.monitor.stage_batch(core, table, calls).unwrap();
                system.machine.run_guest(core, &ecall_once, 4);
                system.monitor.handle_event(core, TrapCause::EnvironmentCall)
            })
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dispatch
}
criterion_main!(benches);
