//! Shared helpers for the benchmark harness and the workspace-level
//! integration tests and examples.
//!
//! Each benchmark target regenerates one figure or table of the paper's
//! evaluation; the mapping is documented in `DESIGN.md` (per-experiment
//! index) and the measured results are recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sanctorum_core::monitor::{LockingMode, SmConfig};
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_machine::MachineConfig;
use sanctorum_os::os::{BuiltEnclave, Os};
use sanctorum_os::system::{PlatformKind, System};

/// Boots a small system plus OS model on the given platform.
pub fn boot(platform: PlatformKind) -> (System, Os) {
    let system = System::boot_small(platform);
    let os = Os::new(&system);
    (system, os)
}

/// Boots a system with an explicit locking mode (for the locking ablation).
pub fn boot_with_locking(platform: PlatformKind, locking: LockingMode) -> (System, Os) {
    let system = System::boot(
        platform,
        MachineConfig::small(),
        SmConfig {
            locking,
            ..SmConfig::default()
        },
    );
    let os = Os::new(&system);
    (system, os)
}

/// Boots a system, builds a hello enclave and returns everything needed to
/// schedule it.
pub fn boot_with_enclave(platform: PlatformKind) -> (System, Os, BuiltEnclave) {
    let (system, mut os) = boot(platform);
    let built = os
        .build_enclave(&EnclaveImage::hello(0x1234), 1)
        .expect("building the hello enclave succeeds");
    (system, os, built)
}

/// Boots a system where the signing enclave and an attestation-client enclave
/// are loaded and the monitor is configured to trust the signing enclave's
/// measurement. Returns `(system, os, client enclave, signing enclave)`.
pub fn boot_attestation_setup(
    platform: PlatformKind,
) -> (System, Os, BuiltEnclave, BuiltEnclave) {
    // Pass 1: learn the signing enclave's measurement on a scratch system.
    let scratch = System::boot_small(platform);
    let mut scratch_os = Os::new(&scratch);
    let probe = scratch_os
        .build_enclave(&EnclaveImage::signing_enclave(), 1)
        .expect("probe build succeeds");
    let signing_measurement = probe.measurement;

    // Pass 2: boot the real system with that measurement hard-coded in the SM.
    let system = System::boot(
        platform,
        MachineConfig::small(),
        SmConfig {
            signing_enclave_measurement: Some(signing_measurement),
            ..SmConfig::default()
        },
    );
    let mut os = Os::new(&system);
    let signing = os
        .build_enclave(&EnclaveImage::signing_enclave(), 1)
        .expect("signing enclave builds");
    let client = os
        .build_enclave(&EnclaveImage::attestation_client(), 1)
        .expect("client enclave builds");
    (system, os, client, signing)
}

/// Boots a system sized for the attestation-service workload: the signing
/// enclave plus `clients` client enclaves (all running the attestation-client
/// image), with the monitor trusting the signing enclave's measurement.
/// Returns `(system, os, client enclaves, signing enclave)`.
pub fn boot_attestation_service(
    platform: PlatformKind,
    clients: usize,
) -> (System, Os, Vec<BuiltEnclave>, BuiltEnclave) {
    // Pass 1: learn the signing enclave's measurement on a scratch system.
    let scratch = System::boot_small(platform);
    let mut scratch_os = Os::new(&scratch);
    let probe = scratch_os
        .build_enclave(&EnclaveImage::signing_enclave(), 1)
        .expect("probe build succeeds");
    let signing_measurement = probe.measurement;

    // Pass 2: a machine with enough half-megabyte regions for the fleet
    // (clients + signing + OS staging), and a PMP budget covering them all
    // so both backends behave identically.
    let config = MachineConfig {
        memory_size: 16 * 512 * 1024,
        dram_region_size: 512 * 1024,
        pmp_entries: 24,
        ..MachineConfig::small()
    };
    assert!(clients + 2 <= config.num_regions(), "too many clients for the geometry");
    let system = System::boot(
        platform,
        config,
        SmConfig {
            signing_enclave_measurement: Some(signing_measurement),
            ..SmConfig::default()
        },
    );
    let mut os = Os::new(&system);
    let signing = os
        .build_enclave(&EnclaveImage::signing_enclave(), 1)
        .expect("signing enclave builds");
    let fleet = (0..clients)
        .map(|_| {
            os.build_enclave(&EnclaveImage::attestation_client(), 1)
                .expect("client enclave builds")
        })
        .collect();
    (system, os, fleet, signing)
}

/// Fixed pure-CPU workload (FNV-1a over a 4 KiB buffer) measuring this
/// machine's single-thread throughput in hashes/sec, so recorded
/// steps-per-second numbers can be compared across machines. Shared by the
/// stats bins' `--baseline` gates.
pub fn calibrate() -> f64 {
    let buffer = [0xa5u8; 4096];
    let rounds = 20_000u64;
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    for round in 0..rounds {
        acc ^= sanctorum_hal::fnv::fnv1a(round ^ acc, &buffer);
    }
    std::hint::black_box(acc);
    rounds as f64 / start.elapsed().as_secs_f64()
}

/// Boots a multi-machine attestation fleet on the Sanctum backend with the
/// default fleet identity seeds — the shared entry point for the fleet
/// benchmark and the workspace-level fleet tests.
pub fn boot_fleet(machines: usize, clients_per_machine: usize) -> sanctorum_os::fleet::Fleet {
    sanctorum_os::fleet::Fleet::boot(&sanctorum_os::fleet::FleetConfig::new(
        machines,
        clients_per_machine,
    ))
}

/// Minimal `"key": number` extractor (the workspace's serde is a no-op
/// shim, so the bench gates parse their own output format by hand).
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_reads_nested_keys() {
        let json = r#"{ "outer": { "steps_per_second": 123.5 }, "n": -2e3 }"#;
        assert_eq!(extract_number(json, "steps_per_second"), Some(123.5));
        assert_eq!(extract_number(json, "n"), Some(-2000.0));
        assert_eq!(extract_number(json, "missing"), None);
    }

    #[test]
    fn helpers_boot_all_configurations() {
        for platform in PlatformKind::ALL {
            let (_, os) = boot(platform);
            assert!(os.free_region_count() > 0);
        }
        let (_, _, built) = boot_with_enclave(PlatformKind::Sanctum);
        assert_eq!(built.threads.len(), 1);
        let (_, _, client, signing) = boot_attestation_setup(PlatformKind::Sanctum);
        assert_ne!(client.eid, signing.eid);
    }
}
