//! Fig. 6 — local attestation: E2 authenticates E1 through SM-mediated
//! mailboxes and the SM-recorded sender measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot_attestation_setup;
use sanctorum_core::mailbox::SenderIdentity;
use sanctorum_os::system::PlatformKind;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_local_attestation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_local_attestation");
    let (system, _os, e1, e2) = boot_attestation_setup(PlatformKind::Sanctum);
    let sm = &system.monitor;
    let e1_session = CallerSession::enclave(e1.eid);
    let e2_session = CallerSession::enclave(e2.eid);

    group.bench_function("e2_attests_e1", |b| {
        b.iter(|| {
            // ① intent, ② message, ③ fetch, ④ compare against expectation.
            sm.accept_mail(e2_session, 0, e1.eid.as_u64()).unwrap();
            sm.send_mail(e1_session, e2.eid, b"prove yourself".into()).unwrap();
            let (_, sender) = sm.get_mail(e2_session, 0).unwrap();
            assert_eq!(
                sender,
                SenderIdentity::Enclave { id: e1.eid, measurement: e1.measurement }
            );
            sender
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_local_attestation
}
criterion_main!(benches);
