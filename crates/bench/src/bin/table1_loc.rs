//! Table 1 — implementation size, grouped the way the paper reports it
//! (Section VII-A: 5785 LOC total for the Sanctum SM, of which 1011 LOC are
//! platform-independent monitor logic, the rest being cryptography, standard
//! library pieces and boot/platform support).
//!
//! Run with: `cargo run -p sanctorum-bench --bin table1_loc`

use std::fs;
use std::path::{Path, PathBuf};

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                rust_files(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
}

fn count_loc(dir: &Path) -> (usize, usize) {
    // Returns (total non-blank lines, lines excluding tests and comments).
    let mut files = Vec::new();
    rust_files(dir, &mut files);
    let mut total = 0;
    let mut code = 0;
    for file in files {
        let Ok(text) = fs::read_to_string(&file) else { continue };
        let mut in_tests = false;
        let mut brace_depth = 0i64;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            total += 1;
            if trimmed.starts_with("#[cfg(test)]") {
                in_tests = true;
                brace_depth = 0;
            }
            if in_tests {
                brace_depth += (line.matches('{').count() as i64) - (line.matches('}').count() as i64);
                if brace_depth <= 0 && line.contains('}') && !trimmed.starts_with("#[cfg(test)]") {
                    in_tests = false;
                }
                continue;
            }
            if trimmed.starts_with("//") {
                continue;
            }
            code += 1;
        }
    }
    (total, code)
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let groups: &[(&str, &[&str], &str)] = &[
        (
            "platform-independent SM",
            &["crates/core"],
            "paper: 1011 LOC of portable C99 monitor logic",
        ),
        (
            "platform-specific backends",
            &["crates/platform-sanctum", "crates/platform-keystone", "crates/hal"],
            "paper: Sanctum-specific code + boot assembly",
        ),
        (
            "cryptography",
            &["crates/crypto"],
            "paper: sha3 + standard library routines",
        ),
        (
            "hardware model (simulation substrate)",
            &["crates/machine"],
            "paper: the Sanctum RTL / a real RISC-V machine (not LOC-counted)",
        ),
        (
            "untrusted OS, enclaves, verifier (harness)",
            &["crates/os", "crates/enclave", "crates/verifier"],
            "paper: Linux + application enclaves (outside the TCB)",
        ),
        (
            "benchmarks, tests and examples",
            &["crates/bench", "tests", "examples"],
            "paper: n/a",
        ),
    ];

    println!("Table 1 — implementation size of this reproduction");
    println!("{:<44} {:>10} {:>12}   note", "component", "code LOC", "LOC w/tests");
    let mut tcb_total = 0;
    for (name, dirs, note) in groups {
        let mut total = 0;
        let mut code = 0;
        for dir in *dirs {
            let (t, c) = count_loc(&root.join(dir));
            total += t;
            code += c;
        }
        if *name == "platform-independent SM"
            || *name == "platform-specific backends"
            || *name == "cryptography"
        {
            tcb_total += code;
        }
        println!("{name:<44} {code:>10} {total:>12}   {note}");
    }
    println!();
    println!("reproduction TCB analogue (SM + backends + crypto): {tcb_total} LOC");
    println!("paper's reported TCB: 5785 LOC total (5264 C + 521 asm), 1011 LOC platform-independent");
}
