//! Fig. 2 — the resource ownership state machine: cost of the
//! block → clean → grant cycle on a DRAM region, per platform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot;
use sanctorum_core::resource::ResourceId;
use sanctorum_hal::domain::DomainKind;
use sanctorum_hal::isolation::RegionId;
use sanctorum_os::system::PlatformKind;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_resource_transitions");
    for platform in PlatformKind::ALL {
        let (system, _os) = boot(platform);
        let os_session = CallerSession::os();
        let region = ResourceId::Region(RegionId::new(2));
        group.bench_with_input(
            BenchmarkId::new("block_clean_grant_cycle", platform.name()),
            &platform,
            |b, _| {
                b.iter(|| {
                    system.monitor.block_resource(os_session, region).unwrap();
                    system.monitor.clean_resource(os_session, region).unwrap();
                    system
                        .monitor
                        .grant_resource(os_session, region, DomainKind::Untrusted)
                        .unwrap();
                })
            },
        );
        // Illegal transitions are rejected cheaply (no cleaning work).
        group.bench_with_input(
            BenchmarkId::new("illegal_clean_rejected", platform.name()),
            &platform,
            |b, _| {
                b.iter(|| {
                    system
                        .monitor
                        .clean_resource(os_session, region)
                        .expect_err("owned resource cannot be cleaned")
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_transitions
}
criterion_main!(benches);
