//! Trusted entropy source abstraction (paper Section IV-B4).
//!
//! The hardware platform must give enclaves and the SM private access to a
//! trusted source of entropy to seed cryptographic keys and perform key
//! agreement. The simulator provides deterministic implementations so tests
//! and benchmarks are reproducible; a real port would wire this to a TRNG.

/// A source of cryptographic-quality randomness trusted by the SM.
pub trait EntropySource {
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Convenience helper returning a fixed-size random array.
    fn random_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill_bytes(&mut out);
        out
    }
}

/// A trivially insecure counter-based entropy source for unit tests that only
/// need *distinct* values, not unpredictable ones.
///
/// # Examples
///
/// ```
/// use sanctorum_hal::entropy::{CounterEntropy, EntropySource};
/// let mut e = CounterEntropy::new(7);
/// let a: [u8; 8] = e.random_array();
/// let b: [u8; 8] = e.random_array();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterEntropy {
    counter: u64,
}

impl CounterEntropy {
    /// Creates a counter entropy source starting at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { counter: seed }
    }
}

impl EntropySource for CounterEntropy {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            self.counter = self.counter.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bytes = self.counter.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_entropy_produces_distinct_blocks() {
        let mut e = CounterEntropy::new(0);
        let a: [u8; 32] = e.random_array();
        let b: [u8; 32] = e.random_array();
        assert_ne!(a, b);
    }

    #[test]
    fn counter_entropy_is_deterministic_per_seed() {
        let mut e1 = CounterEntropy::new(42);
        let mut e2 = CounterEntropy::new(42);
        assert_eq!(e1.random_array::<16>(), e2.random_array::<16>());
    }

    #[test]
    fn fill_bytes_handles_non_multiple_lengths() {
        let mut e = CounterEntropy::new(1);
        let mut buf = [0u8; 13];
        e.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
