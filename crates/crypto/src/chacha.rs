//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Used as the core of the deterministic random-bit generator in [`crate::drbg`]
//! and as the confidentiality half of [`crate::secretbox`].

/// A ChaCha20 cipher instance bound to a key and nonce.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

const CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher from a 32-byte key and a 12-byte nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key: k, nonce: n }
    }

    /// Computes the 64-byte keystream block for `counter`.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Encrypts or decrypts `data` in place starting at block `initial_counter`.
    ///
    /// ChaCha20 is its own inverse, so the same call decrypts.
    ///
    /// # Examples
    ///
    /// ```
    /// use sanctorum_crypto::chacha::ChaCha20;
    /// let cipher = ChaCha20::new(&[7u8; 32], &[1u8; 12]);
    /// let mut msg = *b"attestation evidence payload";
    /// cipher.apply_keystream(1, &mut msg);
    /// assert_ne!(&msg, b"attestation evidence payload");
    /// cipher.apply_keystream(1, &mut msg);
    /// assert_eq!(&msg, b"attestation evidence payload");
    /// ```
    pub fn apply_keystream(&self, initial_counter: u32, data: &mut [u8]) {
        for (block_index, chunk) in data.chunks_mut(64).enumerate() {
            let keystream = self.block(initial_counter.wrapping_add(block_index as u32));
            for (byte, key_byte) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= key_byte;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha3::to_hex;

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 Section 2.3.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce);
        let block = cipher.block(1);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_test_vector_prefix() {
        // RFC 8439 Section 2.4.2 (first ciphertext block).
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce);
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        cipher.apply_keystream(1, &mut data);
        assert_eq!(to_hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
    }

    #[test]
    fn round_trip() {
        let cipher = ChaCha20::new(&[0x42; 32], &[0x24; 12]);
        let plaintext = vec![0x5au8; 300];
        let mut data = plaintext.clone();
        cipher.apply_keystream(7, &mut data);
        assert_ne!(data, plaintext);
        cipher.apply_keystream(7, &mut data);
        assert_eq!(data, plaintext);
    }

    #[test]
    fn distinct_counters_give_distinct_blocks() {
        let cipher = ChaCha20::new(&[1; 32], &[2; 12]);
        assert_ne!(cipher.block(0), cipher.block(1));
    }

    #[test]
    fn distinct_nonces_give_distinct_streams() {
        let a = ChaCha20::new(&[1; 32], &[2; 12]);
        let b = ChaCha20::new(&[1; 32], &[3; 12]);
        assert_ne!(a.block(0), b.block(0));
    }
}
