//! The reified operation model driven by the adversarial explorer.
//!
//! Every interaction a (possibly malicious) OS or enclave can have with the
//! security monitor is expressed as one enumerable [`Op`] value: honest
//! lifecycle traffic (build / run / teardown), raw Fig. 2 resource calls
//! issued out of protocol, mailbox round-trips, probes, batches, and the
//! whole scripted adversary battery ([`AttackKind`]). Ops carry *abstract*
//! selectors (a slot index, a region index, a parameter word) that are
//! resolved against the live world only when the op is applied — so a
//! sequence of ops is meaningful against any world state, which is what makes
//! seeded generation, `(seed, step)` replay and trace shrinking trivial.
//!
//! [`OpWorld`] owns one booted system plus the OS model and applies ops to
//! it, summarizing each step as an [`OpOutcome`] containing only
//! *platform-invariant*, OS-visible facts (status codes, ids, measurements,
//! outcome discriminants — never cycle counts). The differential explorer
//! applies the same trace to a Sanctum world and a Keystone world and
//! requires the outcome streams to be identical modulo declared platform
//! capacity (see `sanctorum_hal::isolation::PlatformCapacity`).

use crate::adversary::AttackKind;
use crate::os::{BuiltEnclave, Os, ThreadRunOutcome};
use crate::system::{PlatformKind, System};
use sanctorum_core::api::{status, status_of, SmApi, SmCall};
use sanctorum_core::attestation::Certificate;
use sanctorum_core::error::SmError;
use sanctorum_core::mailbox::{SenderIdentity, ANY_SENDER, MAILBOX_QUEUE_DEPTH};
use sanctorum_core::measurement::Measurement;
use sanctorum_core::monitor::PublicField;
use sanctorum_core::resource::ResourceId;
use sanctorum_core::session::CallerSession;
use sanctorum_enclave::client::AttestationClient;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_enclave::signing::SigningEnclave;
use sanctorum_hal::addr::VirtAddr;
use sanctorum_hal::domain::{CoreId, DomainKind, EnclaveId};
use sanctorum_hal::isolation::RegionId;
use sanctorum_machine::MachineConfig;
use sanctorum_trust::Tainted;
use sanctorum_crypto::ed25519::Signature;
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_verifier::{ManufacturerCa, RemoteVerifier, SecureSession, SessionPool};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Which canned enclave image an [`Op::Build`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ImageKind {
    /// [`EnclaveImage::hello`] carrying a per-build secret.
    Hello,
    /// [`EnclaveImage::compute`] (no secret).
    Compute,
    /// [`EnclaveImage::faulting`] — AEXes through the unhandled-fault arc.
    Faulting,
    /// [`EnclaveImage::fault_handling`] — exercises the enclave-handler arc.
    FaultHandling,
}

impl ImageKind {
    /// Distinctive tag folded into every generated hello secret; the leak
    /// scan looks for full 64-bit matches, so the tag keeps secrets disjoint
    /// from addresses, counters and other innocent register values.
    pub const SECRET_TAG: u64 = 0x5ec2_e700_0000_0000;

    /// Builds the image for this kind. `param` individualizes the image
    /// (hello secret; compute size) and is folded from a small space so
    /// identical recipes recur within a run — that recurrence is what gives
    /// the measurement-determinism invariant something to compare.
    pub fn instantiate(self, param: u64) -> (EnclaveImage, Option<u64>) {
        match self {
            ImageKind::Hello => {
                let secret = Self::SECRET_TAG | (param & 0x7);
                (EnclaveImage::hello(secret), Some(secret))
            }
            ImageKind::Compute => (EnclaveImage::compute(1 + (param as usize & 1), 32), None),
            ImageKind::Faulting => (EnclaveImage::faulting(), None),
            ImageKind::FaultHandling => (EnclaveImage::fault_handling(), None),
        }
    }

    /// The recipe key for the measurement-determinism invariant: images built
    /// from equal keys must measure equally.
    pub fn recipe(self, param: u64) -> (ImageKind, u64) {
        let normalized = match self {
            ImageKind::Hello => param & 0x7,
            ImageKind::Compute => param & 0x1,
            ImageKind::Faulting | ImageKind::FaultHandling => 0,
        };
        (self, normalized)
    }
}

/// One step of explorer traffic. See the module docs for the selector
/// convention: indices are resolved modulo the live population at apply time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Build an enclave of the given image kind.
    Build {
        /// Image flavour.
        kind: ImageKind,
        /// Image parameter (secret / size selector).
        param: u64,
    },
    /// Tear a live enclave down through the full delete → clean → grant path.
    Teardown {
        /// Live-enclave slot selector.
        slot: u64,
    },
    /// Enter a live enclave's main thread on the issuing hart and drive it.
    Run {
        /// Live-enclave slot selector.
        slot: u64,
        /// Guest step budget (small budgets force preemption).
        budget: u64,
    },
    /// Raise a timer interrupt on the issuing hart (the scheduler tick).
    Tick,
    /// Raw `block_resource` on an arbitrary region.
    BlockRegion {
        /// Region selector.
        region: u64,
    },
    /// Raw `clean_resource` on an arbitrary region.
    CleanRegion {
        /// Region selector.
        region: u64,
    },
    /// Raw `grant_resource` of an arbitrary region to the OS or a live
    /// enclave.
    GrantRegion {
        /// Region selector.
        region: u64,
        /// Owner selector: `0` grants to the OS, otherwise to a live enclave.
        owner: u64,
    },
    /// Raw `delete_enclave` without recycling the regions (delete and
    /// forget — the blocked regions stay for later raw cleans).
    DeleteEnclave {
        /// Live-enclave slot selector.
        slot: u64,
    },
    /// `load_page` into an already-initialized enclave (must be refused).
    LoadAfterInit {
        /// Live-enclave slot selector.
        slot: u64,
    },
    /// OS → enclave mail round-trip; the recorded sender identity must be
    /// [`sanctorum_core::mailbox::SenderIdentity::Untrusted`].
    MailRoundTrip {
        /// Recipient slot selector.
        slot: u64,
        /// Payload word.
        payload: u64,
    },
    /// Enclave → enclave mail; the recorded identity must be the sender's
    /// measurement.
    EnclaveMail {
        /// Sender slot selector.
        from: u64,
        /// Recipient slot selector.
        to: u64,
        /// Payload word.
        payload: u64,
    },
    /// Fabric burst: the recipient arms a wildcard mailbox, the OS queues a
    /// burst of messages, and the recipient drains them FIFO with a
    /// peek-length probe before every fetch — the multi-slot queue path the
    /// single-message `MailRoundTrip` cannot reach.
    MailQueue {
        /// Recipient slot selector.
        slot: u64,
        /// Burst size selector (resolved modulo the queue depth).
        burst: u64,
        /// Payload word (successive messages carry `payload + i`).
        payload: u64,
    },
    /// Pipelined attestation service: up to `clients` live enclaves submit
    /// requests into the signing enclave's wildcard queue, the service
    /// drains and signs them in waves, and a remote verifier batch-verifies
    /// the evidence (the Fig. 7 protocol at fabric scale).
    AttestService {
        /// Client-count selector (resolved to `1..=8`).
        clients: u64,
    },
    /// Public-field probe; the outcome fingerprints the returned bytes.
    GetField {
        /// Field selector (resolved modulo the selector space + 1, so an
        /// invalid selector is periodically exercised too).
        field: u64,
    },
    /// A typed batch of region-lifecycle probes against one region.
    Batch {
        /// Region selector.
        region: u64,
    },
    /// One attack from the scripted battery.
    Attack {
        /// Battery index (resolved through [`AttackKind::resolve`]).
        kind: u64,
        /// Victim slot selector.
        slot: u64,
    },
    /// Crash injection: run the inner op with a crash armed at its
    /// `point`-th fault-point crossing, then run
    /// [`sanctorum_core::monitor::SecurityMonitor::recover`] and reconcile
    /// the OS model against the repaired monitor. The crash-point sweep
    /// harness wraps every op of a trace in one of these per crossed fault
    /// point; the random sampler never draws it (crash placement is the
    /// sweep's job, not the PRNG's).
    Crashed {
        /// Crash at the `point`-th fault-point crossing (0-based) of the
        /// inner op. Points past the op's last crossing mean no crash fires
        /// — the op completes and recovery is a no-op.
        point: u64,
        /// The interrupted op.
        op: Box<Op>,
    },
}

impl Op {
    /// Draws one op from a word source (the explorer's per-hart PRNG
    /// streams). The distribution keeps honest lifecycle traffic dominant so
    /// worlds accumulate enclaves for the adversarial ops to aim at.
    pub fn sample(next: &mut dyn FnMut() -> u64) -> Op {
        match next() % 100 {
            0..=16 => {
                let kind = match next() % 10 {
                    0..=4 => ImageKind::Hello,
                    5..=6 => ImageKind::Compute,
                    7..=8 => ImageKind::Faulting,
                    _ => ImageKind::FaultHandling,
                };
                Op::Build { kind, param: next() }
            }
            17..=25 => Op::Teardown { slot: next() },
            26..=43 => Op::Run { slot: next(), budget: 16 + next() % 512 },
            44..=46 => Op::Tick,
            47..=50 => Op::BlockRegion { region: next() },
            51..=54 => Op::CleanRegion { region: next() },
            55..=58 => Op::GrantRegion { region: next(), owner: next() },
            59..=60 => Op::DeleteEnclave { slot: next() },
            61..=63 => Op::LoadAfterInit { slot: next() },
            64..=69 => Op::MailRoundTrip { slot: next(), payload: next() },
            70..=73 => Op::EnclaveMail { from: next(), to: next(), payload: next() },
            74..=77 => Op::MailQueue { slot: next(), burst: next(), payload: next() },
            78..=80 => Op::AttestService { clients: next() },
            81..=84 => Op::GetField { field: next() },
            85..=88 => Op::Batch { region: next() },
            _ => Op::Attack { kind: next(), slot: next() },
        }
    }

    /// Short label for reports and statistics.
    pub const fn label(&self) -> &'static str {
        match self {
            Op::Build { .. } => "build",
            Op::Teardown { .. } => "teardown",
            Op::Run { .. } => "run",
            Op::Tick => "tick",
            Op::BlockRegion { .. } => "block-region",
            Op::CleanRegion { .. } => "clean-region",
            Op::GrantRegion { .. } => "grant-region",
            Op::DeleteEnclave { .. } => "delete-enclave",
            Op::LoadAfterInit { .. } => "load-after-init",
            Op::MailRoundTrip { .. } => "mail-roundtrip",
            Op::EnclaveMail { .. } => "enclave-mail",
            Op::MailQueue { .. } => "mail-queue",
            Op::AttestService { .. } => "attest-service",
            Op::GetField { .. } => "get-field",
            Op::Batch { .. } => "batch",
            Op::Attack { .. } => "attack",
            Op::Crashed { .. } => "crashed",
        }
    }

    /// Every op label, one per variant, in declaration order. Coverage tests
    /// assert the sampler can reach all of them — except `crashed`, which is
    /// deliberately outside the sampled distribution (the crash-point sweep
    /// places crashes exhaustively; random placement would just duplicate a
    /// sliver of that coverage while perturbing every pinned trace digest).
    pub const ALL_LABELS: [&'static str; 17] = [
        "build",
        "teardown",
        "run",
        "tick",
        "block-region",
        "clean-region",
        "grant-region",
        "delete-enclave",
        "load-after-init",
        "mail-roundtrip",
        "enclave-mail",
        "mail-queue",
        "attest-service",
        "get-field",
        "batch",
        "attack",
        "crashed",
    ];

    /// Whether the issuing hart is part of this op's semantics. `Run`,
    /// `Tick` and `Attack` install contexts / raise interrupts *on the
    /// issuing hart* (and a `Crashed` wrapper inherits its inner op's
    /// sensitivity); every other op is a hart-agnostic monitor call. The
    /// model checker uses this to avoid enumerating the same hart-agnostic
    /// op once per hart.
    pub fn hart_sensitive(&self) -> bool {
        match self {
            Op::Run { .. } | Op::Tick | Op::Attack { .. } => true,
            Op::Crashed { op, .. } => op.hart_sensitive(),
            _ => false,
        }
    }
}

/// The OS-visible, platform-invariant summary of one applied op.
///
/// Two backends driven by the same trace must produce equal outcomes step for
/// step (modulo declared capacity — the explorer's differential policy). The
/// summary deliberately excludes anything platform-variant: cycle counts,
/// flush costs, and entry PCs of resumed threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpOutcome {
    /// The op label (diagnostic).
    pub label: &'static str,
    /// `status::OK`, an error's status code, or [`OpOutcome::SKIPPED`].
    pub status: u64,
    /// Platform-invariant detail word (id, discriminant, fingerprint; 0 when
    /// the call's value is platform-variant).
    pub detail: u64,
    /// The measurement a successful build reported.
    pub measurement: Option<Measurement>,
    /// For mail ops: whether the SM-recorded sender identity matched the
    /// actual sending domain (`None` when no mail was retrieved).
    pub mail_identity_ok: Option<bool>,
    /// For attestation-service ops: whether every selected client ended the
    /// round with verified evidence (`None` for other ops). A shortfall is a
    /// service-plane failure (dropped request, mis-routed or unverifiable
    /// reply), deliberately distinct from the identity-leak flag above.
    pub service_ok: Option<bool>,
    /// For attack ops: whether the attack was blocked.
    pub attack_blocked: Option<bool>,
}

impl OpOutcome {
    /// Status value for ops that resolved to nothing (no live enclave, no
    /// free region): the op was skipped identically on every backend.
    pub const SKIPPED: u64 = u64::MAX;

    fn skipped(label: &'static str) -> Self {
        Self::done(label, Self::SKIPPED, 0)
    }

    fn done(label: &'static str, status: u64, detail: u64) -> Self {
        OpOutcome {
            label,
            status,
            detail,
            measurement: None,
            mail_identity_ok: None,
            service_ok: None,
            attack_blocked: None,
        }
    }

    fn of_result<T>(label: &'static str, result: Result<T, SmError>, detail: impl FnOnce(T) -> u64) -> Self {
        match result {
            Ok(value) => Self::done(label, status::OK, detail(value)),
            Err(err) => Self::done(label, status_of(&err), 0),
        }
    }
}

/// Fingerprints a byte string into an outcome detail word.
pub fn detail_fingerprint(bytes: &[u8]) -> u64 {
    sanctorum_hal::fnv::fnv1a(0, bytes)
}

/// Canonical [`Op::Run`] budget small enough that every canned image is
/// preempted or interrupted mid-run (the re-entry / descheduling arc).
pub const RUN_BUDGET_PREEMPT: u64 = 24;

/// Canonical [`Op::Run`] budget large enough for every canned image to run
/// to completion (exit or fault).
pub const RUN_BUDGET_FULL: u64 = 10_000;

/// One live enclave tracked by an [`OpWorld`].
#[derive(Debug, Clone)]
pub struct LiveEnclave {
    /// The built enclave.
    pub built: BuiltEnclave,
    /// The hello secret, when the image carries one (drives the leak scan).
    pub secret: Option<u64>,
    /// The build recipe (drives the measurement-determinism invariant).
    pub recipe: (ImageKind, u64),
    /// Base of the enclave's virtual range (for post-init probes).
    pub evrange_base: VirtAddr,
}

/// Returns the measurement of the canonical signing-enclave image.
///
/// Measurements depend only on the image and its virtual range — not on the
/// platform, the machine geometry or the placement — so one process-wide
/// probe build serves every explorer world (the cross-platform equality is
/// pinned by `identical_images_measure_identically_across_platforms…`).
pub fn signing_enclave_measurement() -> Measurement {
    static MEASUREMENT: OnceLock<Measurement> = OnceLock::new();
    *MEASUREMENT.get_or_init(|| {
        let scratch = System::boot_small(PlatformKind::Sanctum);
        let mut os = Os::new(&scratch);
        os.build_enclave(&EnclaveImage::signing_enclave(), 1)
            .expect("probe build of the signing enclave succeeds on a fresh system")
            .measurement
    })
}

/// One fully verified attestation exchange, memoized process-wide.
///
/// The key is `(SM attestation public key, requester measurement, nonce,
/// report data)` — everything the signed report depends on — and the value
/// is the signature a full `RemoteVerifier::verify` pass accepted. Both the
/// signature and its verification are *pure deterministic functions* of the
/// key, so replaying the memo across explorer worlds (which share device
/// identities by construction) is observationally identical to re-running
/// the ~45 ms of Ed25519 arithmetic per class in all several hundred worlds
/// of a sweep. Entries are only inserted after a complete verifier pass,
/// and only preloaded into a world whose monitor holds the same attestation
/// key.
type SigClassKey = ([u8; 32], [u8; 32], [u8; 32], [u8; 32]);

fn verified_signature_memo() -> &'static Mutex<BTreeMap<SigClassKey, [u8; 64]>> {
    static MEMO: OnceLock<Mutex<BTreeMap<SigClassKey, [u8; 64]>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The fixed-seed manufacturer CA (pure function of its seed; ~15 ms of
/// Ed25519 derivation, shared across every world of a sweep).
fn manufacturer_ca() -> &'static ManufacturerCa {
    static CA: OnceLock<ManufacturerCa> = OnceLock::new();
    CA.get_or_init(|| ManufacturerCa::new([0x11; 32]))
}

/// Device certificates by device id — issuing one costs an Ed25519
/// signature, and every world with the same device id gets the same bytes.
fn device_certificate(world: &System) -> Certificate {
    static CERTS: OnceLock<Mutex<BTreeMap<u64, Certificate>>> = OnceLock::new();
    let certs = CERTS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let device_id = world.machine.config().device_id;
    certs
        .lock()
        .unwrap()
        .entry(device_id)
        .or_insert_with(|| manufacturer_ca().certify_device(world.machine.root_of_trust()))
        .clone()
}

/// Attestation keypairs by released seed (pure derivation, see
/// [`SigningEnclave::open_service_with`]).
fn derived_keypair(seed: [u8; 32]) -> sanctorum_crypto::ed25519::Keypair {
    static KEYS: OnceLock<Mutex<BTreeMap<[u8; 32], sanctorum_crypto::ed25519::Keypair>>> =
        OnceLock::new();
    let keys = KEYS.get_or_init(|| Mutex::new(BTreeMap::new()));
    keys.lock()
        .unwrap()
        .entry(seed)
        .or_insert_with(|| sanctorum_crypto::ed25519::Keypair::from_seed(seed))
        .clone()
}

/// An X25519 `(secret, public)` pair.
type DhKeypair = ([u8; 32], [u8; 32]);

/// Client X25519 keypairs by wave position (eight seeds total; pure
/// derivation shared across worlds and rounds).
fn client_dh_keypair(position: u8) -> DhKeypair {
    static DH: OnceLock<Mutex<BTreeMap<u8, DhKeypair>>> = OnceLock::new();
    let dh = DH.get_or_init(|| Mutex::new(BTreeMap::new()));
    *dh.lock().unwrap().entry(position).or_insert_with(|| {
        let secret = sanctorum_crypto::x25519::clamp_scalar([0x33 ^ position; 32]);
        let public = sanctorum_crypto::x25519::public_key(&secret);
        (secret, public)
    })
}

/// The signing-enclave half of the attestation-service workload, built
/// lazily by the first [`Op::AttestService`] and kept for the rest of the
/// world's life (a long-running service, not a per-request enclave).
#[derive(Debug)]
struct SigningService {
    built: BuiltEnclave,
    logic: SigningEnclave,
    device_cert: Certificate,
    /// This monitor's attestation public key (the memo namespace).
    attestation_pubkey: [u8; 32],
}

/// A booted system + OS model that ops can be applied to.
#[derive(Debug)]
pub struct OpWorld {
    /// The booted system.
    pub system: System,
    /// The (scriptable) OS model.
    pub os: Os,
    /// Live, fully built enclaves, in build order.
    pub live: Vec<LiveEnclave>,
    /// The signing-enclave service, once an `AttestService` op started it.
    signing: Option<SigningService>,
    /// Total clients attested through the service (diagnostic).
    pub attested_clients: u64,
}

impl OpWorld {
    /// Boots a world on `platform` with the given machine configuration.
    /// The monitor is configured to trust the canonical signing enclave, so
    /// the attestation-service workload can run; everything else uses the
    /// default monitor configuration.
    pub fn boot(platform: PlatformKind, config: MachineConfig) -> Self {
        let system = System::boot(
            platform,
            config,
            sanctorum_core::monitor::SmConfig {
                signing_enclave_measurement: Some(signing_enclave_measurement()),
                ..sanctorum_core::monitor::SmConfig::default()
            },
        );
        let os = Os::new(&system);
        OpWorld {
            system,
            os,
            live: Vec::new(),
            signing: None,
            attested_clients: 0,
        }
    }

    /// All hello secrets currently loaded into live enclaves.
    pub fn live_secrets(&self) -> impl Iterator<Item = u64> + '_ {
        self.live.iter().filter_map(|e| e.secret)
    }

    fn slot(&self, selector: u64) -> Option<usize> {
        if self.live.is_empty() {
            None
        } else {
            Some((selector % self.live.len() as u64) as usize)
        }
    }

    fn region(&self, selector: u64) -> RegionId {
        RegionId::new((selector % self.system.machine.config().num_regions() as u64) as u32)
    }

    fn forget_if_dead(&mut self, eid: EnclaveId) {
        if !self.system.monitor.enclaves().contains(&eid) {
            self.live.retain(|e| e.built.eid != eid);
        }
    }

    /// Whether `op` would actually reach the monitor if applied now, or be
    /// skipped because its selectors resolve to nothing (no live enclave,
    /// no free region).
    ///
    /// This is exactly the skip predicate [`apply`](Self::apply) uses, split
    /// out so search drivers can enumerate the feasible op space instead of
    /// rejection-sampling it. One deliberate asymmetry: `AttestService` is
    /// *enabled* whenever the signing service exists or can be built, even
    /// with no live clients — applying it then still builds the service
    /// (a state change) before reporting the round skipped, and the
    /// predicate must match that behavior, not second-guess it.
    pub fn is_enabled(&self, op: &Op) -> bool {
        match op {
            Op::Build { .. } => self.os.free_region_count() > 0,
            Op::Teardown { .. }
            | Op::Run { .. }
            | Op::DeleteEnclave { .. }
            | Op::LoadAfterInit { .. }
            | Op::MailRoundTrip { .. }
            | Op::EnclaveMail { .. }
            | Op::MailQueue { .. } => !self.live.is_empty(),
            Op::Tick
            | Op::BlockRegion { .. }
            | Op::CleanRegion { .. }
            | Op::GrantRegion { .. }
            | Op::GetField { .. }
            | Op::Batch { .. } => true,
            Op::AttestService { .. } => {
                self.signing.is_some() || self.os.free_region_count() > 0
            }
            Op::Attack { kind, .. } => {
                let kind = AttackKind::resolve(*kind);
                let feasible =
                    !kind.builds_own_enclave() || self.os.free_region_count() > 0;
                !self.live.is_empty() && feasible
            }
            Op::Crashed { op, .. } => self.is_enabled(op),
        }
    }

    /// The canonical owner selector resolving to live slot `slot` under the
    /// [`Op::GrantRegion`] convention (`slot = owner % live`, enclave iff
    /// `owner % (live + 1) != 0`): the smallest selector naming that slot.
    fn canonical_owner(live: u64, slot: u64) -> u64 {
        (0..)
            .map(|k| slot + k * live)
            .find(|o| *o >= 1 && o % (live + 1) != 0)
            .expect("every residue class contains a non-OS selector")
    }

    /// Enumerates the feasible op space of this world under *canonical*
    /// selectors — one op per distinct behavior class rather than one per
    /// raw selector value (slot selectors range over the live population,
    /// region selectors over the physical regions, parameters are pinned to
    /// representatives). Every returned op satisfies
    /// [`is_enabled`](Self::is_enabled); applying any of them reaches the
    /// monitor rather than skipping.
    ///
    /// This is the branching alphabet of the bounded model checker: in a
    /// small world it stays small (tens of ops), and its exhaustive closure
    /// covers everything `Op::sample` can reach modulo selector aliasing.
    pub fn enabled_ops(&self) -> Vec<Op> {
        const CANONICAL_PAYLOAD: u64 = 9;
        let mut ops = Vec::new();
        let live = self.live.len() as u64;
        let regions = self.system.machine.config().num_regions() as u64;
        let free = self.os.free_region_count();
        if free > 0 {
            for kind in [
                ImageKind::Hello,
                ImageKind::Compute,
                ImageKind::Faulting,
                ImageKind::FaultHandling,
            ] {
                ops.push(Op::Build { kind, param: 0 });
            }
        }
        for slot in 0..live {
            ops.push(Op::Teardown { slot });
            for budget in [RUN_BUDGET_PREEMPT, RUN_BUDGET_FULL] {
                ops.push(Op::Run { slot, budget });
            }
        }
        ops.push(Op::Tick);
        for region in 0..regions {
            ops.push(Op::BlockRegion { region });
            ops.push(Op::CleanRegion { region });
            ops.push(Op::GrantRegion { region, owner: 0 });
            for slot in 0..live {
                ops.push(Op::GrantRegion {
                    region,
                    owner: Self::canonical_owner(live, slot),
                });
            }
            ops.push(Op::Batch { region });
        }
        for slot in 0..live {
            ops.push(Op::DeleteEnclave { slot });
            ops.push(Op::LoadAfterInit { slot });
            ops.push(Op::MailRoundTrip { slot, payload: CANONICAL_PAYLOAD });
            ops.push(Op::MailQueue { slot, burst: 0, payload: CANONICAL_PAYLOAD });
        }
        for from in 0..live {
            for to in 0..live {
                ops.push(Op::EnclaveMail { from, to, payload: CANONICAL_PAYLOAD });
            }
        }
        // Only offered with clients present: a clientless round would still
        // permanently consume a region for the service enclave, which in a
        // tiny world prunes the rest of the space for no coverage gain.
        if live > 0 && (self.signing.is_some() || free > 0) {
            ops.push(Op::AttestService { clients: 0 });
        }
        // 0..=3 name the public fields; 4 is the canonical invalid selector.
        for field in 0..5 {
            ops.push(Op::GetField { field });
        }
        for kind in 0..AttackKind::ALL.len() as u64 {
            if AttackKind::ALL[kind as usize].builds_own_enclave() && free == 0 {
                continue;
            }
            for slot in 0..live {
                ops.push(Op::Attack { kind, slot });
            }
        }
        debug_assert!(ops.iter().all(|op| self.is_enabled(op)));
        ops
    }

    /// Fingerprints the *model-layer* state that `Machine::state_digest` and
    /// the monitor's audit digest cannot see: the free pool's order (a
    /// stack — order decides which region the next build takes), the live
    /// roster with secrets and build recipes, and whether the signing
    /// service exists. A visited-set key missing any of these would merge
    /// states with different futures and prune unsoundly.
    pub fn model_fingerprint(&self) -> u64 {
        fn fold(h: u64, v: u64) -> u64 {
            sanctorum_hal::fnv::fnv1a(h, &v.to_le_bytes())
        }
        let mut h = 0x0f1u64;
        for region in self.os.free_regions() {
            h = fold(h, region.index() as u64);
        }
        h = fold(h, u64::MAX);
        for entry in &self.live {
            h = fold(h, entry.built.eid.as_u64());
            h = fold(h, entry.secret.unwrap_or(u64::MAX));
            let (kind, param) = entry.recipe;
            h = fold(h, kind as u64);
            h = fold(h, param);
            h = fold(h, entry.evrange_base.as_u64());
        }
        fold(h, self.signing.is_some() as u64)
    }

    /// Applies one op issued from `hart`, returning its outcome summary.
    /// Ops whose selectors resolve to nothing (no live enclave, no free
    /// region — see [`is_enabled`](Self::is_enabled)) are skipped;
    /// everything else maps onto SM API calls via
    /// [`execute`](Self::execute).
    pub fn apply(&mut self, hart: CoreId, op: &Op) -> OpOutcome {
        if !self.is_enabled(op) {
            return OpOutcome::skipped(op.label());
        }
        self.execute(hart, op)
    }

    /// Executes an op [`is_enabled`](Self::is_enabled) has vouched for.
    /// Selector resolution cannot fail here — the enabled predicate is
    /// exactly the conjunction of the old inline skip checks.
    fn execute(&mut self, hart: CoreId, op: &Op) -> OpOutcome {
        let label = op.label();
        let os_session = CallerSession::os();
        match op {
            Op::Build { kind, param } => {
                let (image, secret) = kind.instantiate(*param);
                let evrange_base = image.evrange_base;
                match self.os.build_enclave(&image, 1) {
                    Ok(built) => {
                        let mut outcome =
                            OpOutcome::done(label, status::OK, built.eid.as_u64());
                        outcome.measurement = Some(built.measurement);
                        self.live.push(LiveEnclave {
                            built,
                            secret,
                            recipe: kind.recipe(*param),
                            evrange_base,
                        });
                        outcome
                    }
                    Err(err) => OpOutcome::done(label, status_of(&err), 0),
                }
            }
            Op::Teardown { slot } => {
                let index = self.slot(*slot).expect("gated by is_enabled");
                let built = self.live[index].built.clone();
                let result = self.os.teardown_enclave(&built);
                self.forget_if_dead(built.eid);
                OpOutcome::of_result(label, result, |_| 0)
            }
            Op::Run { slot, budget } => {
                let index = self.slot(*slot).expect("gated by is_enabled");
                let built = self.live[index].built.clone();
                let tid = built.main_thread();
                let result = self.os.run_thread(&built, tid, hart, *budget);
                OpOutcome::of_result(label, result, |outcome| match outcome {
                    ThreadRunOutcome::Exited { .. } => 1,
                    ThreadRunOutcome::Interrupted { .. } => 2,
                    ThreadRunOutcome::Faulted { .. } => 3,
                    ThreadRunOutcome::Preempted => 4,
                })
            }
            Op::Tick => {
                let result = self.os.tick(hart);
                OpOutcome::of_result(label, result, |descheduled| descheduled as u64)
            }
            Op::BlockRegion { region } => {
                let id = ResourceId::Region(self.region(*region));
                OpOutcome::of_result(
                    label,
                    self.system.monitor.block_resource(os_session, id),
                    |_| 0,
                )
            }
            Op::CleanRegion { region } => {
                let id = ResourceId::Region(self.region(*region));
                // The cleaning cost is platform-variant; only the status is
                // comparable.
                OpOutcome::of_result(
                    label,
                    self.system.monitor.clean_resource(os_session, id),
                    |_| 0,
                )
            }
            Op::GrantRegion { region, owner } => {
                let id = ResourceId::Region(self.region(*region));
                let new_owner = match self.slot(*owner) {
                    Some(index) if *owner % (self.live.len() as u64 + 1) != 0 => {
                        DomainKind::Enclave(self.live[index].built.eid)
                    }
                    _ => DomainKind::Untrusted,
                };
                OpOutcome::of_result(
                    label,
                    self.system.monitor.grant_resource(os_session, id, new_owner),
                    |_| 0,
                )
            }
            Op::DeleteEnclave { slot } => {
                let index = self.slot(*slot).expect("gated by is_enabled");
                let eid = self.live[index].built.eid;
                let result = self.system.monitor.delete_enclave(os_session, eid);
                self.forget_if_dead(eid);
                OpOutcome::of_result(label, result, |_| 0)
            }
            Op::LoadAfterInit { slot } => {
                let index = self.slot(*slot).expect("gated by is_enabled");
                let entry = &self.live[index];
                let result = self.system.monitor.load_page(
                    os_session,
                    entry.built.eid,
                    entry.evrange_base,
                    Tainted::new(self.os.staging_base()),
                    sanctorum_hal::perm::MemPerms::RW,
                );
                OpOutcome::of_result(label, result, |p| p.as_u64())
            }
            Op::MailRoundTrip { slot, payload } => {
                let index = self.slot(*slot).expect("gated by is_enabled");
                let eid = self.live[index].built.eid;
                self.mail_exchange(label, None, eid, *payload)
            }
            Op::EnclaveMail { from, to, payload } => {
                let from_index = self.slot(*from).expect("gated by is_enabled");
                let to_index = self.slot(*to).expect("gated by is_enabled");
                let sender = self.live[from_index].built.eid;
                let recipient = self.live[to_index].built.eid;
                self.mail_exchange(label, Some(sender), recipient, *payload)
            }
            Op::MailQueue { slot, burst, payload } => {
                let index = self.slot(*slot).expect("gated by is_enabled");
                let recipient = self.live[index].built.eid;
                let burst = 1 + (*burst % MAILBOX_QUEUE_DEPTH as u64);
                self.mail_queue_burst(label, recipient, burst, *payload)
            }
            Op::AttestService { clients } => {
                let clients = 1 + (*clients % 8) as usize;
                self.attest_service(label, clients)
            }
            Op::GetField { field } => {
                let selector = field % 5;
                match PublicField::from_selector(selector) {
                    Some(field) => {
                        let bytes = self.system.monitor.get_field(os_session, field);
                        OpOutcome::done(label, status::OK, detail_fingerprint(&bytes))
                    }
                    None => OpOutcome::done(
                        label,
                        status_of(&SmError::InvalidArgument { reason: "unknown field" }),
                        0,
                    ),
                }
            }
            Op::Batch { region } => {
                let region = self.region(*region);
                let calls = vec![
                    SmCall::GetField { field: 3 },
                    SmCall::BlockRegion { region },
                    SmCall::CleanRegion { region },
                    SmCall::GrantRegion { region, owner_eid: 0 },
                    SmCall::GetField { field: 0 },
                ];
                match self.system.monitor.batch(os_session, &calls) {
                    Ok(outcomes) => {
                        // Per-entry statuses are platform-invariant; values
                        // (lengths vs cycle counts) are not, so only the
                        // status stream is fingerprinted.
                        let statuses: Vec<u8> = outcomes
                            .iter()
                            .flat_map(|o| o.status.to_le_bytes())
                            .collect();
                        OpOutcome::done(label, status::OK, detail_fingerprint(&statuses))
                    }
                    Err(err) => OpOutcome::done(label, status_of(&err), 0),
                }
            }
            Op::Attack { kind, slot } => {
                let kind = AttackKind::resolve(*kind);
                let index = self.slot(*slot).expect("gated by is_enabled");
                let victim = self.live[index].built.clone();
                match kind.run(&self.system, &mut self.os, &victim, &victim, hart) {
                    Ok(outcome) => {
                        let mut summary = OpOutcome::done(label, status::OK, 0);
                        summary.attack_blocked = Some(outcome.blocked());
                        summary
                    }
                    Err(err) => OpOutcome::done(label, status_of(&err), 0),
                }
            }
            Op::Crashed { point, op } => {
                use sanctorum_machine::{FaultPlan, InjectedCrash};
                sanctorum_machine::fault::silence_injected_crash_reports();
                self.system.machine.fault_injector().arm(FaultPlan::CrashAt {
                    site: None,
                    crossing: *point,
                });
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.execute(hart, op)
                }));
                self.system.machine.fault_injector().disarm();
                let fired = match result {
                    // The inner op completed: it crossed fewer than `point`
                    // fault points, so no crash fired.
                    Ok(_) => false,
                    Err(payload) => {
                        // Only the injected crash is survivable; any other
                        // panic is a real bug and keeps unwinding.
                        if payload.downcast_ref::<InjectedCrash>().is_none() {
                            std::panic::resume_unwind(payload);
                        }
                        true
                    }
                };
                // Reboot-and-recover: the journal replays pending intents,
                // the quarantine is retried, and the OS model re-derives its
                // bookkeeping from the repaired monitor. All of it is
                // idempotent, so the uncrashed path runs it too — the op's
                // observable protocol is the same either way.
                let report = self.system.monitor.recover();
                self.reconcile_after_recovery();
                OpOutcome::done(
                    label,
                    status::OK,
                    (report.replayed as u64) << 1 | u64::from(fired),
                )
            }
        }
    }

    /// The model-layer half of crash recovery: after
    /// [`sanctorum_core::monitor::SecurityMonitor::recover`] repaired the
    /// monitor's shared state, drop roster entries for enclaves the crash
    /// destroyed mid-create and re-derive the OS free pool from the
    /// monitor's resource map (a crash between the SM calls of a multi-call
    /// sequence leaves the OS's private bookkeeping stale).
    pub fn reconcile_after_recovery(&mut self) {
        let live_ids = self.system.monitor.enclaves();
        self.live.retain(|e| live_ids.contains(&e.built.eid));
        if let Some(service) = &self.signing {
            if !live_ids.contains(&service.built.eid) {
                self.signing = None;
            }
        }
        self.os.reconcile_free_pool();
    }

    /// Checks that the SM-recorded identity tag of a delivered message is
    /// *truthful*: an enclave tag must name a live enclave and carry exactly
    /// that enclave's measurement (dead senders cannot appear — the monitor
    /// purges their undelivered mail at teardown, precisely so a recycled
    /// enclave id can never impersonate its previous incarnation).
    fn identity_is_truthful(&self, identity: &SenderIdentity) -> bool {
        match identity {
            SenderIdentity::Untrusted => true,
            SenderIdentity::Enclave { id, measurement } => self
                .live
                .iter()
                .find(|e| e.built.eid == *id)
                .map(|e| e.built.measurement == *measurement)
                .unwrap_or(false),
        }
    }

    /// Drives one accept → send → get mail exchange and records whether the
    /// SM-attributed sender identity matches the actual sender.
    fn mail_exchange(
        &mut self,
        label: &'static str,
        sender: Option<EnclaveId>,
        recipient: EnclaveId,
        payload: u64,
    ) -> OpOutcome {
        let recipient_session = CallerSession::enclave(recipient);
        let sender_session = match sender {
            Some(eid) => CallerSession::enclave(eid),
            None => CallerSession::os(),
        };
        let sender_id = sender.map(|e| e.as_u64()).unwrap_or(0);
        if let Err(err) = self
            .system
            .monitor
            .accept_mail(recipient_session, 0, sender_id)
        {
            return OpOutcome::done(label, status_of(&err), 1);
        }
        if let Err(err) =
            self.system
                .monitor
                .send_mail(sender_session, recipient, Tainted::new(&payload.to_le_bytes()))
        {
            return OpOutcome::done(label, status_of(&err), 2);
        }
        match self.system.monitor.get_mail(recipient_session, 0) {
            Ok((bytes, identity)) => {
                // The fabric queues messages, so the fetch returns the
                // *oldest* entry — usually the message just sent, but under
                // queue pressure possibly an earlier one. When it is ours
                // (payload match), the tag must name the actual sender
                // exactly; an older message's tag must still be truthful.
                let identity_ok = if bytes == payload.to_le_bytes() {
                    match (&identity, sender) {
                        (SenderIdentity::Untrusted, None) => true,
                        (SenderIdentity::Enclave { id, .. }, Some(eid)) if *id != eid => false,
                        (SenderIdentity::Enclave { .. }, Some(_)) => {
                            self.identity_is_truthful(&identity)
                        }
                        _ => false,
                    }
                } else {
                    self.identity_is_truthful(&identity)
                };
                let mut outcome = OpOutcome::done(
                    label,
                    status::OK,
                    detail_fingerprint(&bytes),
                );
                outcome.mail_identity_ok = Some(identity_ok);
                outcome
            }
            Err(err) => OpOutcome::done(label, status_of(&err), 3),
        }
    }

    /// Drives one fabric burst: wildcard-arm mailbox 0, queue `burst` OS
    /// messages, then drain the whole mailbox FIFO — peeking the length
    /// before every fetch and cross-checking it against what the fetch
    /// returns. Identity truthfulness is checked on every drained message.
    fn mail_queue_burst(
        &mut self,
        label: &'static str,
        recipient: EnclaveId,
        burst: u64,
        payload: u64,
    ) -> OpOutcome {
        let recipient_session = CallerSession::enclave(recipient);
        if let Err(err) = self
            .system
            .monitor
            .accept_mail(recipient_session, 0, ANY_SENDER)
        {
            return OpOutcome::done(label, status_of(&err), 1);
        }
        let mut sent = 0u64;
        let mut last_send_status = status::OK;
        for i in 0..burst {
            match self.system.monitor.send_mail(
                CallerSession::os(),
                recipient,
                Tainted::new(&(payload.wrapping_add(i)).to_le_bytes()),
            ) {
                Ok(()) => sent += 1,
                // Quota or queue backpressure mid-burst is a legitimate,
                // platform-invariant outcome; drain whatever got through.
                Err(err) => {
                    last_send_status = status_of(&err);
                    break;
                }
            }
        }
        let mut drained_bytes = Vec::new();
        let mut identity_ok = true;
        while let Ok((peeked, _sender)) = self.system.monitor.peek_mail(recipient_session, 0) {
            match self.system.monitor.get_mail(recipient_session, 0) {
                Ok((bytes, identity)) => {
                    // The non-destructive probe must describe exactly the
                    // message the fetch then delivers.
                    identity_ok &= peeked == bytes.len();
                    identity_ok &= self.identity_is_truthful(&identity);
                    drained_bytes.extend_from_slice(&bytes);
                }
                // A transient backend fault defers delivery; the message
                // stays queued, which is degradation, not inconsistency.
                Err(SmError::Again) => break,
                Err(_) => {
                    // peek saw a message but get could not deliver it —
                    // a fabric consistency failure.
                    identity_ok = false;
                    break;
                }
            }
        }
        // Leave no wildcard filter behind: re-arm for the OS, the sender
        // `MailRoundTrip` exchanges expect.
        let _ = self.system.monitor.accept_mail(recipient_session, 0, 0);
        let mut detail = detail_fingerprint(&drained_bytes);
        detail ^= sent.rotate_left(17) ^ last_send_status;
        let mut outcome = OpOutcome::done(label, status::OK, detail);
        outcome.mail_identity_ok = Some(identity_ok);
        outcome
    }

    /// Runs the pipelined attestation service over up to `clients` live
    /// enclaves: waves of requests into the signing enclave's wildcard
    /// queue, a drain per wave, then batch verification of the collected
    /// evidence. Returns how many clients ended with a verified secure
    /// session in the outcome detail.
    fn attest_service(&mut self, label: &'static str, clients: usize) -> OpOutcome {
        // The service enclave is built lazily and lives for the rest of the
        // world (its region is never returned to the pool). A free region is
        // guaranteed here: `is_enabled` requires one whenever the service
        // does not exist yet.
        if self.signing.is_none() {
            let built = match self.os.build_enclave(&EnclaveImage::signing_enclave(), 1) {
                Ok(built) => built,
                Err(err) => return OpOutcome::done(label, status_of(&err), 0),
            };
            let mut logic = SigningEnclave::new(built.eid);
            if let Err(err) = logic.open_service_with(&self.system.monitor, derived_keypair) {
                return OpOutcome::done(label, status_of(&err), 0);
            }
            let attestation_pubkey = self
                .system
                .monitor
                .identity()
                .attestation_keypair
                .public()
                .to_bytes();
            // Warm the service's signature cache with every class already
            // verified under this attestation key (see the memo's docs).
            for ((pubkey, measurement, nonce, report_data), sig) in
                verified_signature_memo().lock().unwrap().iter()
            {
                if *pubkey == attestation_pubkey {
                    logic.preload_signature(
                        Measurement(*measurement),
                        *nonce,
                        *report_data,
                        Signature::from_bytes(sig),
                    );
                }
            }
            let device_cert = device_certificate(&self.system);
            self.signing = Some(SigningService {
                built,
                logic,
                device_cert,
                attestation_pubkey,
            });
        }
        if self.live.is_empty() {
            return OpOutcome::skipped(label);
        }
        let count = clients.min(self.live.len());
        let client_enclaves: Vec<(EnclaveId, Measurement)> = self
            .live
            .iter()
            .take(count)
            .map(|e| (e.built.eid, e.built.measurement))
            .collect();
        let service = self.signing.as_mut().expect("service built above");
        let sm = self.system.monitor.as_ref();

        // The verifier's DRBG seed is fixed, so a fresh verifier issues the
        // same nonce schedule in every op of every world — which is what
        // lets the verified-signature memo and the signing enclave's own
        // cache turn repeat rounds into pure fabric traffic.
        let verifier = RemoteVerifier::new(
            manufacturer_ca().root_public_key(),
            client_enclaves.iter().map(|(_, m)| *m).collect(),
            [0x42; 32],
        );
        let sessions = SessionPool::new();
        let mut attested_echo = 0u64;
        let mut session_replaced = false;

        // Waves bounded by the request-queue depth: every submit in a wave
        // must fit the signing enclave's wildcard mailbox.
        for (wave_index, wave) in client_enclaves.chunks(MAILBOX_QUEUE_DEPTH).enumerate() {
            let challenges = verifier.begin_many(wave.len());
            let mut wave_clients = Vec::with_capacity(wave.len());
            for (i, ((eid, measurement), challenge)) in
                wave.iter().zip(&challenges).enumerate()
            {
                // The DH seed depends only on the wave position, so the
                // challenge class (nonce, report data) is stable across
                // worlds and ops — the memo's whole premise.
                let position = (wave_index * MAILBOX_QUEUE_DEPTH + i) as u8;
                let (dh_secret, dh_public) = client_dh_keypair(position);
                let client = AttestationClient::from_dh_keypair(*eid, dh_secret, dh_public);
                if client
                    .submit_request(sm, service.built.eid, challenge.nonce)
                    .is_ok()
                {
                    wave_clients.push((client, *measurement, *challenge));
                }
            }
            if service.logic.drain(sm).is_err() {
                break;
            }
            for (client, measurement, challenge) in wave_clients {
                let Ok(response) = client.collect_response(sm, service.device_cert.clone())
                else {
                    continue;
                };
                // Structural checks first — these hold memo or no memo: the
                // reply must echo *this* client's SM-recorded measurement,
                // *this* challenge's nonce, and the binding of *this*
                // client's DH key. A reply failing any of them was
                // mis-routed, mis-attributed or forged.
                let report = &response.evidence.report;
                let binding = Sha3_256::digest(&client.dh_public());
                if report.enclave_measurement != measurement
                    || report.nonce != challenge.nonce
                    || report.report_data != binding
                {
                    continue;
                }
                let class: SigClassKey = (
                    service.attestation_pubkey,
                    *measurement.as_bytes(),
                    report.nonce,
                    report.report_data,
                );
                let known = verified_signature_memo()
                    .lock()
                    .unwrap()
                    .get(&class)
                    .copied();
                if let Some(verified_sig) = known {
                    // This exact class has survived a full verifier pass in
                    // some world of this process; the deterministic
                    // signature must be bit-identical.
                    if response.evidence.signature.to_bytes() == verified_sig {
                        attested_echo += 1;
                    }
                    continue;
                }
                let Ok(mut session) =
                    verifier.verify(&response.evidence, &response.enclave_dh_public)
                else {
                    continue;
                };
                // The attested channel must actually work end to end: the
                // enclave side derives the same keys from its DH share.
                let shared = client.shared_secret(&challenge.verifier_dh_public);
                let mut enclave_session = SecureSession::new(&shared, &challenge.nonce);
                let sealed = session.seal(b"service-hello");
                if enclave_session.open(&sealed).is_ok() {
                    verified_signature_memo()
                        .lock()
                        .unwrap()
                        .insert(class, response.evidence.signature.to_bytes());
                    // Every client id this round selected is distinct and
                    // the pool is per-op, so a `Replaced` outcome would mean
                    // one client's verified session displaced another's — the
                    // session-fixation shape. Surface it as a service-plane
                    // violation, never silently.
                    if !sessions.insert(client.eid().as_u64(), session).is_fresh() {
                        session_replaced = true;
                    }
                }
            }
        }
        let attested = sessions.len() as u64 + attested_echo;
        self.attested_clients += attested;
        let mut outcome = OpOutcome::done(label, status::OK, attested);
        // Every client the workload selected must end the round with
        // verified evidence; fewer means the service plane dropped,
        // mis-routed or mis-attributed a request somewhere between submit
        // and verification. A replaced session is the same class of
        // violation: two requests resolved to one client id.
        outcome.service_ok = Some(attested as usize == count && !session_replaced);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn sampling_is_deterministic_and_covers_the_op_space() {
        let mut a = words(7);
        let mut b = words(7);
        let ops_a: Vec<Op> = (0..500).map(|_| Op::sample(&mut a)).collect();
        let ops_b: Vec<Op> = (0..500).map(|_| Op::sample(&mut b)).collect();
        assert_eq!(ops_a, ops_b);
        let labels: std::collections::BTreeSet<&str> =
            ops_a.iter().map(|o| o.label()).collect();
        assert!(labels.len() >= 12, "got only {labels:?}");
    }

    #[test]
    fn sample_reaches_every_variant_every_attack_and_every_image() {
        // Exhaustive coverage of the sampler's range: every op label, every
        // attack kind and every image kind must be reachable, or the
        // explorer silently stops exercising part of the surface (and the
        // model checker's alphabet diverges from the sampled one). 4000
        // deterministic draws make the rarest class (~1% per draw)
        // overwhelmingly certain while staying instant.
        let mut stream = words(0xc0_7e1a);
        let ops: Vec<Op> = (0..4000).map(|_| Op::sample(&mut stream)).collect();

        let labels: std::collections::BTreeSet<&str> =
            ops.iter().map(|o| o.label()).collect();
        for label in Op::ALL_LABELS {
            // `crashed` is deliberately outside the sampled distribution —
            // the crash-point sweep places crashes exhaustively instead.
            if label == "crashed" {
                continue;
            }
            assert!(labels.contains(label), "sampler never drew {label:?}");
        }
        assert!(!labels.contains("crashed"), "the sampler must not draw crash ops");
        assert_eq!(labels.len(), Op::ALL_LABELS.len() - 1, "unknown label drawn");

        // Sampled attack selectors are huge PRNG words, which resolve into
        // the pinned SAMPLED battery — all of it, and nothing else (newer
        // attacks are reached only through small direct selectors).
        let kinds: std::collections::BTreeSet<AttackKind> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Attack { kind, .. } => Some(AttackKind::resolve(*kind)),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            AttackKind::SAMPLED.iter().copied().collect(),
            "sampled selectors must cover exactly the SAMPLED battery"
        );

        let images: std::collections::BTreeSet<ImageKind> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Build { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(images.len(), 4, "image kinds missing: got {images:?}");
    }

    #[test]
    fn skipped_ops_report_the_skip_status() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, MachineConfig::small());
        let outcome = world.apply(CoreId::new(0), &Op::Teardown { slot: 3 });
        assert_eq!(outcome.status, OpOutcome::SKIPPED);
        let outcome = world.apply(CoreId::new(0), &Op::Run { slot: 0, budget: 100 });
        assert_eq!(outcome.status, OpOutcome::SKIPPED);
    }

    #[test]
    fn build_run_teardown_round_trips_through_ops() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, MachineConfig::small());
        let hart = CoreId::new(0);
        let built = world.apply(hart, &Op::Build { kind: ImageKind::Hello, param: 3 });
        assert_eq!(built.status, status::OK);
        assert!(built.measurement.is_some());
        assert_eq!(world.live.len(), 1);
        assert_eq!(world.live_secrets().count(), 1);

        let ran = world.apply(hart, &Op::Run { slot: 0, budget: 10_000 });
        assert_eq!((ran.status, ran.detail), (status::OK, 1), "exited");

        let mail = world.apply(hart, &Op::MailRoundTrip { slot: 0, payload: 9 });
        assert_eq!(mail.status, status::OK);
        assert_eq!(mail.mail_identity_ok, Some(true));

        let torn = world.apply(hart, &Op::Teardown { slot: 0 });
        assert_eq!(torn.status, status::OK);
        assert!(world.live.is_empty());
    }

    #[test]
    fn attacks_through_ops_are_blocked() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, MachineConfig::small());
        let hart = CoreId::new(0);
        world.apply(hart, &Op::Build { kind: ImageKind::Hello, param: 1 });
        for kind in 0..AttackKind::ALL.len() as u64 {
            let outcome = world.apply(hart, &Op::Attack { kind, slot: 0 });
            assert_eq!(outcome.status, status::OK, "attack {kind} errored");
            assert_eq!(outcome.attack_blocked, Some(true), "attack {kind} succeeded");
        }
    }
}
