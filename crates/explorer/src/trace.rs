//! Seeded trace generation: per-hart op streams interleaved by a PRNG
//! scheduler.
//!
//! Each simulated hart owns an independent SplitMix64 stream derived from the
//! run seed, and a separate scheduler stream picks which hart issues the next
//! op. The whole interleaving is therefore a pure function of `(seed, harts,
//! len)`: regenerating a prefix is all it takes to replay a failure, and a
//! trace remains executable after ops are deleted (selectors are abstract —
//! see `sanctorum_os::ops`), which is what makes shrinking sound.

use proptest::TestRng;
use sanctorum_os::ops::Op;

/// One scheduled step: the hart that issues the op, and the op itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedOp {
    /// Index of the issuing hart.
    pub hart: u32,
    /// The operation.
    pub op: Op,
}

/// Derives the op-stream seed for one hart from the run seed.
fn hart_stream_seed(seed: u64, hart: u32) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(hart as u64 + 1)
}

/// Generates the interleaved trace for a run: `len` ops drawn from `harts`
/// per-hart streams, scheduled by a PRNG choice per step.
pub fn generate(seed: u64, harts: u32, len: usize) -> Vec<TracedOp> {
    assert!(harts > 0, "at least one hart stream is required");
    let mut scheduler = TestRng::with_seed(seed);
    let mut streams: Vec<TestRng> = (0..harts)
        .map(|hart| TestRng::with_seed(hart_stream_seed(seed, hart)))
        .collect();
    (0..len)
        .map(|_| {
            let hart = (scheduler.next_u64() % harts as u64) as u32;
            let stream = &mut streams[hart as usize];
            let op = Op::sample(&mut || stream.next_u64());
            TracedOp { hart, op }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_in_the_seed() {
        let a = generate(99, 2, 300);
        let b = generate(99, 2, 300);
        assert_eq!(a, b);
        let c = generate(100, 2, 300);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn prefix_regeneration_matches() {
        // Replaying from (seed, step) regenerates exactly the original
        // prefix — the property the failure reports rely on.
        let full = generate(7, 2, 250);
        let prefix = generate(7, 2, 120);
        assert_eq!(&full[..120], &prefix[..]);
    }

    #[test]
    fn both_harts_are_scheduled() {
        let trace = generate(3, 2, 200);
        assert!(trace.iter().any(|t| t.hart == 0));
        assert!(trace.iter().any(|t| t.hart == 1));
    }
}
