//! Property tests for the incremental hot-path machinery (ISSUE 3):
//!
//! * **audit equivalence** — after any seeded op sequence, the monitor's
//!   generation-cached `audit()` is indistinguishable from a from-scratch
//!   `audit_full()` rebuild, on both backends, at every step;
//! * **dirty-page completeness** — `Machine::drain_dirty_pages` never
//!   under-reports: every DRAM page whose contents changed across a step is
//!   in the drained set (checked against a shadow full-DRAM oracle).
//!
//! Both properties are exactly what the explorer's per-step invariant kernel
//! relies on; if either breaks, incremental checking silently goes blind, so
//! they are pinned here with seeded, replayable cases.

use proptest::prelude::*;
use sanctorum_explorer::trace;
use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use sanctorum_hal::domain::CoreId;
use sanctorum_machine::MachineConfig;
use sanctorum_os::ops::OpWorld;
use sanctorum_os::system::PlatformKind;

/// A compact machine (1 MiB DRAM in 128 KiB regions) so the full-DRAM shadow
/// oracle stays cheap while still exercising multi-region lifecycles.
fn oracle_machine_config() -> MachineConfig {
    MachineConfig {
        memory_base: PhysAddr::new(0x8000_0000),
        memory_size: 1024 * 1024,
        dram_region_size: 128 * 1024,
        pmp_entries: 16,
        device_id: 0x0bac1e00,
        ..MachineConfig::small()
    }
}

fn read_all_dram(world: &OpWorld) -> Vec<u8> {
    let config = world.system.machine.config();
    let mut image = vec![0u8; config.memory_size];
    world
        .system
        .machine
        .phys_read(config.memory_base, &mut image)
        .expect("full DRAM read");
    image
}

proptest! {
    /// Incremental `audit()` ≡ from-scratch `audit_full()` after every op of
    /// a seeded trace, on both platform backends.
    #[test]
    fn incremental_audit_equals_full_rebuild(seed in 0u64..1 << 48) {
        for platform in PlatformKind::ALL {
            let mut world = OpWorld::boot(platform, oracle_machine_config());
            let ops = trace::generate(seed, 2, 50);
            for traced in &ops {
                world.apply(CoreId::new(traced.hart), &traced.op);
                let incremental = world.system.monitor.audit();
                let full = world.system.monitor.audit_full();
                prop_assert_eq!(&incremental, &full, "audit diverged (platform {:?}, seed {:#x})", platform, seed);
                // A second incremental audit with no interleaved mutation
                // must be a pure cache hit with identical content.
                prop_assert_eq!(&world.system.monitor.audit(), &incremental);
            }
        }
    }

    /// `drain_dirty_pages` reports a superset of the pages whose contents
    /// actually changed, for every op of a seeded trace (stores, DMA
    /// attacks, SM copies and region scrubs included).
    #[test]
    fn dirty_pages_never_under_report(seed in 0u64..1 << 48) {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, oracle_machine_config());
        // Consume boot-time writes so the shadow starts synchronized.
        let _ = world.system.machine.drain_dirty_pages();
        let mut shadow = read_all_dram(&world);
        let ops = trace::generate(seed, 2, 40);
        for (step, traced) in ops.iter().enumerate() {
            world.apply(CoreId::new(traced.hart), &traced.op);
            let drained = world.system.machine.drain_dirty_pages();
            let current = read_all_dram(&world);
            for page in 0..current.len() / PAGE_SIZE {
                let range = page * PAGE_SIZE..(page + 1) * PAGE_SIZE;
                if current[range.clone()] != shadow[range] {
                    prop_assert!(
                        drained.binary_search(&(page as u64)).is_ok(),
                        "page {page} changed at step {step} (seed {seed:#x}, op {:?}) but was not reported dirty",
                        traced.op
                    );
                }
            }
            shadow = current;
        }
    }
}
