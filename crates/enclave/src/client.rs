//! Enclave-side client of the remote-attestation protocol
//! (the `E1` of paper Figs. 6–7).

use crate::signing::{AttestationReply, SigningEnclave, REPLY_MAILBOX};
use sanctorum_core::api::SmApi;
use sanctorum_core::attestation::{AttestationEvidence, Certificate};
use sanctorum_core::error::{SmError, SmResult};
use sanctorum_core::monitor::SecurityMonitor;
use sanctorum_core::session::CallerSession;
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_crypto::x25519;
use sanctorum_hal::domain::EnclaveId;
use sanctorum_trust::Tainted;

/// The request an enclave mails to the signing enclave: the verifier's nonce
/// plus report data binding the attestation to the enclave's ephemeral DH
/// key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestationRequest {
    /// Verifier-chosen anti-replay nonce.
    pub nonce: [u8; 32],
    /// Enclave-chosen binding data (hash of its DH public value).
    pub report_data: [u8; 32],
}

impl AttestationRequest {
    /// Serializes the request for transport through a mailbox.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.report_data);
        out
    }

    /// Parses a request; returns `None` if the length is wrong.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 64 {
            return None;
        }
        let mut nonce = [0u8; 32];
        let mut report_data = [0u8; 32];
        nonce.copy_from_slice(&bytes[..32]);
        report_data.copy_from_slice(&bytes[32..]);
        Some(Self { nonce, report_data })
    }
}

/// What the attested enclave sends back to the remote verifier over the
/// untrusted network: its DH public value plus the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationResponse {
    /// The enclave's ephemeral X25519 public value.
    pub enclave_dh_public: [u8; 32],
    /// The signed evidence and certificate chain.
    pub evidence: AttestationEvidence,
}

/// Host-side logic of an enclave obtaining a remote attestation
/// (see the crate-level substitution note).
#[derive(Debug)]
pub struct AttestationClient {
    eid: EnclaveId,
    dh_secret: [u8; 32],
    dh_public: [u8; 32],
}

impl AttestationClient {
    /// Creates the client for enclave `eid` with an ephemeral DH key derived
    /// from `dh_seed` (in-enclave code would draw this from the platform
    /// entropy source).
    pub fn new(eid: EnclaveId, dh_seed: [u8; 32]) -> Self {
        let dh_secret = x25519::clamp_scalar(dh_seed);
        let dh_public = x25519::public_key(&dh_secret);
        Self::from_dh_keypair(eid, dh_secret, dh_public)
    }

    /// Harness constructor: binds the client to a precomputed X25519
    /// keypair. Derivation from a seed is pure and deterministic, so
    /// harnesses that instantiate many clients from a small seed space
    /// (the explorer's service workload) memoize it instead of re-running
    /// the scalar multiplication per client per round.
    pub fn from_dh_keypair(eid: EnclaveId, dh_secret: [u8; 32], dh_public: [u8; 32]) -> Self {
        Self {
            eid,
            dh_secret,
            dh_public,
        }
    }

    /// Returns the enclave id.
    pub fn eid(&self) -> EnclaveId {
        self.eid
    }

    /// Returns the enclave's DH public value (sent to the verifier).
    pub fn dh_public(&self) -> [u8; 32] {
        self.dh_public
    }

    /// Computes the X25519 shared secret with the verifier.
    pub fn shared_secret(&self, verifier_public: &[u8; 32]) -> [u8; 32] {
        x25519::shared_secret(&self.dh_secret, verifier_public)
    }

    fn session(&self) -> CallerSession {
        CallerSession::enclave(self.eid)
    }

    /// Submits an attestation request into the signing enclave's queue
    /// without waiting for the reply (the pipelined half of Fig. 7 step ③):
    /// arms this enclave's reply mailbox for the signing enclave and mails
    /// `(nonce, report_data)` through the SM, which tags the request with
    /// our measurement. Many clients can have requests queued at once; the
    /// service drains them in FIFO order.
    ///
    /// # Errors
    ///
    /// Propagates SM API errors (a full request queue surfaces as
    /// [`SmError::MailboxUnavailable`], an exhausted sender quota as
    /// [`SmError::OutOfResources`]).
    pub fn submit_request(
        &self,
        sm: &SecurityMonitor,
        signing_eid: EnclaveId,
        nonce: [u8; 32],
    ) -> SmResult<()> {
        let report_data = Sha3_256::digest(&self.dh_public);
        let request = AttestationRequest { nonce, report_data };
        sm.accept_mail(self.session(), REPLY_MAILBOX, signing_eid.as_u64())?;
        let message = request.encode();
        sm.send_mail(self.session(), signing_eid, Tainted::new(&message))
    }

    /// Collects one signed reply from the reply mailbox (Fig. 7 step ⑥) and
    /// assembles the evidence with the SM's certificate and the device
    /// certificate the OS provides.
    ///
    /// # Errors
    ///
    /// [`SmError::MailboxUnavailable`] if no reply has arrived yet, and
    /// [`SmError::InvalidArgument`] for a malformed reply.
    pub fn collect_response(
        &self,
        sm: &SecurityMonitor,
        device_certificate: Certificate,
    ) -> SmResult<AttestationResponse> {
        let (bytes, _sender) = sm.get_mail(self.session(), REPLY_MAILBOX)?;
        let reply = AttestationReply::decode(&bytes).ok_or(SmError::InvalidArgument {
            reason: "malformed signature reply",
        })?;
        // ⑦ Assemble the evidence: the SM certificate chains the attestation
        // key to the device; the device certificate chains it to the
        // manufacturer.
        let evidence = AttestationEvidence {
            report: reply.report,
            signature: reply.signature,
            sm_certificate: sm.sm_certificate(),
            device_certificate,
        };
        Ok(AttestationResponse {
            enclave_dh_public: self.dh_public,
            evidence,
        })
    }

    /// Runs the serial local half of Fig. 7 end to end: mails
    /// `(nonce, report_data)` to the signing enclave, lets it process the
    /// single request, retrieves the signed reply and assembles the
    /// evidence. This is the one-request-at-a-time baseline the pipelined
    /// [`AttestationClient::submit_request`] /
    /// [`AttestationClient::collect_response`] path is measured against.
    ///
    /// # Errors
    ///
    /// Propagates SM API errors (mailbox protocol violations, unauthorized
    /// key release, and so on).
    pub fn obtain_attestation(
        &self,
        sm: &SecurityMonitor,
        signing: &SigningEnclave,
        nonce: [u8; 32],
        device_certificate: Certificate,
    ) -> SmResult<AttestationResponse> {
        // ①/② The signing enclave must be willing to hear from us, and we
        // must be willing to receive its reply.
        signing.accept_request_from(sm, self.eid)?;

        // ③ Send the request through the SM (which tags it with our
        // measurement).
        self.submit_request(sm, signing.eid(), nonce)?;

        // ④/⑤ The signing enclave fetches the key and signs.
        let (_report, _signature) = signing.process_request(sm)?;

        // ⑥/⑦ Fetch the signed reply and assemble the evidence.
        self.collect_response(sm, device_certificate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_keys_are_deterministic_and_distinct() {
        let a = AttestationClient::new(EnclaveId::new(1), [1; 32]);
        let b = AttestationClient::new(EnclaveId::new(1), [1; 32]);
        let c = AttestationClient::new(EnclaveId::new(1), [2; 32]);
        assert_eq!(a.dh_public(), b.dh_public());
        assert_ne!(a.dh_public(), c.dh_public());
    }

    #[test]
    fn shared_secret_agrees_with_peer() {
        let client = AttestationClient::new(EnclaveId::new(1), [3; 32]);
        let peer_secret = x25519::clamp_scalar([4; 32]);
        let peer_public = x25519::public_key(&peer_secret);
        assert_eq!(
            client.shared_secret(&peer_public),
            x25519::shared_secret(&peer_secret, &client.dh_public())
        );
    }
}
