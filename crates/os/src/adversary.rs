//! Scripted malicious-OS behaviours.
//!
//! Each function mounts one attack from the paper's threat model (Section IV)
//! against a live enclave and reports whether the monitor / isolation
//! primitive stopped it. The security test-suite asserts that every attack is
//! blocked; the functions return structured results rather than panicking so
//! the benchmark harness can also tabulate them.

use crate::os::{BuiltEnclave, Os, ThreadRunOutcome};
use crate::system::System;
use sanctorum_core::api::SmApi;
use sanctorum_core::error::{SmError, SmResult};
use sanctorum_core::mailbox::SenderIdentity;
use sanctorum_core::session::CallerSession;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::guest::{ExitReason, GuestProgram};
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_machine::pagetable::PageTableBuilder;
use sanctorum_machine::trap::TrapCause;
use sanctorum_trust::Tainted;

/// The outcome of one attack attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack was stopped (by an API error or a hardware fault).
    Blocked,
    /// The attack succeeded — a security failure in the monitor model.
    Succeeded,
}

impl AttackOutcome {
    /// Returns `true` if the attack was stopped.
    pub fn blocked(self) -> bool {
        self == AttackOutcome::Blocked
    }
}

/// Returns the base physical address of an enclave's first region.
pub fn enclave_phys_base(system: &System, enclave: &BuiltEnclave) -> PhysAddr {
    let config = system.machine.config();
    config
        .memory_base
        .offset((enclave.regions[0].index() * config.dram_region_size) as u64)
}

/// Runs an attack guest on `core`, consuming any residual pending interrupts
/// first: an interrupt trap de-schedules the guest *before* the probing
/// access runs, which would otherwise report "blocked" without the isolation
/// primitive ever being exercised (found by the adversarial explorer, whose
/// traces interleave scheduler ticks with attacks).
fn run_attack_guest(system: &System, core: CoreId, program: &GuestProgram) -> Option<ExitReason> {
    for _ in 0..64 {
        let result = system.machine.run_guest(core, program, 100);
        if !matches!(result.exit, ExitReason::Trap(TrapCause::Interrupt(_))) {
            return Some(result.exit);
        }
    }
    // The probe never ran. A verdict would be meaningless — callers must
    // fail *closed* (report the attack as unstopped) so the harness problem
    // surfaces instead of silently passing the battery.
    None
}

/// Attack 1: the OS directly loads from enclave physical memory using its
/// supervisor privilege (machine-level physical addressing).
pub fn direct_physical_read(system: &System, enclave: &BuiltEnclave, core: CoreId) -> AttackOutcome {
    let target = enclave_phys_base(system, enclave);
    system.machine.install_context(
        core,
        DomainKind::Untrusted,
        PrivilegeLevel::Supervisor,
        None,
        0,
    );
    let program = GuestProgram::load_and_exit(target.as_u64());
    match run_attack_guest(system, core, &program) {
        Some(ExitReason::Trap(TrapCause::IsolationFault { .. })) => AttackOutcome::Blocked,
        Some(ExitReason::Completed) | None => AttackOutcome::Succeeded,
        Some(_) => AttackOutcome::Blocked,
    }
}

/// Attack 2: the OS maps enclave physical memory into its own page tables and
/// reads through the mapping (the classic controlled-channel style mapping
/// attack; the page walk succeeds but the access must still fault).
pub fn malicious_mapping_read(
    system: &System,
    enclave: &BuiltEnclave,
    core: CoreId,
) -> AttackOutcome {
    let target = enclave_phys_base(system, enclave);
    // Build an OS page table in the staging area pointing at enclave memory
    // (halfway into the region, clear of the page the OS model stages enclave
    // images in, whatever the configured region size).
    let config = system.machine.config();
    let staging = config
        .memory_base
        .offset(((config.num_regions() - 1) * config.dram_region_size) as u64
            + config.dram_region_size as u64 / 2);
    let root = system.machine.with_memory_mut(|mem| {
        // Pre-zero the root and a small pool of table pages in OS memory.
        let mut pool: Vec<PhysAddr> = (1..4).rev().map(|i| staging.offset(i * 4096)).collect();
        mem.zero_page(staging).expect("staging memory is OS-owned");
        for page in &pool {
            mem.zero_page(*page).expect("staging memory is OS-owned");
        }
        let mut builder = PageTableBuilder::new(staging);
        builder
            .map(
                mem,
                sanctorum_hal::addr::VirtAddr::new(0x7000_0000).page_number(),
                target.page_number(),
                MemPerms::RW,
                || pool.pop(),
            )
            .expect("building the malicious mapping itself succeeds");
        builder.root()
    });
    system.machine.install_context(
        core,
        DomainKind::Untrusted,
        PrivilegeLevel::Supervisor,
        Some(root),
        0,
    );
    let program = GuestProgram::load_and_exit(0x7000_0000);
    match run_attack_guest(system, core, &program) {
        Some(ExitReason::Trap(TrapCause::IsolationFault { .. })) => AttackOutcome::Blocked,
        Some(ExitReason::Completed) | None => AttackOutcome::Succeeded,
        Some(_) => AttackOutcome::Blocked,
    }
}

/// Attack 3: an untrusted device DMAs enclave memory out to OS memory.
pub fn dma_exfiltration(system: &System, enclave: &BuiltEnclave) -> AttackOutcome {
    let target = enclave_phys_base(system, enclave);
    let staging = system.machine.config().memory_base.offset(
        ((system.machine.config().num_regions() - 1) * system.machine.config().dram_region_size)
            as u64,
    );
    match system.machine.dma_copy(target, staging, 4096) {
        Err(_) => AttackOutcome::Blocked,
        Ok(_) => AttackOutcome::Succeeded,
    }
}

/// Attack 4: the OS deletes an enclave while one of its threads is running,
/// hoping to reclaim (and read) its memory without cleaning.
pub fn delete_running_enclave(os: &Os, enclave: &BuiltEnclave) -> AttackOutcome {
    match os.monitor().delete_enclave(CallerSession::os(), enclave.eid) {
        Err(SmError::InvalidState { .. }) => AttackOutcome::Blocked,
        Err(_) => AttackOutcome::Blocked,
        Ok(()) => AttackOutcome::Succeeded,
    }
}

/// Attack 5: the OS modifies an enclave after initialization by loading an
/// extra page (which would change its contents without changing its
/// measurement).
pub fn modify_after_init(os: &Os, enclave: &BuiltEnclave) -> AttackOutcome {
    let result = os.monitor().load_page(
        CallerSession::os(),
        enclave.eid,
        sanctorum_hal::addr::VirtAddr::new(0x10_5000),
        Tainted::new(os.staging_base()),
        MemPerms::RW,
    );
    match result {
        Err(SmError::InvalidState { .. }) => AttackOutcome::Blocked,
        Err(_) => AttackOutcome::Blocked,
        Ok(_) => AttackOutcome::Succeeded,
    }
}

/// Attack 6: the OS tries to impersonate an enclave over local attestation by
/// mailing the victim directly. The SM tags the message as coming from the
/// untrusted domain, so the recipient cannot be fooled; the attack "succeeds"
/// only if the recipient would see an enclave identity.
pub fn mail_impersonation(os: &Os, victim: &BuiltEnclave) -> AttackOutcome {
    // The attacker cannot mint an authenticated enclave session, so the
    // victim's half of the protocol uses a harness-forged session standing in
    // for the victim itself; the attack is the OS-side send.
    let victim_session = CallerSession::enclave(victim.eid);
    // Victim expects mail from the OS (sender id 0) — e.g. untrusted input.
    if os.monitor().accept_mail(victim_session, 0, 0).is_err() {
        return AttackOutcome::Blocked;
    }
    if os
        .monitor()
        .send_mail(
            CallerSession::os(),
            victim.eid,
            Tainted::new(b"i am the signing enclave, honest"),
        )
        .is_err()
    {
        return AttackOutcome::Blocked;
    }
    match os.monitor().get_mail(victim_session, 0) {
        Ok((_, SenderIdentity::Untrusted)) => AttackOutcome::Blocked,
        Ok((_, SenderIdentity::Enclave { .. })) => AttackOutcome::Succeeded,
        Err(_) => AttackOutcome::Blocked,
    }
}

/// Attack 11: mailbox squatting and quota exhaustion. The OS first tries to
/// deposit into a mailbox armed for a *different* sender (squatting on a
/// directed conversation), then floods a wildcard-armed mailbox to exhaust
/// the fabric: the per-mailbox queue must backpressure, the fabric-wide
/// sender quota must cap the OS's total in-flight mail, and — crucially —
/// draining must fully refund both, or the flood has permanently wedged the
/// victim's mail plane (a successful denial of service).
pub fn mailbox_quota_exhaustion(os: &Os, victim: &BuiltEnclave) -> AttackOutcome {
    use sanctorum_core::mailbox::{ANY_SENDER, MAILBOX_QUEUE_DEPTH, MAIL_SENDER_QUOTA};
    let sm = os.monitor();
    let victim_session = CallerSession::enclave(victim.eid);

    // Phase 1 — squatting: the victim awaits a specific enclave peer on
    // every mailbox (earlier trace ops may have left wildcard filters
    // behind, so all of them are re-armed); the OS's deposit must be
    // refused outright.
    let mailboxes = sanctorum_core::enclave::MAILBOXES_PER_ENCLAVE;
    for mb in 0..mailboxes {
        if sm.accept_mail(victim_session, mb, victim.eid.as_u64()).is_err() {
            return AttackOutcome::Blocked;
        }
    }
    if sm.send_mail(CallerSession::os(), victim.eid, Tainted::new(b"squat")).is_ok() {
        return AttackOutcome::Succeeded;
    }

    // Phase 2 — flooding: the victim opens every mailbox in service
    // (wildcard) mode, so raw queue capacity exceeds the fabric quota
    // (MAILBOXES_PER_ENCLAVE × MAILBOX_QUEUE_DEPTH > MAIL_SENDER_QUOTA).
    // The OS sends until something says stop; the sender quota — not queue
    // space — must be what cuts it off, and it must never be exceeded.
    debug_assert!(mailboxes * MAILBOX_QUEUE_DEPTH > MAIL_SENDER_QUOTA);
    for mb in 0..mailboxes {
        if sm.accept_mail(victim_session, mb, ANY_SENDER).is_err() {
            return AttackOutcome::Blocked;
        }
    }
    let mut delivered = 0usize;
    for _ in 0..(mailboxes * MAILBOX_QUEUE_DEPTH + 4) {
        if sm.send_mail(CallerSession::os(), victim.eid, Tainted::new(b"flood")).is_err() {
            break;
        }
        delivered += 1;
    }
    // The quota bounds what got through. (Mid-trace the OS may already have
    // mail in flight elsewhere, so `delivered` can be smaller than the full
    // quota — but never larger.)
    if delivered > MAIL_SENDER_QUOTA {
        return AttackOutcome::Succeeded;
    }

    // Phase 3 — recovery: draining the victim's queues (the flood plus any
    // legitimate mail queued before it — the count is whatever it is
    // mid-trace) must refund queue space and quota in full; a fabric the
    // flood wedged permanently is a successful denial of service.
    let mut drained = 0usize;
    for mb in 0..mailboxes {
        while sm.get_mail(victim_session, mb).is_ok() {
            drained += 1;
        }
    }
    if drained < delivered {
        return AttackOutcome::Succeeded;
    }
    if delivered > 0 {
        // Quota was refunded: one more send fits again, and is drained so
        // the world is left as found.
        if sm.send_mail(CallerSession::os(), victim.eid, Tainted::new(b"post-drain")).is_err() {
            return AttackOutcome::Succeeded;
        }
        if sm.get_mail(victim_session, 0).is_err() {
            return AttackOutcome::Succeeded;
        }
    }
    // No wildcard service mailboxes left behind: re-arm each for the victim
    // itself (a filter nobody else can match without its cooperation).
    for mb in 0..mailboxes {
        let _ = sm.accept_mail(victim_session, mb, victim.eid.as_u64());
    }
    AttackOutcome::Blocked
}

/// Attack 7: a non-signing enclave asks the SM for the attestation key.
pub fn steal_attestation_key(os: &Os, rogue: &BuiltEnclave) -> AttackOutcome {
    match os
        .monitor()
        .get_attestation_key(CallerSession::enclave(rogue.eid))
    {
        Err(SmError::Unauthorized) | Err(SmError::InvalidState { .. }) => AttackOutcome::Blocked,
        Err(_) => AttackOutcome::Blocked,
        Ok(_) => AttackOutcome::Succeeded,
    }
}

/// Attack 8: the OS grants a region that belongs to a live enclave to itself
/// (resource-state confusion).
pub fn steal_enclave_region(os: &Os, enclave: &BuiltEnclave) -> AttackOutcome {
    use sanctorum_core::resource::ResourceId;
    let result = os.monitor().grant_resource(
        CallerSession::os(),
        ResourceId::Region(enclave.regions[0]),
        DomainKind::Untrusted,
    );
    match result {
        Err(_) => AttackOutcome::Blocked,
        Ok(()) => AttackOutcome::Succeeded,
    }
}

/// Attack 9: TOCTOU page mutation during loading. The OS stages a page,
/// calls `load_page`, and overwrites the staged source the moment the call
/// returns — then keeps loading. If the SM measured or copied the source
/// lazily (after returning), the mutated bytes would end up inside the
/// enclave, or the measurement would stop describing the contents. The SM's
/// copy-then-measure step must be atomic with respect to the caller: the
/// enclave's pages and measurement must match an honestly built twin exactly.
///
/// # Errors
///
/// Fails only on harness preconditions (no free region to build in) — the
/// attack verdict itself is always reported through the outcome.
pub fn toctou_page_mutation(system: &System, os: &mut Os) -> SmResult<AttackOutcome> {
    let image = EnclaveImage::hello(0x70c7_0eac);
    // An honest build of the same image fixes the expected identity.
    let reference = os.build_enclave(&image, 1)?;
    let expected = reference.measurement;
    os.teardown_enclave(&reference)?;

    // Adversarial build: clobber the staged source page right after every
    // `load_page` returns.
    let built = os.build_enclave_mutated(&image, 1, |machine, staging, _| {
        machine
            .phys_write(staging, &[0xa5u8; PAGE_SIZE])
            .expect("staging memory is OS-owned");
    })?;

    // Neither the enclave's identity nor its contents may reflect the
    // mutation. Data pages sit right after the page-table pages, in the
    // bump-allocation order the measurement's no-aliasing invariant fixes.
    let mut intact = built.measurement == expected;
    let config = system.machine.config();
    let region_base = config
        .memory_base
        .offset((built.regions[0].index() * config.dram_region_size) as u64);
    let pt_pages = PageTableBuilder::table_pages_needed(
        image.evrange_base.page_number(),
        image.evrange_len / PAGE_SIZE as u64,
    );
    for (index, (_, _, contents)) in image.pages.iter().enumerate() {
        let dst = region_base.offset((pt_pages + index as u64) * PAGE_SIZE as u64);
        let mut page = vec![0u8; PAGE_SIZE];
        system.machine.phys_read(dst, &mut page).map_err(|_| SmError::Memory)?;
        let n = contents.len().min(PAGE_SIZE);
        intact &= page[..n] == contents[..n] && page[n..].iter().all(|&b| b == 0);
    }
    os.teardown_enclave(&built)?;
    Ok(if intact { AttackOutcome::Blocked } else { AttackOutcome::Succeeded })
}

/// Attack 10: interrupt storm around `enter_enclave`. The OS keeps a timer
/// interrupt pending at every entry, so the thread is de-scheduled (AEX)
/// before retiring a single instruction, over and over. Each forced exit
/// must scrub the core (no enclave register value becomes OS-visible), and
/// the storm must not corrupt the thread: once the interrupts stop it still
/// runs to a clean voluntary exit.
///
/// # Errors
///
/// Fails only on harness preconditions (no free region to build in).
pub fn interrupt_storm_on_entry(
    system: &System,
    os: &mut Os,
    core: CoreId,
) -> SmResult<AttackOutcome> {
    let secret = 0x5707_0041_5ec2_e700u64;
    let victim = os.build_enclave(&EnclaveImage::hello(secret), 1)?;
    let tid = victim.main_thread();
    let leaked = |system: &System| {
        (0..system.machine.num_harts()).any(|h| {
            let hart = system.machine.hart(CoreId::new(h as u32));
            !hart.domain.is_enclave() && hart.regs.contains(&secret)
        })
    };

    let mut blocked = true;
    for _ in 0..8 {
        // Pend the interrupt *before* entry: the storm hits the entry path
        // itself, not a running enclave.
        os.tick(core)?;
        let outcome = os.run_thread(&victim, tid, core, 10_000)?;
        blocked &= matches!(
            outcome,
            ThreadRunOutcome::Interrupted { .. } | ThreadRunOutcome::Preempted
        );
        blocked &= !leaked(system);
    }
    // Storm over: once the interrupt queue drains (the caller's environment
    // may hold residual scheduler ticks of its own), the thread must still
    // make progress and exit cleanly.
    let mut exited = false;
    for _ in 0..64 {
        let outcome = os.run_thread(&victim, tid, core, 10_000)?;
        blocked &= !leaked(system);
        match outcome {
            ThreadRunOutcome::Exited { .. } => {
                exited = true;
                break;
            }
            ThreadRunOutcome::Interrupted { .. } | ThreadRunOutcome::Preempted => continue,
            ThreadRunOutcome::Faulted { .. } => break,
        }
    }
    blocked &= exited;
    os.teardown_enclave(&victim)?;
    Ok(if blocked { AttackOutcome::Blocked } else { AttackOutcome::Succeeded })
}

/// Attack 12: fault storm around region reclamation. The OS tears an enclave
/// down and then hammers the reclamation path while every page scrub suffers
/// an injected backend fault. The monitor must degrade gracefully — refuse
/// the clean with [`SmError::Again`] and park the region in quarantine
/// (still `Blocked`, still isolated) — rather than either wedging or, worse,
/// completing the transition over unscrubbed memory. Once the storm stops,
/// `recover()` must release the quarantine and the normal lifecycle must
/// resume with the region fully zeroed: any secret byte surviving into the
/// reusable region is an isolation failure the next owner could read.
///
/// This is the attack that catches the `skip-quarantine` weakening: a
/// monitor that shrugs off scrub faults hands the storm a dirty region.
///
/// # Errors
///
/// Fails only on harness preconditions (no free region to build the
/// sacrificial enclave in).
pub fn fault_storm_reclaim(system: &System, os: &mut Os) -> SmResult<AttackOutcome> {
    use sanctorum_core::resource::ResourceId;
    use sanctorum_machine::FaultPlan;
    let secret = 0xfa57_5ec2_e700_5107u64;
    let victim = os.build_enclave(&EnclaveImage::hello(secret), 1)?;
    let region = victim.regions[0];
    let sm = std::sync::Arc::clone(os.monitor());
    let session = CallerSession::os();
    sm.delete_enclave(session, victim.eid)?;

    // The storm: every scrub-page crossing fails until disarmed.
    system.machine.fault_injector().arm(FaultPlan::FailOp {
        site: Some("monitor.scrub-page"),
        times: u64::MAX,
    });
    let stormy = sm.clean_resource(session, ResourceId::Region(region));
    system.machine.fault_injector().disarm();

    let mut blocked = match stormy {
        // Honest degradation: Again + quarantined (and therefore still
        // refusing grants while the backend misbehaves).
        Err(SmError::Again) => {
            sm.quarantined_regions().contains(&region)
                && matches!(
                    sm.grant_resource(session, ResourceId::Region(region), DomainKind::Untrusted),
                    Err(SmError::Again)
                )
        }
        Err(_) => false,
        // A clean that "succeeded" under the storm skipped the scrub.
        Ok(_) => false,
    };

    // Storm over: recovery re-scrubs and releases the quarantine, and the
    // normal reclamation path resumes.
    let _ = sm.recover();
    blocked &= !sm.quarantined_regions().contains(&region);
    if stormy.is_err() {
        blocked &= sm.clean_resource(session, ResourceId::Region(region)).is_ok();
    }

    // Residue scan over the whole (now reusable) region.
    let config = system.machine.config();
    let base = config
        .memory_base
        .offset((region.index() * config.dram_region_size) as u64);
    let mut page = vec![0u8; PAGE_SIZE];
    for offset in (0..config.dram_region_size as u64).step_by(PAGE_SIZE) {
        system
            .machine
            .phys_read(base.offset(offset), &mut page)
            .map_err(|_| SmError::Memory)?;
        if page.iter().any(|&b| b != 0) {
            blocked = false;
            break;
        }
    }

    // Leave the world as found: the region goes back to the OS free pool.
    let restored = sm
        .grant_resource(session, ResourceId::Region(region), DomainKind::Untrusted)
        .is_ok();
    blocked &= restored;
    if restored {
        os.return_region(region);
    }
    Ok(if blocked { AttackOutcome::Blocked } else { AttackOutcome::Succeeded })
}

/// The adversary battery, reified: every scripted attack as an enumerable
/// value, so harnesses (the attack-battery tests, the adversarial explorer's
/// `Op::Attack`) can pick attacks programmatically instead of calling the
/// functions one by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackKind {
    /// [`direct_physical_read`]
    DirectPhysicalRead,
    /// [`malicious_mapping_read`]
    MaliciousMappingRead,
    /// [`dma_exfiltration`]
    DmaExfiltration,
    /// [`modify_after_init`]
    ModifyAfterInit,
    /// [`mail_impersonation`]
    MailImpersonation,
    /// [`steal_attestation_key`]
    StealAttestationKey,
    /// [`steal_enclave_region`]
    StealEnclaveRegion,
    /// [`toctou_page_mutation`]
    ToctouPageMutation,
    /// [`interrupt_storm_on_entry`]
    InterruptStormOnEntry,
    /// [`mailbox_quota_exhaustion`]
    MailboxQuotaExhaustion,
    /// [`fault_storm_reclaim`]
    FaultStorm,
}

impl AttackKind {
    /// Every attack in the battery, in battery order.
    pub const ALL: [AttackKind; 11] = [
        AttackKind::DirectPhysicalRead,
        AttackKind::MaliciousMappingRead,
        AttackKind::DmaExfiltration,
        AttackKind::ModifyAfterInit,
        AttackKind::MailImpersonation,
        AttackKind::StealAttestationKey,
        AttackKind::StealEnclaveRegion,
        AttackKind::ToctouPageMutation,
        AttackKind::InterruptStormOnEntry,
        AttackKind::MailboxQuotaExhaustion,
        AttackKind::FaultStorm,
    ];

    /// The original ten attacks — the *sampled* battery. Random op
    /// selectors (huge PRNG words) resolve into this set, so appending new
    /// attacks to [`Self::ALL`] never re-maps a pinned `selector → attack`
    /// assignment in replayed traces or golden digests. Newer attacks are
    /// reached through small direct selectors (`selector < ALL.len()`),
    /// which the canonical-alphabet enumeration and targeted traces use.
    pub const SAMPLED: [AttackKind; 10] = [
        AttackKind::DirectPhysicalRead,
        AttackKind::MaliciousMappingRead,
        AttackKind::DmaExfiltration,
        AttackKind::ModifyAfterInit,
        AttackKind::MailImpersonation,
        AttackKind::StealAttestationKey,
        AttackKind::StealEnclaveRegion,
        AttackKind::ToctouPageMutation,
        AttackKind::InterruptStormOnEntry,
        AttackKind::MailboxQuotaExhaustion,
    ];

    /// Resolves a raw [`crate::ops::Op::Attack`] selector to an attack kind:
    /// direct battery index when the selector is small, otherwise a draw
    /// from [`Self::SAMPLED`] (see its docs for why the two tiers exist).
    pub fn resolve(selector: u64) -> AttackKind {
        if (selector as usize) < Self::ALL.len() {
            Self::ALL[selector as usize]
        } else {
            Self::SAMPLED[(selector % Self::SAMPLED.len() as u64) as usize]
        }
    }

    /// Human-readable attack name.
    pub const fn name(self) -> &'static str {
        match self {
            AttackKind::DirectPhysicalRead => "direct physical read",
            AttackKind::MaliciousMappingRead => "malicious mapping read",
            AttackKind::DmaExfiltration => "dma exfiltration",
            AttackKind::ModifyAfterInit => "modify after init",
            AttackKind::MailImpersonation => "mail impersonation",
            AttackKind::StealAttestationKey => "steal attestation key",
            AttackKind::StealEnclaveRegion => "steal enclave region",
            AttackKind::ToctouPageMutation => "toctou page mutation",
            AttackKind::InterruptStormOnEntry => "interrupt storm on entry",
            AttackKind::MailboxQuotaExhaustion => "mailbox quota exhaustion",
            AttackKind::FaultStorm => "fault storm on reclaim",
        }
    }

    /// Returns `true` if the attack builds (and tears down) its own enclaves
    /// and therefore needs at least one free region, rather than a prebuilt
    /// victim.
    pub const fn builds_own_enclave(self) -> bool {
        matches!(
            self,
            AttackKind::ToctouPageMutation
                | AttackKind::InterruptStormOnEntry
                | AttackKind::FaultStorm
        )
    }

    /// Mounts the attack against `victim` (or `rogue`, for the key-stealing
    /// attack) on `core`.
    ///
    /// # Errors
    ///
    /// Fails only on harness preconditions (an own-enclave attack that cannot
    /// build); the attack's verdict is always an [`AttackOutcome`].
    pub fn run(
        self,
        system: &System,
        os: &mut Os,
        victim: &BuiltEnclave,
        rogue: &BuiltEnclave,
        core: CoreId,
    ) -> SmResult<AttackOutcome> {
        Ok(match self {
            AttackKind::DirectPhysicalRead => direct_physical_read(system, victim, core),
            AttackKind::MaliciousMappingRead => malicious_mapping_read(system, victim, core),
            AttackKind::DmaExfiltration => dma_exfiltration(system, victim),
            AttackKind::ModifyAfterInit => modify_after_init(os, victim),
            AttackKind::MailImpersonation => mail_impersonation(os, victim),
            AttackKind::StealAttestationKey => steal_attestation_key(os, rogue),
            AttackKind::StealEnclaveRegion => steal_enclave_region(os, victim),
            AttackKind::ToctouPageMutation => toctou_page_mutation(system, os)?,
            AttackKind::InterruptStormOnEntry => interrupt_storm_on_entry(system, os, core)?,
            AttackKind::MailboxQuotaExhaustion => mailbox_quota_exhaustion(os, victim),
            AttackKind::FaultStorm => fault_storm_reclaim(system, os)?,
        })
    }
}

/// Runs the full attack battery against a freshly built victim enclave and
/// returns `(attack name, outcome)` pairs.
pub fn run_attack_battery(
    system: &System,
    os: &mut Os,
    victim: &BuiltEnclave,
    rogue: &BuiltEnclave,
) -> Vec<(&'static str, AttackOutcome)> {
    AttackKind::ALL
        .iter()
        .map(|kind| {
            let outcome = kind
                .run(system, os, victim, rogue, CoreId::new(0))
                .expect("attack battery preconditions hold on a fresh system");
            (kind.name(), outcome)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PlatformKind;
    use sanctorum_enclave::image::EnclaveImage;

    #[test]
    fn every_attack_is_blocked_on_both_platforms() {
        for platform in PlatformKind::ALL {
            let system = System::boot_small(platform);
            let mut os = Os::new(&system);
            let victim = os.build_enclave(&EnclaveImage::hello(0x5ec2e7), 1).unwrap();
            let rogue = os.build_enclave(&EnclaveImage::compute(1, 10), 1).unwrap();
            for (name, outcome) in run_attack_battery(&system, &mut os, &victim, &rogue) {
                assert!(
                    outcome.blocked(),
                    "attack '{name}' succeeded on {platform:?}"
                );
            }
        }
    }

    #[test]
    fn delete_running_enclave_is_blocked() {
        let system = System::boot_small(PlatformKind::Sanctum);
        let mut os = Os::new(&system);
        let victim = os.build_enclave(&EnclaveImage::spinner(), 1).unwrap();
        // Start the spinner, then preempt it so it remains "assigned" with
        // saved state; delete while it is actually running is exercised by
        // entering and attacking before the run loop exits.
        os.monitor()
            .enter_enclave(
                CallerSession::os_on(CoreId::new(1)),
                victim.eid,
                victim.main_thread(),
            )
            .unwrap();
        assert!(delete_running_enclave(&os, &victim).blocked());
        // Clean up: AEX the thread so other tests are unaffected.
        os.monitor().asynchronous_enclave_exit(CoreId::new(1)).unwrap();
    }
}
