//! The invariant kernel: first-class security properties checked after every
//! explorer step.
//!
//! Each check formalizes one guarantee the paper's monitor makes:
//!
//! * **resource exclusivity** — every region has exactly one Fig. 2 state,
//!   regions owned by enclaves belong to live enclaves, live enclaves own
//!   their windows, protected ranges never overlap, and core occupancy is
//!   consistent with thread state;
//! * **clean-before-reuse** — a region entering the *Available* state holds
//!   only zeroes (the scrub happened before the state transition, never
//!   after);
//! * **mailbox confidentiality** — the SM-recorded sender identity of
//!   delivered mail matches the actual sending domain;
//! * **no secret leakage** — no OS-visible hart register ever holds a live
//!   enclave secret (cores are scrubbed on every enclave → OS hand-off);
//! * **adversary containment** — every scripted attack mounted mid-trace is
//!   blocked.
//!
//! Measurement determinism and cross-backend agreement are checked one level
//! up, in [`crate::diff`], because they compare *across* steps and worlds.

use sanctorum_core::monitor::TestWeakening;
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::isolation::RegionId;
use sanctorum_machine::MachineConfig;
use sanctorum_os::ops::{Op, OpOutcome, OpWorld};
use sanctorum_os::system::PlatformKind;
use std::collections::BTreeMap;

/// A detected violation of one invariant. The explorer stops at the first
/// violation and reports it with its replay coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The resource-exclusivity invariant broke.
    ExclusivityBroken {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// What exactly broke.
        detail: String,
    },
    /// A region became *Available* while still holding non-zero bytes.
    DirtyReuse {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The dirty region.
        region: RegionId,
        /// Offset of the first non-zero byte inside the region.
        offset: u64,
    },
    /// Two builds of the same recipe produced different measurements.
    MeasurementMismatch {
        /// Human-readable recipe description.
        detail: String,
    },
    /// Delivered mail carried a wrong SM-recorded sender identity.
    MailboxLeak {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The op that exposed it.
        detail: String,
    },
    /// An OS-visible register holds a live enclave secret.
    SecretLeak {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The leaked secret value.
        secret: u64,
        /// The core whose register file holds it.
        core: u32,
        /// The register index.
        register: usize,
    },
    /// A scripted attack succeeded.
    AttackSucceeded {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The op that mounted the attack.
        detail: String,
    },
    /// The two backends' OS-visible outcomes diverged outside the declared
    /// platform capacity differences.
    Divergence {
        /// Outcome summary on Sanctum.
        sanctum: String,
        /// Outcome summary on Keystone.
        keystone: String,
    },
}

impl Violation {
    /// The violation's kind tag (used by the shrinker to decide whether a
    /// shortened trace still reproduces "the same" failure).
    pub const fn kind(&self) -> &'static str {
        match self {
            Violation::ExclusivityBroken { .. } => "exclusivity",
            Violation::DirtyReuse { .. } => "dirty-reuse",
            Violation::MeasurementMismatch { .. } => "measurement",
            Violation::MailboxLeak { .. } => "mailbox",
            Violation::SecretLeak { .. } => "secret-leak",
            Violation::AttackSucceeded { .. } => "attack",
            Violation::Divergence { .. } => "divergence",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ExclusivityBroken { platform, detail } => {
                write!(f, "[{platform}] exclusivity broken: {detail}")
            }
            Violation::DirtyReuse { platform, region, offset } => write!(
                f,
                "[{platform}] {region} became available with dirty byte at offset {offset:#x}"
            ),
            Violation::MeasurementMismatch { detail } => {
                write!(f, "measurement determinism broken: {detail}")
            }
            Violation::MailboxLeak { platform, detail } => {
                write!(f, "[{platform}] mailbox identity leak: {detail}")
            }
            Violation::SecretLeak { platform, secret, core, register } => write!(
                f,
                "[{platform}] secret {secret:#x} visible in core{core} x{register}"
            ),
            Violation::AttackSucceeded { platform, detail } => {
                write!(f, "[{platform}] attack succeeded: {detail}")
            }
            Violation::Divergence { sanctum, keystone } => write!(
                f,
                "backends diverged: sanctum={sanctum} keystone={keystone}"
            ),
        }
    }
}

/// An [`OpWorld`] wrapped with the invariant kernel: every applied op is
/// followed by a full check pass, and region state transitions are tracked
/// between steps so the clean-before-reuse scan touches only regions that
/// just became available.
#[derive(Debug)]
pub struct CheckedWorld {
    /// The underlying world.
    pub world: OpWorld,
    platform: &'static str,
    prev_resources: BTreeMap<ResourceId, ResourceState>,
}

impl CheckedWorld {
    /// Boots a checked world, optionally installing a deliberate monitor
    /// weakening (the explorer's self-check path).
    pub fn boot(
        platform: PlatformKind,
        config: MachineConfig,
        weaken: Option<TestWeakening>,
    ) -> Self {
        let world = OpWorld::boot(platform, config);
        world.system.monitor.weaken_for_testing(weaken);
        let prev_resources = world
            .system
            .monitor
            .audit()
            .resources
            .into_iter()
            .collect();
        Self {
            world,
            platform: platform.name(),
            prev_resources,
        }
    }

    /// The platform name this world runs on.
    pub const fn platform(&self) -> &'static str {
        self.platform
    }

    /// Applies one op and runs the invariant kernel over the result.
    ///
    /// # Errors
    ///
    /// Returns the first violation detected after the op.
    pub fn step(&mut self, hart: CoreId, op: &Op) -> Result<OpOutcome, Violation> {
        let outcome = self.world.apply(hart, op);
        if outcome.mail_identity_ok == Some(false) {
            return Err(Violation::MailboxLeak {
                platform: self.platform,
                detail: format!("{op:?}"),
            });
        }
        if outcome.attack_blocked == Some(false) {
            return Err(Violation::AttackSucceeded {
                platform: self.platform,
                detail: format!("{op:?}"),
            });
        }
        self.check_invariants()?;
        Ok(outcome)
    }

    fn region_geometry(&self, region: RegionId) -> (PhysAddr, u64) {
        let config = self.world.system.machine.config();
        let base = config
            .memory_base
            .offset((region.index() * config.dram_region_size) as u64);
        (base, config.dram_region_size as u64)
    }

    fn check_invariants(&mut self) -> Result<(), Violation> {
        let audit = self.world.system.monitor.audit();
        let machine = &self.world.system.machine;
        let fail = |detail: String| Violation::ExclusivityBroken {
            platform: self.platform,
            detail,
        };

        // --- resource exclusivity -------------------------------------
        for (id, state) in &audit.resources {
            if let (ResourceId::Region(region), ResourceState::Owned(DomainKind::Enclave(eid))) =
                (id, state)
            {
                if audit.enclave(*eid).is_none() {
                    return Err(fail(format!("{region} owned by dead enclave {eid}")));
                }
            }
        }
        for enclave in &audit.enclaves {
            for region in &enclave.regions {
                match audit.resource(ResourceId::Region(*region)) {
                    Some(ResourceState::Owned(DomainKind::Enclave(owner)))
                        if owner == enclave.id => {}
                    other => {
                        return Err(fail(format!(
                            "window {region} of {} is in state {other:?}",
                            enclave.id
                        )))
                    }
                }
            }
            // Lifecycle consistency: a measurement exists exactly once the
            // enclave is sealed.
            if enclave.initialized != enclave.measurement.is_some() {
                return Err(fail(format!(
                    "{} initialized={} but measurement present={}",
                    enclave.id,
                    enclave.initialized,
                    enclave.measurement.is_some()
                )));
            }
            // The running-thread count the enclave metadata carries must
            // agree with the occupancy table, and every occupied thread must
            // be one the enclave actually lists.
            let occupied = audit
                .core_occupancy
                .iter()
                .filter(|(_, tid)| enclave.threads.contains(tid))
                .count();
            if occupied != enclave.running_threads {
                return Err(fail(format!(
                    "{} claims {} running threads but {} of its threads occupy cores",
                    enclave.id, enclave.running_threads, occupied
                )));
            }
        }
        let ranges = machine.protected_ranges();
        for (i, a) in ranges.iter().enumerate() {
            for b in ranges.iter().skip(i + 1) {
                let a_end = a.base.as_u64() + a.len;
                let b_end = b.base.as_u64() + b.len;
                if a.base.as_u64() < b_end && b.base.as_u64() < a_end {
                    return Err(fail(format!(
                        "protected ranges overlap: {:#x}+{:#x} and {:#x}+{:#x}",
                        a.base.as_u64(),
                        a.len,
                        b.base.as_u64(),
                        b.len
                    )));
                }
            }
        }
        for (core, tid) in &audit.core_occupancy {
            // Every occupied thread belongs to exactly one live enclave...
            let owners = audit
                .enclaves
                .iter()
                .filter(|e| e.threads.contains(tid))
                .count();
            if owners != 1 {
                return Err(fail(format!(
                    "occupancy names thread {tid} on {core} but {owners} live enclaves list it"
                )));
            }
            // ...and its own state machine agrees it runs on that core.
            match self.world.system.monitor.thread_info(*tid) {
                Ok(info) => {
                    let running_here = matches!(
                        info.state,
                        sanctorum_core::thread::ThreadState::Running { core: c, .. } if c == *core
                    );
                    if !running_here {
                        return Err(fail(format!(
                            "occupancy names thread {tid} on {core} but its state is {:?}",
                            info.state
                        )));
                    }
                }
                Err(_) => {
                    return Err(fail(format!("occupancy names unknown thread {tid} on {core}")))
                }
            }
        }

        // --- clean-before-reuse ---------------------------------------
        for (id, state) in &audit.resources {
            let ResourceId::Region(region) = id else { continue };
            let became_available = *state == ResourceState::Available
                && self.prev_resources.get(id) != Some(&ResourceState::Available);
            if became_available {
                let (base, len) = self.region_geometry(*region);
                let mut page = vec![0u8; PAGE_SIZE];
                for offset in (0..len).step_by(PAGE_SIZE) {
                    machine
                        .phys_read(base.offset(offset), &mut page)
                        .expect("region memory is populated DRAM");
                    if let Some(position) = page.iter().position(|&b| b != 0) {
                        return Err(Violation::DirtyReuse {
                            platform: self.platform,
                            region: *region,
                            offset: offset + position as u64,
                        });
                    }
                }
            }
        }
        self.prev_resources = audit.resources.into_iter().collect();

        // --- no secret in OS-visible registers ------------------------
        let secrets: Vec<u64> = self.world.live_secrets().collect();
        if !secrets.is_empty() {
            for core in 0..machine.num_harts() {
                let hart = machine.hart(CoreId::new(core as u32));
                if hart.domain.is_enclave() {
                    continue;
                }
                for (register, value) in hart.regs.iter().enumerate() {
                    if secrets.contains(value) {
                        return Err(Violation::SecretLeak {
                            platform: self.platform,
                            secret: *value,
                            core: core as u32,
                            register,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}
