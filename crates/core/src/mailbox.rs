//! SM-mediated message fabric for local attestation and enclave IPC
//! (paper Section VI-B, Fig. 5).
//!
//! Each enclave's metadata contains a small array of mailboxes. The seed
//! implementation gave every mailbox a single one-message cell; the fabric
//! generalizes that into a **multi-slot FIFO queue** per mailbox so many
//! senders can have messages in flight toward one service enclave (the
//! signing enclave is the motivating consumer — see `sanctorum-enclave`):
//!
//! * a recipient *arms* a mailbox with an [`AcceptMode`] — either a specific
//!   sender or [`ANY_SENDER`] (wildcard, for service enclaves that accept
//!   requests from any client);
//! * a sender (another enclave or the OS) deposits messages with `send`,
//!   which the SM tags with the sender's id and measurement; up to
//!   [`MAILBOX_QUEUE_DEPTH`] messages queue per mailbox;
//! * the recipient retrieves messages in FIFO order with `get`, or probes the
//!   head non-destructively with `peek` (length + sender, so a caller can
//!   size its buffer *before* consuming — the register-ABI `GetMail` uses
//!   exactly this to avoid destroying a message a too-small buffer cannot
//!   hold).
//!
//! Because the SM is trusted and mediates every step, the sender identity
//! needs no cryptographic proof — this is the basis of local attestation
//! (Fig. 6). The one-slot design's implicit backpressure (a full cell
//! rejects sends) is replaced by explicit **per-sender quota accounting**,
//! enforced by the monitor over the whole fabric (see
//! [`crate::monitor`]): a sender may have at most [`MAIL_SENDER_QUOTA`]
//! undelivered messages in flight across all recipients, so no sender can
//! squat every queue in the system.

use crate::error::{SmError, SmResult};
use crate::measurement::Measurement;
use sanctorum_hal::addr::PAGE_SIZE;
use sanctorum_hal::domain::EnclaveId;
use sanctorum_trust::{CanRead, Checked, Sanitizer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Cache-line size the mail buffer geometry is stated in terms of.
pub const CACHE_LINE: usize = 64;

/// Maximum message size in bytes: a quarter of a 4 KiB page (16 cache
/// lines), mirroring the small fixed-size mail buffers of the Sanctum
/// implementation. Four queue slots of maximal messages therefore fit in one
/// page of SM metadata per mailbox.
pub const MAX_MAIL_LEN: usize = PAGE_SIZE / 4;

// The geometry the constant is *intended* to encode, checked at compile
// time so a drive-by edit cannot silently detach the value from the page /
// cache-line layout it is derived from.
const _: () = {
    assert!(MAX_MAIL_LEN == 1024);
    assert!(MAX_MAIL_LEN == PAGE_SIZE / 4);
    assert!(MAX_MAIL_LEN == 16 * CACHE_LINE);
    assert!(MAX_MAIL_LEN.is_multiple_of(CACHE_LINE));
    assert!(MAILBOX_QUEUE_DEPTH * MAX_MAIL_LEN == PAGE_SIZE);
};

/// Number of messages one mailbox queues before senders see backpressure.
pub const MAILBOX_QUEUE_DEPTH: usize = 4;

/// Maximum undelivered messages one sender may have in flight across the
/// whole fabric (enforced by the monitor's quota ledger, not per mailbox).
pub const MAIL_SENDER_QUOTA: usize = 8;

/// Register-ABI sender selector meaning "accept mail from any sender"
/// (service enclaves arm their request mailbox with this).
pub const ANY_SENDER: u64 = u64::MAX;

/// Identity of a mail sender as recorded by the SM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SenderIdentity {
    /// The untrusted OS (which has no measurement).
    Untrusted,
    /// An enclave, identified by its id and measurement. The id lets a
    /// service enclave reply without out-of-band knowledge of who mailed it;
    /// the measurement is the attestation-grade identity.
    Enclave {
        /// The sender's enclave id (valid while the sender lives; the SM
        /// purges a dead sender's undelivered mail precisely so this field
        /// can never alias a recycled id).
        id: EnclaveId,
        /// The sender's finalized measurement.
        measurement: Measurement,
    },
}

impl SenderIdentity {
    /// The raw sender-id word the quota ledger and accept filters use
    /// (enclave id value, or 0 for the OS).
    pub fn sender_id(&self) -> u64 {
        match self {
            SenderIdentity::Untrusted => 0,
            SenderIdentity::Enclave { id, .. } => id.as_u64(),
        }
    }
}

/// Whom a mailbox is armed to receive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcceptMode {
    /// Only the named sender id (enclave id value, or 0 for the OS).
    Sender(u64),
    /// Any sender (wildcard service mode).
    Any,
}

impl AcceptMode {
    /// Maps the register-ABI sender selector onto an accept mode.
    pub fn from_selector(sender_id: u64) -> Self {
        if sender_id == ANY_SENDER {
            AcceptMode::Any
        } else {
            AcceptMode::Sender(sender_id)
        }
    }

    /// Returns `true` if a message from `sender_id` passes this filter.
    pub fn admits(&self, sender_id: u64) -> bool {
        match self {
            AcceptMode::Any => true,
            AcceptMode::Sender(expected) => *expected == sender_id,
        }
    }
}

/// One message held in a mailbox queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedMail {
    /// Sender identity recorded by the SM at send time.
    pub sender: SenderIdentity,
    /// Raw sender id (enclave id value or 0 for the OS) — the quota ledger
    /// key.
    pub sender_id: u64,
    /// The message payload.
    pub message: Vec<u8>,
}

/// One mailbox: an accept filter plus a bounded FIFO of queued messages.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mailbox {
    accept: Option<AcceptMode>,
    queue: VecDeque<QueuedMail>,
}

impl Mailbox {
    /// Creates an idle (unarmed, empty) mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current accept filter, if the mailbox is armed.
    pub fn accept_mode(&self) -> Option<AcceptMode> {
        self.accept
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Returns `true` if the queue has no room for another message.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= MAILBOX_QUEUE_DEPTH
    }

    /// Iterates over the queued messages in FIFO order (monitor-internal:
    /// audit snapshots and teardown purges walk this).
    pub fn queued(&self) -> impl Iterator<Item = &QueuedMail> {
        self.queue.iter()
    }

    /// `accept_mail`: arms (or re-arms) the mailbox with a new filter.
    /// Re-arming never disturbs already-queued messages — they were admitted
    /// under the filter in force when they arrived.
    pub fn accept(&mut self, mode: AcceptMode) {
        self.accept = Some(mode);
    }

    /// Returns `true` if `send` from `sender_id` would pass the accept
    /// filter (regardless of queue space).
    pub fn admits(&self, sender_id: u64) -> bool {
        self.accept.map(|mode| mode.admits(sender_id)).unwrap_or(false)
    }

    /// `send_mail`: enqueues a message from `sender`.
    ///
    /// This is a trust-boundary *sink*: the payload must arrive as a
    /// [`Checked`] proof minted by [`Sanitizer::check_message`], which is the
    /// only place the [`MAX_MAIL_LEN`] bound is decided. A raw `&[u8]` (or a
    /// `Tainted` one) does not compile here, and the custom lint pass keeps
    /// this signature honest (`cargo xtask lint`, rule `sink_signature`).
    ///
    /// # Errors
    ///
    /// [`SmError::MailNotAccepted`] if the mailbox is not armed for this
    /// sender, [`SmError::MailboxUnavailable`] if the queue is full.
    pub fn send<P: CanRead>(
        &mut self,
        sender: SenderIdentity,
        message: &Checked<&[u8], P>,
    ) -> SmResult<()> {
        let message = Sanitizer::reveal(message);
        debug_assert!(
            message.len() <= MAX_MAIL_LEN,
            "check_message minted an oversized proof"
        );
        let sender_id = sender.sender_id();
        if !self.admits(sender_id) {
            return Err(SmError::MailNotAccepted);
        }
        if self.is_full() {
            return Err(SmError::MailboxUnavailable);
        }
        self.queue.push_back(QueuedMail {
            sender,
            sender_id,
            message: message.to_vec(),
        });
        Ok(())
    }

    /// `get_mail`: dequeues the oldest message.
    ///
    /// # Errors
    ///
    /// [`SmError::MailboxUnavailable`] if the queue is empty.
    pub fn get(&mut self) -> SmResult<QueuedMail> {
        self.queue.pop_front().ok_or(SmError::MailboxUnavailable)
    }

    /// `peek_mail`: the oldest message, without consuming it.
    pub fn peek(&self) -> Option<&QueuedMail> {
        self.queue.front()
    }

    /// Removes every queued message sent by `sender_id`, returning how many
    /// were dropped (the monitor's teardown purge: a dead sender's
    /// undelivered mail must not outlive its identity, because enclave ids
    /// are recycled physical addresses).
    pub fn purge_sender(&mut self, sender_id: u64) -> usize {
        let before = self.queue.len();
        self.queue.retain(|m| m.sender_id != sender_id);
        before - self.queue.len()
    }

    /// Disarms the mailbox if its filter names exactly `sender_id` (the
    /// other half of the teardown purge: an accept filter for a dead
    /// enclave's id would otherwise grant the *next* enclave recycled onto
    /// that id a delivery capability its recipient never meant to extend —
    /// found by the adversarial explorer when a freshly built signing
    /// enclave inherited a victim's stale filter and its attestation reply
    /// was routed into the wrong mailbox).
    pub fn disarm_if_expecting(&mut self, sender_id: u64) {
        if self.accept == Some(AcceptMode::Sender(sender_id)) {
            self.accept = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_trust::{ReadAccess, Tainted, TrustError};

    fn enclave_sender(id: u64, byte: u8) -> SenderIdentity {
        SenderIdentity::Enclave {
            id: EnclaveId::new(id),
            measurement: Measurement([byte; 32]),
        }
    }

    /// Mints the length-checked payload proof `send` demands — the same
    /// path the register ABI and the monitor use.
    fn mail(bytes: &[u8]) -> Checked<&[u8], ReadAccess> {
        Sanitizer::check_message(Tainted::new(bytes), MAX_MAIL_LEN)
            .expect("test payload within MAX_MAIL_LEN")
    }

    #[test]
    fn max_mail_len_matches_intended_geometry() {
        // Runtime restatement of the compile-time asserts, so the intent is
        // also visible in test output: a quarter page, 16 cache lines.
        assert_eq!(MAX_MAIL_LEN, PAGE_SIZE / 4);
        assert_eq!(MAX_MAIL_LEN, 16 * CACHE_LINE);
        assert_eq!(MAILBOX_QUEUE_DEPTH * MAX_MAIL_LEN, PAGE_SIZE);
    }

    #[test]
    fn accept_send_get_round_trip() {
        let mut mb = Mailbox::new();
        mb.accept(AcceptMode::Sender(42));
        mb.send(enclave_sender(42, 1), &mail(b"hello")).unwrap();
        let delivered = mb.get().unwrap();
        assert_eq!(delivered.message, b"hello");
        assert_eq!(delivered.sender, enclave_sender(42, 1));
        assert!(mb.is_empty());
        // The filter survives delivery: the same sender can mail again
        // without a re-arm.
        mb.send(enclave_sender(42, 1), &mail(b"again")).unwrap();
        assert_eq!(mb.get().unwrap().message, b"again");
    }

    #[test]
    fn unsolicited_send_rejected() {
        let mut mb = Mailbox::new();
        assert_eq!(
            mb.send(SenderIdentity::Untrusted, &mail(b"spam")),
            Err(SmError::MailNotAccepted)
        );
        mb.accept(AcceptMode::Sender(42));
        // Wrong sender id also rejected (denial-of-service protection).
        assert_eq!(
            mb.send(SenderIdentity::Untrusted, &mail(b"spam")),
            Err(SmError::MailNotAccepted)
        );
    }

    #[test]
    fn wildcard_accepts_everyone() {
        let mut mb = Mailbox::new();
        mb.accept(AcceptMode::Any);
        mb.send(SenderIdentity::Untrusted, &mail(b"os")).unwrap();
        mb.send(enclave_sender(7, 3), &mail(b"e7")).unwrap();
        assert_eq!(mb.get().unwrap().sender, SenderIdentity::Untrusted);
        assert_eq!(mb.get().unwrap().sender, enclave_sender(7, 3));
    }

    #[test]
    fn queue_is_fifo_and_bounded() {
        let mut mb = Mailbox::new();
        mb.accept(AcceptMode::Sender(1));
        for i in 0..MAILBOX_QUEUE_DEPTH as u8 {
            mb.send(enclave_sender(1, 9), &mail(&[i])).unwrap();
        }
        assert!(mb.is_full());
        assert_eq!(
            mb.send(enclave_sender(1, 9), &mail(b"overflow")),
            Err(SmError::MailboxUnavailable)
        );
        for i in 0..MAILBOX_QUEUE_DEPTH as u8 {
            assert_eq!(mb.get().unwrap().message, vec![i]);
        }
        assert_eq!(mb.get(), Err(SmError::MailboxUnavailable));
    }

    #[test]
    fn peek_is_non_destructive() {
        let mut mb = Mailbox::new();
        assert!(mb.peek().is_none());
        mb.accept(AcceptMode::Sender(7));
        mb.send(enclave_sender(7, 2), &mail(b"first")).unwrap();
        mb.send(enclave_sender(7, 2), &mail(b"second!")).unwrap();
        assert_eq!(mb.peek().unwrap().message.len(), 5);
        assert_eq!(mb.peek().unwrap().message.len(), 5, "peek must not consume");
        assert_eq!(mb.get().unwrap().message, b"first");
        assert_eq!(mb.peek().unwrap().message.len(), 7);
    }

    #[test]
    fn oversized_message_rejected() {
        // The length bound now lives in the sanitizer: an oversized payload
        // never even becomes a proof `send` could be offered.
        let big = vec![0u8; MAX_MAIL_LEN + 1];
        assert_eq!(
            Sanitizer::check_message(Tainted::new(big.as_slice()), MAX_MAIL_LEN).unwrap_err(),
            TrustError::TooLong { max: MAX_MAIL_LEN }
        );
        let mut mb = Mailbox::new();
        mb.accept(AcceptMode::Sender(1));
        let exact = vec![0u8; MAX_MAIL_LEN];
        mb.send(enclave_sender(1, 0), &mail(&exact)).unwrap();
    }

    #[test]
    fn re_accept_changes_filter_but_keeps_queue() {
        let mut mb = Mailbox::new();
        mb.accept(AcceptMode::Sender(1));
        mb.send(enclave_sender(1, 4), &mail(b"old sender")).unwrap();
        mb.accept(AcceptMode::Sender(2));
        assert_eq!(
            mb.send(enclave_sender(1, 4), &mail(b"stale")),
            Err(SmError::MailNotAccepted)
        );
        mb.send(enclave_sender(2, 5), &mail(b"new sender")).unwrap();
        // The message admitted under the old filter is still delivered.
        assert_eq!(mb.get().unwrap().message, b"old sender");
        assert_eq!(mb.get().unwrap().message, b"new sender");
    }

    #[test]
    fn purge_drops_only_the_named_sender() {
        let mut mb = Mailbox::new();
        mb.accept(AcceptMode::Any);
        mb.send(enclave_sender(1, 1), &mail(b"a")).unwrap();
        mb.send(enclave_sender(2, 2), &mail(b"b")).unwrap();
        mb.send(enclave_sender(1, 1), &mail(b"c")).unwrap();
        assert_eq!(mb.purge_sender(1), 2);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.get().unwrap().message, b"b");
    }

    #[test]
    fn accept_mode_selector_round_trip() {
        assert_eq!(AcceptMode::from_selector(ANY_SENDER), AcceptMode::Any);
        assert_eq!(AcceptMode::from_selector(7), AcceptMode::Sender(7));
        assert!(AcceptMode::Any.admits(123));
        assert!(AcceptMode::Sender(5).admits(5));
        assert!(!AcceptMode::Sender(5).admits(6));
    }
}
