//! Authenticated encryption: ChaCha20 + HMAC-SHA3-256, encrypt-then-MAC.
//!
//! After remote attestation succeeds, the verifier and the enclave use the
//! agreed key to protect application traffic (paper Fig. 7, step ⑩). The
//! construction is deliberately simple: a fresh 12-byte nonce per message,
//! ChaCha20 for confidentiality and HMAC-SHA3-256 over `nonce ‖ ciphertext`
//! for integrity, with independent sub-keys derived by HKDF.

use crate::chacha::ChaCha20;
use crate::hmac::{hmac_sha3_256, hmac_verify};
use crate::kdf::hkdf;

/// Length of the authentication tag in bytes.
pub const TAG_LEN: usize = 32;
/// Length of the per-message nonce in bytes.
pub const NONCE_LEN: usize = 12;

/// Errors returned when opening a sealed message fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The message is too short to contain a nonce and tag.
    Truncated,
    /// The authentication tag did not verify.
    BadTag,
    /// The message authenticated but its counter is not the one the
    /// receiving session expects next (a replayed or reordered message).
    /// Never produced by [`SecretBox::open`] itself — the ordered session
    /// layer in `sanctorum-verifier` raises it.
    OutOfOrder,
}

impl core::fmt::Display for OpenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OpenError::Truncated => write!(f, "sealed message is truncated"),
            OpenError::BadTag => write!(f, "authentication tag mismatch"),
            OpenError::OutOfOrder => write!(f, "message counter out of order (replay or reorder)"),
        }
    }
}

impl std::error::Error for OpenError {}

/// A symmetric authenticated-encryption key.
#[derive(Clone)]
pub struct SecretBox {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

impl core::fmt::Debug for SecretBox {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SecretBox(<redacted>)")
    }
}

impl SecretBox {
    /// Derives a secret box from shared keying material and a context label.
    ///
    /// # Examples
    ///
    /// ```
    /// use sanctorum_crypto::secretbox::SecretBox;
    /// let sb = SecretBox::derive(b"shared secret", b"sanctorum session 1");
    /// let sealed = sb.seal(&[9u8; 12], b"enclave output");
    /// let opened = sb.open(&sealed)?;
    /// assert_eq!(opened, b"enclave output");
    /// # Ok::<(), sanctorum_crypto::secretbox::OpenError>(())
    /// ```
    pub fn derive(shared_secret: &[u8], context: &[u8]) -> Self {
        let okm: [u8; 64] = hkdf(b"sanctorum-secretbox-v1", shared_secret, context);
        let mut enc_key = [0u8; 32];
        let mut mac_key = [0u8; 32];
        enc_key.copy_from_slice(&okm[..32]);
        mac_key.copy_from_slice(&okm[32..]);
        Self { enc_key, mac_key }
    }

    /// Seals `plaintext` under `nonce`, producing `nonce ‖ ciphertext ‖ tag`.
    ///
    /// The caller is responsible for never reusing a nonce with the same key
    /// (the session layer in `sanctorum-verifier` uses a message counter).
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len() + TAG_LEN);
        out.extend_from_slice(nonce);
        let mut ciphertext = plaintext.to_vec();
        ChaCha20::new(&self.enc_key, nonce).apply_keystream(1, &mut ciphertext);
        out.extend_from_slice(&ciphertext);
        let tag = hmac_sha3_256(&self.mac_key, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Opens a sealed message, returning the plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`OpenError::Truncated`] if the message is shorter than a
    /// nonce plus tag, and [`OpenError::BadTag`] if authentication fails.
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, OpenError> {
        if sealed.len() < NONCE_LEN + TAG_LEN {
            return Err(OpenError::Truncated);
        }
        let (body, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        if !hmac_verify(&self.mac_key, body, tag) {
            return Err(OpenError::BadTag);
        }
        let nonce: [u8; NONCE_LEN] = body[..NONCE_LEN].try_into().expect("length checked");
        let mut plaintext = body[NONCE_LEN..].to_vec();
        ChaCha20::new(&self.enc_key, &nonce).apply_keystream(1, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let sb = SecretBox::derive(b"key material", b"ctx");
        let sealed = sb.seal(&[1; 12], b"hello");
        assert_eq!(sb.open(&sealed).expect("opens"), b"hello");
    }

    #[test]
    fn tampering_detected() {
        let sb = SecretBox::derive(b"key material", b"ctx");
        let mut sealed = sb.seal(&[1; 12], b"hello");
        sealed[NONCE_LEN] ^= 1;
        assert_eq!(sb.open(&sealed), Err(OpenError::BadTag));
        // Tamper with the nonce instead.
        let mut sealed2 = sb.seal(&[1; 12], b"hello");
        sealed2[0] ^= 1;
        assert_eq!(sb.open(&sealed2), Err(OpenError::BadTag));
    }

    #[test]
    fn truncated_rejected() {
        let sb = SecretBox::derive(b"key material", b"ctx");
        assert_eq!(sb.open(&[0u8; 10]), Err(OpenError::Truncated));
    }

    #[test]
    fn wrong_key_rejected() {
        let a = SecretBox::derive(b"key a", b"ctx");
        let b = SecretBox::derive(b"key b", b"ctx");
        let sealed = a.seal(&[2; 12], b"secret");
        assert_eq!(b.open(&sealed), Err(OpenError::BadTag));
    }

    #[test]
    fn context_separates_keys() {
        let a = SecretBox::derive(b"key", b"ctx-a");
        let b = SecretBox::derive(b"key", b"ctx-b");
        let sealed = a.seal(&[3; 12], b"secret");
        assert_eq!(b.open(&sealed), Err(OpenError::BadTag));
    }

    #[test]
    fn empty_plaintext_round_trips() {
        let sb = SecretBox::derive(b"k", b"c");
        let sealed = sb.seal(&[0; 12], b"");
        assert_eq!(sb.open(&sealed).expect("opens"), Vec::<u8>::new());
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let sb = SecretBox::derive(b"k", b"c");
        let a = sb.seal(&[1; 12], b"same message");
        let b = sb.seal(&[2; 12], b"same message");
        assert_ne!(a, b);
    }
}
