//! Sv39-style three-level page tables and the hardware page-table walker.
//!
//! Enclaves use private page tables stored inside enclave-owned memory for
//! accesses within `evrange` (paper Section V-C); the OS uses its own tables
//! for untrusted software. The walker reads page-table pages directly from
//! simulated physical memory, charging one [`CostModel::ptw_level`] per level,
//! exactly as a hardware walker would.
//!
//! [`CostModel::ptw_level`]: sanctorum_hal::cycles::CostModel

use crate::mem::PhysMemory;
use sanctorum_hal::addr::{PhysAddr, PhysPageNum, VirtAddr, VirtPageNum};
use sanctorum_hal::cycles::{CostModel, Cycles};
use sanctorum_hal::perm::MemPerms;
use serde::{Deserialize, Serialize};

/// A page-table entry in the simulated format.
///
/// Layout (little-endian u64): bit 0 = valid, bit 1 = read, bit 2 = write,
/// bit 3 = execute, bits 10.. = physical page number. A valid entry with no
/// R/W/X bits is a pointer to the next-level table (as in RISC-V Sv39).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageTableEntry(pub u64);

impl PageTableEntry {
    const VALID: u64 = 1;

    /// An invalid (empty) entry.
    pub const INVALID: PageTableEntry = PageTableEntry(0);

    /// Creates a leaf entry mapping to `ppn` with permissions `perms`.
    pub fn leaf(ppn: PhysPageNum, perms: MemPerms) -> Self {
        PageTableEntry(Self::VALID | ((perms.bits() as u64) << 1) | (ppn.index() << 10))
    }

    /// Creates a non-leaf entry pointing at the next-level table page.
    pub fn table(ppn: PhysPageNum) -> Self {
        PageTableEntry(Self::VALID | (ppn.index() << 10))
    }

    /// Returns `true` if the entry is valid.
    pub fn is_valid(self) -> bool {
        self.0 & Self::VALID != 0
    }

    /// Returns `true` if the entry is a leaf (has any permission bit).
    pub fn is_leaf(self) -> bool {
        self.is_valid() && (self.0 >> 1) & 0b111 != 0
    }

    /// Returns the permissions encoded in a leaf entry.
    pub fn perms(self) -> MemPerms {
        MemPerms::from_bits(((self.0 >> 1) & 0b111) as u8)
    }

    /// Returns the physical page number the entry refers to.
    pub fn ppn(self) -> PhysPageNum {
        PhysPageNum::new(self.0 >> 10)
    }
}

/// The outcome of a page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Translation succeeded.
    Translated {
        /// Resulting physical address.
        addr: PhysAddr,
        /// Permissions of the leaf entry.
        perms: MemPerms,
        /// Cycles spent walking.
        cost: Cycles,
    },
    /// The walk hit an invalid entry or the leaf lacks the permission.
    Fault {
        /// Cycles spent before faulting.
        cost: Cycles,
    },
}

impl WalkOutcome {
    /// Returns the translated physical address, if the walk succeeded.
    pub fn physical_address(&self) -> Option<PhysAddr> {
        match self {
            WalkOutcome::Translated { addr, .. } => Some(*addr),
            WalkOutcome::Fault { .. } => None,
        }
    }

    /// Returns the cycle cost of the walk.
    pub fn cost(&self) -> Cycles {
        match self {
            WalkOutcome::Translated { cost, .. } | WalkOutcome::Fault { cost } => *cost,
        }
    }
}

/// The hardware page-table walker.
#[derive(Debug, Clone, Copy)]
pub struct PageTableWalker {
    cost_model: CostModel,
}

impl PageTableWalker {
    /// Creates a walker using `cost_model` for cycle accounting.
    pub fn new(cost_model: CostModel) -> Self {
        Self { cost_model }
    }

    /// Translates `vaddr` through the three-level table rooted at `root`.
    ///
    /// `required` is the permission needed by the access; a leaf without it
    /// produces a fault, mirroring hardware behaviour.
    pub fn walk(
        &self,
        memory: &PhysMemory,
        root: PhysAddr,
        vaddr: VirtAddr,
        required: MemPerms,
    ) -> WalkOutcome {
        let indices = vaddr.page_number().table_indices();
        let mut table_base = root;
        let mut cost = Cycles::ZERO;
        for (level, &index) in indices.iter().enumerate() {
            cost += self.cost_model.ptw_level;
            let entry_addr = table_base.offset((index * 8) as u64);
            let raw = match memory.read_u64(entry_addr) {
                Ok(v) => v,
                Err(_) => return WalkOutcome::Fault { cost },
            };
            let entry = PageTableEntry(raw);
            if !entry.is_valid() {
                return WalkOutcome::Fault { cost };
            }
            if entry.is_leaf() {
                // Only 4 KiB leaves at the last level are supported.
                if level != 2 {
                    return WalkOutcome::Fault { cost };
                }
                if !entry.perms().allows(required) {
                    return WalkOutcome::Fault { cost };
                }
                let addr = entry
                    .ppn()
                    .base_address()
                    .offset(vaddr.page_offset() as u64);
                return WalkOutcome::Translated {
                    addr,
                    perms: entry.perms(),
                    cost,
                };
            }
            table_base = entry.ppn().base_address();
        }
        WalkOutcome::Fault { cost }
    }
}

/// A helper for building page tables inside simulated physical memory.
///
/// Both the OS (for untrusted address spaces) and the SM (when it initializes
/// enclave-private tables during `load_page_table`) use this builder. Table
/// pages are allocated from a caller-supplied monotone page allocator so the
/// caller controls exactly which physical pages hold the tables — important
/// because the SM requires enclave page tables to occupy the base of the
/// enclave's physical region (paper Section VI-A).
#[derive(Debug)]
pub struct PageTableBuilder {
    root: PhysAddr,
}

impl PageTableBuilder {
    /// Creates a builder whose root table lives at `root` (the page must be
    /// zeroed by the caller).
    pub fn new(root: PhysAddr) -> Self {
        Self { root }
    }

    /// Returns the root table address.
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// Maps `vpn` to `ppn` with `perms`, allocating intermediate table pages
    /// from `alloc_page` when needed.
    ///
    /// # Errors
    ///
    /// Returns an error string if physical memory cannot be written or the
    /// allocator returns `None`.
    pub fn map(
        &mut self,
        memory: &mut PhysMemory,
        vpn: VirtPageNum,
        ppn: PhysPageNum,
        perms: MemPerms,
        mut alloc_page: impl FnMut() -> Option<PhysAddr>,
    ) -> Result<(), String> {
        let indices = vpn.table_indices();
        let mut table_base = self.root;
        for &index in &indices[..2] {
            let entry_addr = table_base.offset((index * 8) as u64);
            let raw = memory
                .read_u64(entry_addr)
                .map_err(|e| format!("page table read failed: {e}"))?;
            let entry = PageTableEntry(raw);
            if entry.is_valid() {
                if entry.is_leaf() {
                    return Err("unexpected superpage leaf in page table".to_string());
                }
                table_base = entry.ppn().base_address();
            } else {
                let new_page = alloc_page().ok_or("page-table page allocator exhausted")?;
                if !new_page.is_page_aligned() {
                    return Err("allocator returned unaligned page".to_string());
                }
                memory
                    .zero_page(new_page)
                    .map_err(|e| format!("zeroing new table page failed: {e}"))?;
                memory
                    .write_u64(entry_addr, PageTableEntry::table(new_page.page_number()).0)
                    .map_err(|e| format!("page table write failed: {e}"))?;
                table_base = new_page;
            }
        }
        let leaf_addr = table_base.offset((indices[2] * 8) as u64);
        memory
            .write_u64(leaf_addr, PageTableEntry::leaf(ppn, perms).0)
            .map_err(|e| format!("page table write failed: {e}"))?;
        Ok(())
    }

    /// Counts the number of table pages (including the root) a mapping of
    /// `page_count` consecutive pages starting at `base_vpn` will need.
    pub fn table_pages_needed(base_vpn: VirtPageNum, page_count: u64) -> u64 {
        if page_count == 0 {
            return 1;
        }
        let first = base_vpn.index();
        let last = first + page_count - 1;
        let l2_first = first >> 9;
        let l2_last = last >> 9;
        let l1_first = first >> 18;
        let l1_last = last >> 18;
        1 + (l1_last - l1_first + 1) + (l2_last - l2_first + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::addr::PAGE_SIZE;

    fn setup() -> (PhysMemory, PageTableBuilder, Vec<PhysAddr>) {
        let base = PhysAddr::new(0x8000_0000);
        let mem = PhysMemory::new(base, 64 * PAGE_SIZE);
        // Reserve pages 0..8 for page tables, allocated in order.
        let free: Vec<PhysAddr> = (1..8).rev().map(|i| base.offset(i * PAGE_SIZE as u64)).collect();
        (mem, PageTableBuilder::new(base), free)
    }

    #[test]
    fn map_and_walk_round_trip() {
        let (mut mem, mut builder, mut free) = setup();
        let vpn = VirtPageNum::new(0x1234);
        let ppn = PhysAddr::new(0x8000_0000 + 20 * PAGE_SIZE as u64).page_number();
        builder
            .map(&mut mem, vpn, ppn, MemPerms::RW, || free.pop())
            .unwrap();

        let walker = PageTableWalker::new(CostModel::default());
        let vaddr = vpn.base_address().offset(0x123);
        match walker.walk(&mem, builder.root(), vaddr, MemPerms::READ) {
            WalkOutcome::Translated { addr, perms, cost } => {
                assert_eq!(addr, ppn.base_address().offset(0x123));
                assert_eq!(perms, MemPerms::RW);
                assert_eq!(cost, Cycles::new(120)); // 3 levels x 40
            }
            WalkOutcome::Fault { .. } => panic!("expected translation"),
        }
    }

    #[test]
    fn missing_mapping_faults() {
        let (mem, builder, _) = setup();
        let walker = PageTableWalker::new(CostModel::default());
        let out = walker.walk(&mem, builder.root(), VirtAddr::new(0x5000), MemPerms::READ);
        assert!(matches!(out, WalkOutcome::Fault { .. }));
        assert!(out.physical_address().is_none());
    }

    #[test]
    fn permission_mismatch_faults() {
        let (mut mem, mut builder, mut free) = setup();
        let vpn = VirtPageNum::new(7);
        let ppn = PhysAddr::new(0x8000_0000 + 30 * PAGE_SIZE as u64).page_number();
        builder
            .map(&mut mem, vpn, ppn, MemPerms::READ, || free.pop())
            .unwrap();
        let walker = PageTableWalker::new(CostModel::default());
        let out = walker.walk(&mem, builder.root(), vpn.base_address(), MemPerms::WRITE);
        assert!(matches!(out, WalkOutcome::Fault { .. }));
        let ok = walker.walk(&mem, builder.root(), vpn.base_address(), MemPerms::READ);
        assert!(ok.physical_address().is_some());
    }

    #[test]
    fn adjacent_pages_share_tables() {
        let (mut mem, mut builder, mut free) = setup();
        let allocated_before = free.len();
        for i in 0..4u64 {
            builder
                .map(
                    &mut mem,
                    VirtPageNum::new(0x100 + i),
                    PhysAddr::new(0x8000_0000 + (40 + i) * PAGE_SIZE as u64).page_number(),
                    MemPerms::RWX,
                    || free.pop(),
                )
                .unwrap();
        }
        // Only two table pages (levels 1 and 2) should have been allocated.
        assert_eq!(allocated_before - free.len(), 2);
        let walker = PageTableWalker::new(CostModel::default());
        for i in 0..4u64 {
            let out = walker.walk(
                &mem,
                builder.root(),
                VirtPageNum::new(0x100 + i).base_address(),
                MemPerms::EXEC,
            );
            assert!(out.physical_address().is_some());
        }
    }

    #[test]
    fn entry_encoding_round_trip() {
        let ppn = PhysPageNum::new(0xabcde);
        let leaf = PageTableEntry::leaf(ppn, MemPerms::RX);
        assert!(leaf.is_valid());
        assert!(leaf.is_leaf());
        assert_eq!(leaf.ppn(), ppn);
        assert_eq!(leaf.perms(), MemPerms::RX);
        let table = PageTableEntry::table(ppn);
        assert!(table.is_valid());
        assert!(!table.is_leaf());
        assert!(!PageTableEntry::INVALID.is_valid());
    }

    #[test]
    fn table_pages_needed_estimates() {
        // A small enclave fits under a single L2/L1 pair.
        assert_eq!(
            PageTableBuilder::table_pages_needed(VirtPageNum::new(0), 4),
            3
        );
        // Crossing a 2 MiB boundary needs an extra leaf table.
        assert_eq!(
            PageTableBuilder::table_pages_needed(VirtPageNum::new(510), 4),
            4
        );
    }

    #[test]
    fn allocator_exhaustion_reported() {
        let (mut mem, mut builder, _) = setup();
        let result = builder.map(
            &mut mem,
            VirtPageNum::new(1),
            PhysPageNum::new(0x80010),
            MemPerms::RW,
            || None,
        );
        assert!(result.is_err());
    }
}
