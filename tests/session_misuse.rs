//! Seeded property tests for [`SecureSession`] misuse — the session-layer
//! companion to the mailbox-fabric proptests in
//! `crates/explorer/tests/fabric.rs`.
//!
//! A [`Runner`]-driven harness replays an adversarial delivery schedule
//! against a receiving session — honest in-order traffic interleaved with
//! replays, future (reordered) messages, truncations, tampered tags and
//! counter-reusing re-encryptions — and checks after every delivery that:
//!
//! * only the exact next expected counter ever opens; every misuse shape is
//!   rejected with the right error class and **never advances** the
//!   receiver (the honest remainder of the stream still opens afterwards);
//! * a counter reused across `seal` (a second sender instance re-encrypting
//!   under the same keys) is rejected exactly like a replay, even though
//!   the ciphertext authenticates;
//! * every strict prefix of a sealed message fails to open.

use proptest::prelude::*;
use sanctorum_crypto::secretbox::OpenError;
use sanctorum_verifier::SecureSession;

const SHARED_SECRET: [u8; 32] = [0x42; 32];
const ATTESTATION_NONCE: [u8; 32] = [0x07; 32];

fn paired_sessions() -> (SecureSession, SecureSession) {
    (
        SecureSession::new(&SHARED_SECRET, &ATTESTATION_NONCE),
        SecureSession::new(&SHARED_SECRET, &ATTESTATION_NONCE),
    )
}

/// One adversarial delivery decision, decoded from a generated word pair.
#[derive(Debug, Clone, Copy)]
enum Delivery {
    /// Deliver the next in-order message (must open).
    Honest,
    /// Replay message `index % delivered` (must be rejected, no advance).
    Replay { index: u64 },
    /// Deliver a message sealed `skip + 1` counters ahead (reorder; must be
    /// rejected, and the skipped messages must still open later).
    Future { skip: u64 },
    /// Deliver a strict prefix of the next message (must be rejected).
    Truncate { keep: u64 },
    /// Flip one bit of the next message (must be rejected, no advance).
    Tamper { bit: u64 },
    /// Re-seal the oldest delivered plaintext on a *fresh* sender with the
    /// same keys — a counter reused across seal (must be rejected exactly
    /// like a replay even though the tag authenticates).
    ReuseCounter,
}

fn delivery_from_words(w: &[u64; 2]) -> Delivery {
    match w[0] % 8 {
        0..=2 => Delivery::Honest,
        3 => Delivery::Replay { index: w[1] },
        4 => Delivery::Future { skip: w[1] % 3 },
        5 => Delivery::Truncate { keep: w[1] },
        6 => Delivery::Tamper { bit: w[1] },
        _ => Delivery::ReuseCounter,
    }
}

struct Harness {
    sender: SecureSession,
    receiver: SecureSession,
    /// Messages sealed so far, in counter order; `delivered` of them have
    /// been accepted by the receiver.
    sealed: Vec<Vec<u8>>,
    delivered: usize,
}

impl Harness {
    fn new() -> Self {
        let (sender, receiver) = paired_sessions();
        Self {
            sender,
            receiver,
            sealed: Vec::new(),
            delivered: 0,
        }
    }

    fn plaintext(counter: usize) -> Vec<u8> {
        format!("fleet session message {counter}").into_bytes()
    }

    /// Seals up to and including counter `counter`, lazily.
    fn sealed_through(&mut self, counter: usize) -> Vec<u8> {
        while self.sealed.len() <= counter {
            let plaintext = Self::plaintext(self.sealed.len());
            self.sealed.push(self.sender.seal(&plaintext));
        }
        self.sealed[counter].clone()
    }

    fn apply(&mut self, delivery: Delivery) -> Result<(), String> {
        let before = self.receiver.messages_received();
        match delivery {
            Delivery::Honest => {
                let message = self.sealed_through(self.delivered);
                let opened = self
                    .receiver
                    .open(&message)
                    .map_err(|e| format!("honest in-order delivery rejected: {e}"))?;
                if opened != Self::plaintext(self.delivered) {
                    return Err("in-order delivery opened to the wrong plaintext".into());
                }
                self.delivered += 1;
                if self.receiver.messages_received() != before + 1 {
                    return Err("accepted message did not advance the receiver".into());
                }
                return Ok(());
            }
            Delivery::Replay { index } => {
                if self.delivered == 0 {
                    return Ok(());
                }
                let message = self.sealed[(index % self.delivered as u64) as usize].clone();
                self.expect_rejected(&message, OpenError::OutOfOrder, "replay", before)?;
            }
            Delivery::Future { skip } => {
                let ahead = self.delivered + 1 + skip as usize;
                let message = self.sealed_through(ahead);
                self.expect_rejected(&message, OpenError::OutOfOrder, "reorder", before)?;
            }
            Delivery::Truncate { keep } => {
                let message = self.sealed_through(self.delivered);
                let truncated = &message[..(keep % message.len() as u64) as usize];
                if self.receiver.open(truncated).is_ok() {
                    return Err(format!(
                        "a {}-byte prefix of a {}-byte message opened",
                        truncated.len(),
                        message.len()
                    ));
                }
            }
            Delivery::Tamper { bit } => {
                let mut message = self.sealed_through(self.delivered);
                let bits = message.len() as u64 * 8;
                let flip = (bit % bits) as usize;
                message[flip / 8] ^= 1 << (flip % 8);
                if self.receiver.open(&message).is_ok() {
                    return Err("a bit-flipped message opened".into());
                }
            }
            Delivery::ReuseCounter => {
                if self.delivered == 0 {
                    return Ok(());
                }
                // A fresh sender under the same keys starts at counter 0 —
                // sealing here *reuses* the oldest consumed counter. The
                // result authenticates, so only the ordering check stands
                // between the receiver and accepting it twice.
                let (mut reused, _) = paired_sessions();
                let message = reused.seal(&Self::plaintext(0));
                self.expect_rejected(&message, OpenError::OutOfOrder, "counter reuse", before)?;
            }
        }
        if self.receiver.messages_received() != before {
            return Err(format!("{delivery:?}: a rejected delivery advanced the receiver"));
        }
        Ok(())
    }

    fn expect_rejected(
        &mut self,
        message: &[u8],
        expected: OpenError,
        what: &str,
        counter_before: u64,
    ) -> Result<(), String> {
        match self.receiver.open(message) {
            Ok(_) => Err(format!("{what} was accepted")),
            Err(err) if err == expected => Ok(()),
            Err(err) => Err(format!("{what} rejected as {err:?}, expected {expected:?}")),
        }?;
        if self.receiver.messages_received() != counter_before {
            return Err(format!("{what} advanced the receiver despite rejection"));
        }
        Ok(())
    }

    /// After any misuse schedule, the honest remainder must still flow.
    fn drain_honest(&mut self) -> Result<(), String> {
        for _ in 0..3 {
            self.apply(Delivery::Honest)?;
        }
        Ok(())
    }
}

#[test]
fn misuse_schedules_never_desynchronize_the_session() {
    let strategy = proptest::collection::vec(0u64.., 2..80);
    let result = Runner::new(0x5e5510).cases(48).run(&strategy, |words| {
        let mut harness = Harness::new();
        for chunk in words.chunks_exact(2) {
            let delivery = delivery_from_words(&[chunk[0], chunk[1]]);
            harness.apply(delivery).map_err(|e| format!("{delivery:?}: {e}"))?;
        }
        harness.drain_honest()
    });
    if let Err(failure) = result {
        panic!("session misuse property violated:\n{failure}");
    }
}

#[test]
fn every_truncation_of_every_message_is_rejected() {
    // Directed exhaustive version: every strict prefix of each of the first
    // few messages fails, and the intact message still opens afterwards.
    let (mut sender, mut receiver) = paired_sessions();
    for counter in 0..4usize {
        let sealed = sender.seal(format!("message {counter}").as_bytes());
        for keep in 0..sealed.len() {
            assert!(
                receiver.open(&sealed[..keep]).is_err(),
                "prefix {keep}/{} of message {counter} opened",
                sealed.len()
            );
            assert_eq!(receiver.messages_received(), counter as u64);
        }
        assert!(receiver.open(&sealed).is_ok());
    }
}

#[test]
fn sealing_twice_under_one_counter_is_detected_downstream() {
    // Two sender instances under the same keys both seal counter 0: the
    // receiver accepts exactly one of the two — whichever arrives first —
    // and rejects the other without advancing.
    let (mut first, mut receiver) = paired_sessions();
    let (mut second, _) = paired_sessions();
    let a = first.seal(b"payment: 10");
    let b = second.seal(b"payment: 9999");
    assert_eq!(receiver.open(&a).expect("first arrival opens"), b"payment: 10");
    assert_eq!(receiver.open(&b), Err(OpenError::OutOfOrder));
    assert_eq!(receiver.messages_received(), 1);
}
