//! `cargo xtask` — workspace development tasks.
//!
//! The only task so far is `lint`, the custom static-analysis pass that
//! enforces source-level invariants the Rust compiler cannot express (see
//! [`lint`]). Run as `cargo xtask lint`; CI runs it next to build/test.

#![forbid(unsafe_code)]

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = workspace_root();
            let violations = lint::run(&root);
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                eprintln!("xtask lint: ok");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask lint\n  (got: {:?})",
                other.unwrap_or("<missing>")
            );
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}
