//! Ed25519-SHA3 signatures.
//!
//! Structure and curve follow RFC 8032; the internal hash is SHA3-512 instead
//! of SHA-512 (see the crate-level documentation for the rationale). The SM's
//! attestation key pair, the manufacturer PKI of `sanctorum-verifier` and the
//! signing enclave all use this scheme.

use crate::field::FieldElement;
use crate::scalar::Scalar;
use crate::sha3::Sha3_512;
use serde::{Deserialize, Serialize};

/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a secret key seed in bytes.
pub const SECRET_KEY_LEN: usize = 32;
/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;

/// A point on the Ed25519 curve in extended twisted-Edwards coordinates.
#[derive(Debug, Clone, Copy)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

/// Returns the curve constant `d = -121665/121666 mod p`.
///
/// Computed once per process: the division costs a full field inversion
/// (~250 squarings), and `d` is consumed by every point addition and
/// decompression on the attestation hot path.
fn constant_d() -> FieldElement {
    static CACHE: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        -(FieldElement::from_u64(121665) * FieldElement::from_u64(121666).invert())
    })
}

/// Returns `2d`, the form the unified addition law consumes.
fn constant_2d() -> FieldElement {
    static CACHE: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| constant_d() + constant_d())
}

/// Extracts radix-16 digit `i` (little-endian nibbles) of a scalar encoding.
fn nibble(bytes: &[u8; 32], i: usize) -> u8 {
    let byte = bytes[i / 2];
    if i % 2 == 1 {
        byte >> 4
    } else {
        byte & 0x0f
    }
}

impl EdwardsPoint {
    /// The identity (neutral) element.
    pub fn identity() -> Self {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard base point `B` (y = 4/5, x recovered with even sign).
    ///
    /// Decompressed once per process — recovering x costs a square-root
    /// exponentiation, and the base point is needed by every sign/verify.
    pub fn basepoint() -> Self {
        static CACHE: std::sync::OnceLock<EdwardsPoint> = std::sync::OnceLock::new();
        *CACHE.get_or_init(|| {
            let y = FieldElement::from_u64(4) * FieldElement::from_u64(5).invert();
            let mut compressed = y.to_bytes();
            compressed[31] &= 0x7f; // sign bit 0: the canonical Bx is even
            Self::decompress(&compressed).expect("base point decompression cannot fail")
        })
    }

    /// Unified point addition (valid for doubling as well, since `a = -1` is
    /// square and `d` is non-square, making the Edwards addition law
    /// complete).
    #[must_use]
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let d2 = constant_2d();
        let a = (self.y - self.x) * (other.y - other.x);
        let b = (self.y + self.x) * (other.y + other.x);
        let c = self.t * d2 * other.t;
        let d = self.z * other.z + self.z * other.z;
        let e = b - a;
        let f = d - c;
        let g = d + c;
        let h = b + a;
        EdwardsPoint {
            x: e * f,
            y: g * h,
            t: e * h,
            z: f * g,
        }
    }

    /// Point doubling via the dedicated `dbl-2008-hwcd` formulas (4M + 4S,
    /// against the unified addition's 9M) — doublings are the bulk of every
    /// variable-base scalar multiplication, so this is where certificate
    /// verification spends its time.
    #[must_use]
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let z2 = self.z.square();
        let c = z2 + z2;
        let d = -a; // the curve constant a = -1
        let e = (self.x + self.y).square() - a - b;
        let g = d + b;
        let f = g - c;
        let h = d - b;
        EdwardsPoint {
            x: e * f,
            y: g * h,
            t: e * h,
            z: f * g,
        }
    }

    /// Scalar multiplication with a 4-bit fixed window.
    ///
    /// A 15-entry table of `[P, 2P, …, 15P]` turns the classic bit-at-a-time
    /// double-and-add (256 doublings + ~128 additions) into 256 doublings +
    /// at most 64 table additions — the same group element, ~40% fewer point
    /// operations, and the dominant cost of certificate-chain verification.
    #[must_use]
    pub fn scalar_mul(&self, scalar: &Scalar) -> EdwardsPoint {
        let mut table = [*self; 15];
        for i in 1..15 {
            table[i] = table[i - 1].add(self);
        }
        let bytes = scalar.to_bytes();
        let mut result = EdwardsPoint::identity();
        for digit in (0..64).rev() {
            result = result.double().double().double().double();
            let d = nibble(&bytes, digit);
            if d != 0 {
                result = result.add(&table[(d - 1) as usize]);
            }
        }
        result
    }

    /// Computes `s·B` for the fixed base point via a precomputed comb.
    ///
    /// The table holds `n·16^i·B` for every radix-16 digit position `i` and
    /// digit value `n`, built once per process (64 × 15 points). A fixed-base
    /// multiplication then costs at most 64 point additions and zero
    /// doublings — this is what every signature issue and the `s·B` half of
    /// every verification pay.
    pub fn basepoint_mul(scalar: &Scalar) -> EdwardsPoint {
        static COMB: std::sync::OnceLock<Vec<[EdwardsPoint; 15]>> = std::sync::OnceLock::new();
        let comb = COMB.get_or_init(|| {
            let mut rows = Vec::with_capacity(64);
            let mut base = Self::basepoint();
            for _ in 0..64 {
                let mut row = [base; 15];
                for i in 1..15 {
                    row[i] = row[i - 1].add(&base);
                }
                base = row[14].add(&base); // 16·base: the next digit position
                rows.push(row);
            }
            rows
        });
        let bytes = scalar.to_bytes();
        let mut result = EdwardsPoint::identity();
        for (digit, row) in comb.iter().enumerate() {
            let d = nibble(&bytes, digit);
            if d != 0 {
                result = result.add(&row[(d - 1) as usize]);
            }
        }
        result
    }

    /// Computes `Σ scalarᵢ·pointᵢ` with one shared doubling chain.
    ///
    /// Straus interleaving: each point gets its own 15-entry window table,
    /// but the 256 doublings that dominate a variable-base multiplication are
    /// paid **once for the whole sum** instead of once per point. For `n`
    /// points the cost is `256 doublings + n·(14 + ≤64) additions` against
    /// `n·(256 doublings + ≤78 additions)` for independent multiplications —
    /// the enabler for batch signature verification.
    #[must_use]
    pub fn multiscalar_mul(pairs: &[(Scalar, EdwardsPoint)]) -> EdwardsPoint {
        let tables: Vec<[EdwardsPoint; 15]> = pairs
            .iter()
            .map(|(_, p)| {
                let mut table = [*p; 15];
                for i in 1..15 {
                    table[i] = table[i - 1].add(p);
                }
                table
            })
            .collect();
        let digits: Vec<[u8; 32]> = pairs.iter().map(|(s, _)| s.to_bytes()).collect();
        let mut result = EdwardsPoint::identity();
        for digit in (0..64).rev() {
            result = result.double().double().double().double();
            for (bytes, table) in digits.iter().zip(&tables) {
                let d = nibble(bytes, digit);
                if d != 0 {
                    result = result.add(&table[(d - 1) as usize]);
                }
            }
        }
        result
    }

    /// Maps the point to the u-coordinate of the birationally equivalent
    /// Curve25519 Montgomery point: `u = (1 + y)/(1 - y)`, computed
    /// projectively as `(Z + Y)/(Z − Y)`. The exceptional point `y = 1` (the
    /// identity) yields 0 — exactly what the Montgomery ladder outputs for
    /// scalars ≡ 0 (mod l), so the two X25519 routes agree everywhere.
    pub fn montgomery_u(&self) -> [u8; 32] {
        let num = self.z + self.y;
        let den = self.z - self.y;
        (num * den.invert()).to_bytes()
    }

    /// Compresses the point to its 32-byte encoding (y with the sign of x in
    /// the top bit).
    pub fn compress(&self) -> [u8; 32] {
        let z_inv = self.z.invert();
        let x = self.x * z_inv;
        let y = self.y * z_inv;
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding into a point, if it is valid.
    pub fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        let sign = (bytes[31] >> 7) & 1;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = FieldElement::from_bytes(&y_bytes);

        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let y2 = y.square();
        let u = y2 - FieldElement::ONE;
        let v = constant_d() * y2 + FieldElement::ONE;

        // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8).
        let v3 = v.square() * v;
        let v7 = v3.square() * v;
        let mut x = u * v3 * (u * v7).pow_p58();

        let vx2 = v * x.square();
        if vx2 == u {
            // x is already a square root.
        } else if vx2 == -u {
            x = x * FieldElement::sqrt_m1();
        } else {
            return None;
        }

        if x.is_zero() && sign == 1 {
            // -0 is not a valid encoding.
            return None;
        }
        if (x.is_negative() as u8) != sign {
            x = -x;
        }

        Some(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x * y,
        })
    }

    /// Returns `true` if both points represent the same affine point.
    pub fn equals(&self, other: &EdwardsPoint) -> bool {
        // Cross-multiply to avoid inversions: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
        (self.x * other.z).ct_equals(&(other.x * self.z))
            && (self.y * other.z).ct_equals(&(other.y * self.z))
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        self.equals(other)
    }
}

impl Eq for EdwardsPoint {}

/// An Ed25519-SHA3 secret key (the 32-byte seed).
#[derive(Clone, Serialize, Deserialize)]
pub struct SecretKey {
    seed: [u8; SECRET_KEY_LEN],
}

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SecretKey(<redacted>)")
    }
}

/// An Ed25519-SHA3 public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    bytes: [u8; PUBLIC_KEY_LEN],
}

/// An Ed25519-SHA3 signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    r: [u8; 32],
    s: [u8; 32],
}

/// A key pair (seed plus cached public key).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Keypair {
    secret: SecretKey,
    public: PublicKey,
}

fn clamp(mut scalar_bytes: [u8; 32]) -> [u8; 32] {
    scalar_bytes[0] &= 248;
    scalar_bytes[31] &= 127;
    scalar_bytes[31] |= 64;
    scalar_bytes
}

impl SecretKey {
    /// Creates a secret key from a 32-byte seed.
    pub fn from_seed(seed: [u8; SECRET_KEY_LEN]) -> Self {
        Self { seed }
    }

    /// Returns the seed bytes.
    pub fn seed(&self) -> &[u8; SECRET_KEY_LEN] {
        &self.seed
    }

    fn expand(&self) -> (Scalar, [u8; 32]) {
        let h = Sha3_512::digest(&self.seed);
        let mut scalar_bytes = [0u8; 32];
        scalar_bytes.copy_from_slice(&h[..32]);
        let scalar_bytes = clamp(scalar_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        (Scalar::from_unreduced_bytes(&scalar_bytes), prefix)
    }

    /// Derives the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        let (a, _) = self.expand();
        PublicKey {
            bytes: EdwardsPoint::basepoint_mul(&a).compress(),
        }
    }
}

impl PublicKey {
    /// Constructs a public key from its 32-byte encoding.
    ///
    /// # Errors
    ///
    /// Returns `None` if the bytes do not decode to a curve point.
    pub fn from_bytes(bytes: [u8; PUBLIC_KEY_LEN]) -> Option<Self> {
        EdwardsPoint::decompress(&bytes).map(|_| PublicKey { bytes })
    }

    /// Returns the 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; PUBLIC_KEY_LEN] {
        self.bytes
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let a = match EdwardsPoint::decompress(&self.bytes) {
            Some(p) => p,
            None => return false,
        };
        let r = match EdwardsPoint::decompress(&signature.r) {
            Some(p) => p,
            None => return false,
        };
        let s = match Scalar::from_canonical_bytes(&signature.s) {
            Some(s) => s,
            None => return false,
        };

        let mut h = Sha3_512::new();
        h.update(&signature.r);
        h.update(&self.bytes);
        h.update(message);
        let k = Scalar::from_bytes_mod_order(&h.finalize());

        // Check s·B == R + k·A.
        let lhs = EdwardsPoint::basepoint_mul(&s);
        let rhs = r.add(&a.scalar_mul(&k));
        lhs.equals(&rhs)
    }
}

/// Verifies a batch of signatures with a single random-linear-combination
/// check: `(Σ zᵢ·sᵢ)·B == Σ zᵢ·Rᵢ + Σ (zᵢ·kᵢ)·Aᵢ` over 128-bit coefficients
/// `zᵢ` derived Fiat–Shamir-style from the whole batch. The doubling chain of
/// the combined multiscalar multiplication is shared across every signature,
/// so per-signature cost falls well below an independent [`PublicKey::verify`]
/// once the batch holds a handful of items.
///
/// Returns `true` only when the combined equation holds. A `true` result
/// implies each signature passes cofactorless verification except with
/// negligible probability in the prime-order subgroup; like every
/// random-linear-combination batch verifier, signatures differing from a
/// valid one only by small-order (torsion) components in `R` can slip
/// through, which single verification would reject. Callers wanting
/// per-item verdicts (or exact single-verification semantics on rejection)
/// should fall back to [`PublicKey::verify`] per item when this returns
/// `false`.
pub fn verify_batch(items: &[(&PublicKey, &[u8], &Signature)]) -> bool {
    if items.is_empty() {
        return true;
    }

    let mut r_points = Vec::with_capacity(items.len());
    let mut a_points = Vec::with_capacity(items.len());
    let mut s_scalars = Vec::with_capacity(items.len());
    let mut k_scalars = Vec::with_capacity(items.len());
    for (public, message, signature) in items {
        let a = match EdwardsPoint::decompress(&public.bytes) {
            Some(p) => p,
            None => return false,
        };
        let r = match EdwardsPoint::decompress(&signature.r) {
            Some(p) => p,
            None => return false,
        };
        let s = match Scalar::from_canonical_bytes(&signature.s) {
            Some(s) => s,
            None => return false,
        };
        let mut h = Sha3_512::new();
        h.update(&signature.r);
        h.update(&public.bytes);
        h.update(message);
        r_points.push(r);
        a_points.push(a);
        s_scalars.push(s);
        k_scalars.push(Scalar::from_bytes_mod_order(&h.finalize()));
    }

    // The coefficients are bound to the whole batch (every signature, key and
    // message) so no input can be chosen to cancel another term after the
    // coefficients are fixed; the run stays deterministic for replay.
    let mut transcript = Sha3_512::new();
    transcript.update(b"sanctorum-ed25519-batch-v1");
    for (public, message, signature) in items {
        transcript.update(&signature.r);
        transcript.update(&public.bytes);
        transcript.update(&(message.len() as u64).to_le_bytes());
        transcript.update(message);
    }
    let seed = transcript.finalize();
    let coefficient = |i: usize| -> Scalar {
        let mut h = Sha3_512::new();
        h.update(&seed);
        h.update(&(i as u64).to_le_bytes());
        let mut z = [0u8; 16];
        z.copy_from_slice(&h.finalize()[..16]);
        z[0] |= 1; // nonzero and odd: a lone torsioned term can never vanish
        Scalar::from_bytes_mod_order(&z)
    };

    let mut combined_s = Scalar::ZERO;
    let mut pairs = Vec::with_capacity(2 * items.len());
    for i in 0..items.len() {
        let z = coefficient(i);
        combined_s = z.mul_add(&s_scalars[i], &combined_s);
        // 128-bit coefficients: the high 32 nibbles are zero, so the
        // multiscalar window walk skips them for free.
        pairs.push((z, r_points[i]));
        pairs.push((z.mul(&k_scalars[i]), a_points[i]));
    }

    let lhs = EdwardsPoint::basepoint_mul(&combined_s);
    let rhs = EdwardsPoint::multiscalar_mul(&pairs);
    lhs.equals(&rhs)
}

impl Signature {
    /// Constructs a signature from its 64-byte encoding.
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LEN]) -> Self {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Signature { r, s }
    }

    /// Returns the 64-byte encoding.
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..32].copy_from_slice(&self.r);
        out[32..].copy_from_slice(&self.s);
        out
    }
}

impl Keypair {
    /// Generates a key pair from a 32-byte seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use sanctorum_crypto::ed25519::Keypair;
    /// let kp = Keypair::from_seed([7u8; 32]);
    /// let sig = kp.sign(b"measurement report");
    /// assert!(kp.public().verify(b"measurement report", &sig));
    /// assert!(!kp.public().verify(b"tampered report", &sig));
    /// ```
    pub fn from_seed(seed: [u8; SECRET_KEY_LEN]) -> Self {
        let secret = SecretKey::from_seed(seed);
        let public = secret.public_key();
        Self { secret, public }
    }

    /// Generates a key pair from an entropy/DRBG source.
    pub fn generate(drbg: &mut crate::drbg::ChaChaDrbg) -> Self {
        Self::from_seed(drbg.random_array())
    }

    /// Returns the public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Returns the secret key.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let (a, prefix) = self.secret.expand();

        let mut h = Sha3_512::new();
        h.update(&prefix);
        h.update(message);
        let r = Scalar::from_bytes_mod_order(&h.finalize());

        let r_point = EdwardsPoint::basepoint_mul(&r).compress();

        let mut h = Sha3_512::new();
        h.update(&r_point);
        h.update(&self.public.bytes);
        h.update(message);
        let k = Scalar::from_bytes_mod_order(&h.finalize());

        let s = k.mul_add(&a, &r);
        Signature {
            r: r_point,
            s: s.to_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_has_order_l() {
        // l·B must be the identity.
        let l_minus_1 = {
            let mut b = crate::scalar::L_BYTES;
            b[0] -= 1;
            Scalar::from_canonical_bytes(&b).expect("l-1 is canonical")
        };
        let b = EdwardsPoint::basepoint();
        let almost = b.scalar_mul(&l_minus_1);
        assert_eq!(almost.add(&b), EdwardsPoint::identity());
    }

    #[test]
    fn basepoint_compress_round_trip() {
        let b = EdwardsPoint::basepoint();
        let c = b.compress();
        let d = EdwardsPoint::decompress(&c).expect("round trip");
        assert_eq!(b, d);
    }

    #[test]
    fn identity_properties() {
        let id = EdwardsPoint::identity();
        let b = EdwardsPoint::basepoint();
        assert_eq!(id.add(&b), b);
        assert_eq!(b.add(&id), b);
        assert_eq!(id.double(), id);
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let b = EdwardsPoint::basepoint();
        let two_b = b.double();
        let three_b = two_b.add(&b);
        assert_eq!(b.add(&two_b), two_b.add(&b));
        assert_eq!(three_b.add(&b), two_b.add(&two_b));
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let b = EdwardsPoint::basepoint();
        let mut five = [0u8; 32];
        five[0] = 5;
        let five_s = Scalar::from_canonical_bytes(&five).expect("canonical");
        let by_mul = b.scalar_mul(&five_s);
        let by_add = b.double().double().add(&b);
        assert_eq!(by_mul, by_add);
    }

    #[test]
    fn windowed_scalar_mul_matches_bit_serial_double_and_add() {
        // Reference implementation: the classic one-bit-at-a-time ladder the
        // windowed path replaced. Both must agree on every scalar shape,
        // including the comb's fixed-base path.
        fn bit_serial(p: &EdwardsPoint, scalar: &Scalar) -> EdwardsPoint {
            let mut result = EdwardsPoint::identity();
            for bit in (0..256).rev() {
                result = result.double();
                if scalar.bit(bit) == 1 {
                    result = result.add(p);
                }
            }
            result
        }
        let b = EdwardsPoint::basepoint();
        let mut drbg = crate::drbg::ChaChaDrbg::from_seed([0xC4u8; 32]);
        for _ in 0..8 {
            let s = Scalar::from_bytes_mod_order(&drbg.random_array::<64>());
            let reference = bit_serial(&b, &s);
            assert_eq!(b.scalar_mul(&s), reference);
            assert_eq!(EdwardsPoint::basepoint_mul(&s), reference);
        }
        // Edge scalars: zero and one.
        assert_eq!(EdwardsPoint::basepoint_mul(&Scalar::ZERO), EdwardsPoint::identity());
        let one = Scalar::from_canonical_bytes(&{
            let mut b = [0u8; 32];
            b[0] = 1;
            b
        })
        .expect("canonical");
        assert_eq!(EdwardsPoint::basepoint_mul(&one), b);
    }

    #[test]
    fn dedicated_double_matches_unified_addition() {
        // The dbl-2008-hwcd formulas must agree with `P + P` under the
        // complete addition law on arbitrary points (including identity).
        let mut drbg = crate::drbg::ChaChaDrbg::from_seed([0xD0u8; 32]);
        let mut p = EdwardsPoint::identity();
        assert_eq!(p.double(), p.add(&p));
        for _ in 0..16 {
            let s = Scalar::from_bytes_mod_order(&drbg.random_array::<64>());
            p = EdwardsPoint::basepoint_mul(&s);
            assert_eq!(p.double(), p.add(&p));
        }
    }

    #[test]
    fn multiscalar_matches_independent_scalar_muls() {
        let mut drbg = crate::drbg::ChaChaDrbg::from_seed([0xE1u8; 32]);
        for n in [0usize, 1, 2, 5] {
            let pairs: Vec<(Scalar, EdwardsPoint)> = (0..n)
                .map(|_| {
                    let s = Scalar::from_bytes_mod_order(&drbg.random_array::<64>());
                    let p = EdwardsPoint::basepoint()
                        .scalar_mul(&Scalar::from_bytes_mod_order(&drbg.random_array::<64>()));
                    (s, p)
                })
                .collect();
            let expected = pairs
                .iter()
                .fold(EdwardsPoint::identity(), |acc, (s, p)| acc.add(&p.scalar_mul(s)));
            assert_eq!(EdwardsPoint::multiscalar_mul(&pairs), expected);
        }
    }

    #[test]
    fn batch_verification_accepts_honest_batches() {
        assert!(verify_batch(&[]));
        let keys: Vec<Keypair> = (0..6u8).map(|i| Keypair::from_seed([i + 1; 32])).collect();
        let messages: Vec<Vec<u8>> =
            (0..6).map(|i| format!("attestation report {i}").into_bytes()).collect();
        let sigs: Vec<Signature> =
            keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        for n in [1, 2, 6] {
            let batch: Vec<(&PublicKey, &[u8], &Signature)> = (0..n)
                .map(|i| (keys[i].public(), messages[i].as_slice(), &sigs[i]))
                .collect();
            assert!(verify_batch(&batch), "honest batch of {n} rejected");
        }
    }

    #[test]
    fn batch_verification_rejects_any_bad_item() {
        let keys: Vec<Keypair> = (0..4u8).map(|i| Keypair::from_seed([i + 10; 32])).collect();
        let messages: Vec<Vec<u8>> =
            (0..4).map(|i| format!("report {i}").into_bytes()).collect();
        let sigs: Vec<Signature> =
            keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        for bad in 0..4usize {
            let batch: Vec<(&PublicKey, &[u8], &Signature)> = (0..4)
                .map(|i| {
                    let msg: &[u8] = if i == bad { b"tampered" } else { messages[i].as_slice() };
                    (keys[i].public(), msg, &sigs[i])
                })
                .collect();
            assert!(!verify_batch(&batch), "batch with bad item {bad} accepted");
        }
        // A wrong-key item is also rejected.
        let batch: Vec<(&PublicKey, &[u8], &Signature)> = (0..4)
            .map(|i| {
                let key = if i == 2 { keys[0].public() } else { keys[i].public() };
                (key, messages[i].as_slice(), &sigs[i])
            })
            .collect();
        assert!(!verify_batch(&batch));
        // Malformed encodings are rejected, not skipped.
        let mut bad_sig = sigs[0].to_bytes();
        bad_sig[3] ^= 0x40;
        let bad_sig = Signature::from_bytes(&bad_sig);
        assert!(!verify_batch(&[(keys[0].public(), messages[0].as_slice(), &bad_sig)]));
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = Keypair::from_seed([42u8; 32]);
        let msg = b"remote attestation nonce + measurement";
        let sig = kp.sign(msg);
        assert!(kp.public().verify(msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = Keypair::from_seed([42u8; 32]);
        let sig = kp.sign(b"original");
        assert!(!kp.public().verify(b"originaL", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed([42u8; 32]);
        let sig = kp.sign(b"msg");
        let mut bytes = sig.to_bytes();
        bytes[5] ^= 1;
        assert!(!kp.public().verify(b"msg", &Signature::from_bytes(&bytes)));
        let mut bytes = sig.to_bytes();
        bytes[40] ^= 1;
        assert!(!kp.public().verify(b"msg", &Signature::from_bytes(&bytes)));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = Keypair::from_seed([1u8; 32]);
        let kp2 = Keypair::from_seed([2u8; 32]);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn non_canonical_s_rejected() {
        // Add l to s: same value mod l but a non-canonical encoding, which a
        // strict verifier must reject (signature malleability).
        let kp = Keypair::from_seed([3u8; 32]);
        let sig = kp.sign(b"msg");
        let s = crate::bignum::U512::from_le_bytes(&sig.s);
        let l = crate::bignum::U512::from_le_bytes(&crate::scalar::L_BYTES);
        let malleated = s.wrapping_add(&l).to_le_bytes_32();
        let bad = Signature { r: sig.r, s: malleated };
        assert!(!kp.public().verify(b"msg", &bad));
    }

    #[test]
    fn signature_serialization_round_trip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let sig = kp.sign(b"data");
        let round = Signature::from_bytes(&sig.to_bytes());
        assert_eq!(sig, round);
        assert!(kp.public().verify(b"data", &round));
    }

    #[test]
    fn public_key_from_bytes_validates() {
        let kp = Keypair::from_seed([8u8; 32]);
        assert!(PublicKey::from_bytes(kp.public().to_bytes()).is_some());
        // y = 1 implies x = 0; an encoding claiming x = 0 is "negative"
        // (sign bit set) is invalid and must be rejected.
        let mut negative_zero = [0u8; 32];
        negative_zero[0] = 1;
        negative_zero[31] = 0x80;
        assert!(PublicKey::from_bytes(negative_zero).is_none());
    }

    #[test]
    fn distinct_seeds_give_distinct_keys() {
        let a = Keypair::from_seed([1u8; 32]);
        let b = Keypair::from_seed([2u8; 32]);
        assert_ne!(a.public().to_bytes(), b.public().to_bytes());
    }

    #[test]
    fn deterministic_signatures() {
        let kp = Keypair::from_seed([5u8; 32]);
        assert_eq!(kp.sign(b"m").to_bytes(), kp.sign(b"m").to_bytes());
        assert_ne!(kp.sign(b"m").to_bytes(), kp.sign(b"n").to_bytes());
    }
}
