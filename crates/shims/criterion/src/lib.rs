//! Minimal stand-in for the subset of `criterion` the workspace benches use.
//!
//! It runs each benchmark closure for a warm-up pass and a fixed measured
//! pass, then prints mean wall-clock time per iteration in criterion-like
//! one-line format. Statistical machinery (outlier analysis, HTML reports)
//! is intentionally absent: the workspace's figures are driven by *simulated
//! cycle counts* read from the machine model, and wall-clock numbers are
//! only a sanity signal. The API mirrors criterion closely enough that the
//! bench sources compile unchanged against the real crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-implementation of `criterion::black_box` on stable std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark configuration and entry point (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (kept for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.clone(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self, "", id, None, &mut f);
        self
    }
}

/// Identifier combining a function name and a parameter (subset of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Into-id conversion so both `&str` and [`BenchmarkId`] are accepted.
pub trait IntoBenchmarkId {
    /// Renders the id text.
    fn id_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn id_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn id_text(self) -> String {
        self.to_string()
    }
}

/// Throughput annotation (subset of `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates subsequent benches with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample size for this group (API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.config, &self.name, &id.id_text(), self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: IntoBenchmarkId, P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&self.config, &self.name, &id.id_text(), self.throughput, &mut g);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    /// Number of iterations the closure must execute when using
    /// [`Bencher::iter_custom`].
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time itself: it receives the iteration count and
    /// returns the total elapsed time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iterations);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up: run once to estimate per-iteration cost.
    let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().checked_div(warm_iters.max(1) as u32)
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));

    // Measured pass: size the iteration count to the measurement budget.
    let target_iters = (config.measurement_time.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 10_000_000) as u64;
    let mut b = Bencher { iterations: target_iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / target_iters.max(1) as f64;

    let full_name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let throughput_note = match throughput {
        Some(Throughput::Bytes(bytes)) if mean_ns > 0.0 => {
            let gib_s = bytes as f64 / mean_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
            format!("  thrpt: {gib_s:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let melem_s = n as f64 / mean_ns * 1e3;
            format!("  thrpt: {melem_s:.3} Melem/s")
        }
        _ => String::new(),
    };
    println!("{full_name:<60} time: {}{throughput_note}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner (subset of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` (subset of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
