//! The machine facade: configuration, shared components and the guest
//! execution loop.

use crate::access::{AccessControl, AccessRange};
use crate::cache::{CacheGeometry, CacheModel, PartitionId};
use crate::dma::{pages_touched, DmaError};
use crate::guest::{ExitReason, GuestOp, GuestProgram, RunResult};
use crate::hart::{HartState, PrivilegeLevel, NUM_REGS};
use crate::mem::{MemError, PhysMemory};
use crate::pagetable::{PageTableWalker, WalkOutcome};
use crate::tlb::{Tlb, TlbEntry};
use crate::trap::{AccessKind, Interrupt, TrapCause};
use parking_lot::{Mutex, MutexGuard, RwLock};
use sanctorum_hal::addr::{PhysAddr, Span, VirtAddr, PAGE_SIZE};
use sanctorum_hal::cycles::{CostModel, Cycles};
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::perm::MemPerms;
use sanctorum_hal::root::SimulatedRootOfTrust;
use sanctorum_trust::{AccessOracle, CanRead, CanWrite, Checked, Sanitizer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Static configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of harts (in-order, single-threaded cores).
    pub num_harts: usize,
    /// Base physical address of DRAM.
    pub memory_base: PhysAddr,
    /// DRAM size in bytes (page aligned).
    pub memory_size: usize,
    /// Size of one isolable DRAM region in bytes — the Sanctum backend carves
    /// memory into regions of exactly this size (the paper's hardware uses
    /// 32 MiB; the simulation scales this down so tests stay fast).
    pub dram_region_size: usize,
    /// Number of TLB entries per hart.
    pub tlb_entries: usize,
    /// Geometry of the shared last-level cache.
    pub cache: CacheGeometry,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Number of PMP entries available to a Keystone-style backend.
    pub pmp_entries: usize,
    /// Device serial number (roots the simulated PKI).
    pub device_id: u64,
}

impl MachineConfig {
    /// A small two-hart machine with 8 MiB of DRAM in 1 MiB regions —
    /// the default for unit tests.
    pub fn small() -> Self {
        Self {
            num_harts: 2,
            memory_base: PhysAddr::new(0x8000_0000),
            memory_size: 8 * 1024 * 1024,
            dram_region_size: 1024 * 1024,
            tlb_entries: 32,
            cache: CacheGeometry {
                sets: 256,
                ways: 4,
                line_size: 64,
            },
            cost: CostModel::default_model(),
            pmp_entries: 8,
            device_id: 0x5a17c70b,
        }
    }

    /// A larger four-hart machine with 64 MiB of DRAM in 4 MiB regions —
    /// used by the benchmark harness.
    pub fn default_config() -> Self {
        Self {
            num_harts: 4,
            memory_base: PhysAddr::new(0x8000_0000),
            memory_size: 64 * 1024 * 1024,
            dram_region_size: 4 * 1024 * 1024,
            tlb_entries: 64,
            cache: CacheGeometry::default_llc(),
            cost: CostModel::default_model(),
            pmp_entries: 16,
            device_id: 0xdec0de00,
        }
    }

    /// Number of DRAM regions implied by the memory size and region size.
    pub fn num_regions(&self) -> usize {
        self.memory_size / self.dram_region_size
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// Errors surfaced by privileged physical-memory helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// The underlying physical access failed.
    Memory(MemError),
    /// The hart id does not exist on this machine.
    UnknownHart(CoreId),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Memory(e) => write!(f, "{e}"),
            MachineError::UnknownHart(c) => write!(f, "unknown hart {c}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<MemError> for MachineError {
    fn from(e: MemError) -> Self {
        MachineError::Memory(e)
    }
}

/// The simulated machine.
///
/// All components use interior mutability so the machine can be shared (via
/// `Arc`) between the security monitor, the untrusted OS model and several
/// host threads driving different harts concurrently.
///
/// # Cross-hart concurrency protocol
///
/// The machine's locks are **leaves** of the system's lock hierarchy: no
/// machine method ever calls back into the monitor, so holding monitor
/// locks while taking machine locks is safe and the reverse never happens
/// (the monitor's debug lock-order checker therefore does not track them).
/// Internally:
///
/// * `memory` and `access` are reader-writer locks — two harts can fault,
///   translate and load pages concurrently (page-table walks and access
///   checks take shared read locks); only stores, DMA, zeroing and the
///   digest cache take the write lock. Both dirty-page bitmaps live inside
///   `PhysMemory`, so every mutator marks them under the same write lock
///   that changes the bytes — a drain can never race a write into
///   under-reporting.
/// * `harts`, `tlbs` and `pending_interrupts` are per-hart locks: harts
///   never take each other's state lock except in `tlb_shootdown`
///   (which takes the TLB locks one at a time, never nested).
/// * `partition_map` is a reader-writer lock: it is read on every guest
///   memory access by every hart and written only when the monitor
///   assigns a cache partition.
/// * `cache` (the LLC model) and `trng` are plain mutexes: both model
///   genuinely serialized hardware resources.
pub struct Machine {
    config: MachineConfig,
    memory: RwLock<PhysMemory>,
    access: RwLock<AccessControl>,
    cache: Mutex<CacheModel>,
    harts: Vec<Mutex<HartState>>,
    tlbs: Vec<Mutex<Tlb>>,
    partition_map: RwLock<HashMap<DomainKind, PartitionId>>,
    walker: PageTableWalker,
    total_cycles: AtomicU64,
    pending_interrupts: Vec<Mutex<Vec<Interrupt>>>,
    trng: Mutex<u64>,
    root_of_trust: SimulatedRootOfTrust,
    fault: crate::fault::FaultInjector,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Machine {{ harts: {}, memory: {:#x} bytes, regions: {} }}",
            self.config.num_harts,
            self.config.memory_size,
            self.config.num_regions()
        )
    }
}

impl Machine {
    /// Creates a machine from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no harts, unaligned memory
    /// size, or a region size that does not divide the memory size).
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.num_harts > 0, "machine needs at least one hart");
        assert_eq!(
            config.memory_size % config.dram_region_size,
            0,
            "region size must divide memory size"
        );
        let memory = PhysMemory::new(config.memory_base, config.memory_size);
        let harts = (0..config.num_harts)
            .map(|i| Mutex::new(HartState::new(CoreId::new(i as u32))))
            .collect();
        let tlbs = (0..config.num_harts)
            .map(|_| Mutex::new(Tlb::new(config.tlb_entries)))
            .collect();
        let pending_interrupts = (0..config.num_harts).map(|_| Mutex::new(Vec::new())).collect();
        Self {
            memory: RwLock::new(memory),
            access: RwLock::new(AccessControl::new()),
            cache: Mutex::new(CacheModel::new(config.cache, config.cost)),
            harts,
            tlbs,
            partition_map: RwLock::new(HashMap::new()),
            walker: PageTableWalker::new(config.cost),
            total_cycles: AtomicU64::new(0),
            pending_interrupts,
            trng: Mutex::new(config.device_id ^ 0x9e3779b97f4a7c15),
            root_of_trust: SimulatedRootOfTrust::new(config.device_id),
            fault: crate::fault::FaultInjector::new(),
            config,
        }
    }

    /// Returns the machine's fault-injection switchboard. Disarmed by
    /// default; crash harnesses arm it around the operation under test.
    /// Injector state is deliberately outside [`state_digest`]
    /// (harts + DRAM only), so arming never perturbs replay digests.
    ///
    /// [`state_digest`]: Self::state_digest
    pub fn fault_injector(&self) -> &crate::fault::FaultInjector {
        &self.fault
    }

    /// Returns the machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Returns the device root of trust.
    pub fn root_of_trust(&self) -> &SimulatedRootOfTrust {
        &self.root_of_trust
    }

    /// Returns total cycles accumulated across all harts and SM operations.
    pub fn total_cycles(&self) -> Cycles {
        Cycles::new(self.total_cycles.load(Ordering::Relaxed))
    }

    /// Charges `cycles` to the global counter (the SM uses this to account
    /// for its own work: hashing, flushes, metadata updates).
    pub fn charge(&self, cycles: Cycles) {
        self.total_cycles.fetch_add(cycles.count(), Ordering::Relaxed);
    }

    /// Returns the cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.config.cost
    }

    /// Fingerprints the machine's deterministic state: every hart's
    /// architected state (registers, pc, privilege, domain, page-table root,
    /// pending trap) folded together with the full DRAM image.
    ///
    /// The machine steps deterministically — `run_guest` consumes no
    /// wall-clock or host randomness, interrupts are only ever raised
    /// explicitly, and the TRNG derives from the configured device id — so
    /// two machines driven by identical operation sequences must report
    /// identical digests. Replay harnesses (the adversarial explorer) assert
    /// exactly that before trusting a `(seed, step)` reproduction.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0u64;
        for hart in &self.harts {
            let hart = hart.lock();
            let mut words: Vec<u8> = Vec::with_capacity((NUM_REGS + 8) * 8);
            for reg in hart.regs.iter() {
                words.extend_from_slice(&reg.to_le_bytes());
            }
            words.extend_from_slice(&hart.pc.to_le_bytes());
            words.push(hart.privilege as u8);
            words.extend_from_slice(
                &match hart.domain {
                    DomainKind::Untrusted => 1u64,
                    DomainKind::SecurityMonitor => 2,
                    DomainKind::Enclave(eid) => 0x8000_0000_0000_0000 | eid.as_u64(),
                }
                .to_le_bytes(),
            );
            words.extend_from_slice(
                &hart
                    .page_table_root
                    .map(|r| r.as_u64())
                    .unwrap_or(u64::MAX)
                    .to_le_bytes(),
            );
            words.push(hart.pending_trap.is_some() as u8);
            h = crate::mem::fnv1a(h, &words);
        }
        // The memory fingerprint is cached per page and refreshed from the
        // dirty bitmap (see `PhysMemory::digest`), hence the write lock.
        self.memory.write().digest(h)
    }

    /// Fingerprints the per-hart queues of raised-but-undelivered
    /// interrupts.
    ///
    /// [`state_digest`](Self::state_digest) intentionally covers only
    /// architectural hart and memory state (its value is pinned by replay
    /// tests), but a queued interrupt changes future behavior — a world
    /// that has ticked differs from one that hasn't even before the
    /// interrupt is taken. State-space searches must fold this digest into
    /// their visited-set key alongside `state_digest` or they will prune
    /// unsoundly.
    pub fn pending_interrupt_digest(&self) -> u64 {
        let mut h = 0x1474u64;
        for pending in &self.pending_interrupts {
            let pending = pending.lock();
            let mut bytes: Vec<u8> = Vec::with_capacity(pending.len() + 1);
            bytes.push(0xfe);
            bytes.extend(pending.iter().map(|i| match i {
                Interrupt::Timer => 1u8,
                Interrupt::Software => 2,
                Interrupt::External => 3,
            }));
            h = crate::mem::fnv1a(h, &bytes);
        }
        h
    }

    /// Returns the indices (relative to `memory_base`, ascending) of every
    /// DRAM page written — by stores, DMA or zeroing — since the previous
    /// drain, and clears the tracking bitmap. The result is a superset of
    /// the pages whose contents actually changed (rewrites of identical
    /// bytes are still reported), so incremental scanners built on it never
    /// miss a write.
    pub fn drain_dirty_pages(&self) -> Vec<u64> {
        self.memory.write().drain_dirty_pages()
    }

    // ----- physical memory (privileged view) --------------------------------

    /// Reads bytes from physical memory with the SM's unrestricted view.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is not populated DRAM.
    pub fn phys_read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MachineError> {
        Ok(self.memory.read().read_bytes(addr, buf)?)
    }

    /// Writes bytes to physical memory with the SM's unrestricted view.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is not populated DRAM.
    pub fn phys_write(&self, addr: PhysAddr, data: &[u8]) -> Result<(), MachineError> {
        Ok(self.memory.write().write_bytes(addr, data)?)
    }

    /// Reads a `u64` from physical memory.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is not populated DRAM.
    pub fn phys_read_u64(&self, addr: PhysAddr) -> Result<u64, MachineError> {
        Ok(self.memory.read().read_u64(addr)?)
    }

    /// Writes a `u64` to physical memory.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is not populated DRAM.
    pub fn phys_write_u64(&self, addr: PhysAddr, value: u64) -> Result<(), MachineError> {
        Ok(self.memory.write().write_u64(addr, value)?)
    }

    /// Zeroes the page containing `addr`, charging the zero-page cost.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is not populated DRAM.
    pub fn zero_page(&self, addr: PhysAddr) -> Result<Cycles, MachineError> {
        self.memory.write().zero_page(addr)?;
        let cost = self.config.cost.zero_page;
        self.charge(cost);
        Ok(cost)
    }

    /// Runs `f` with a mutable reference to physical memory (used by loaders
    /// that need multi-step exclusive access, e.g. the page-table builder).
    pub fn with_memory_mut<R>(&self, f: impl FnOnce(&mut PhysMemory) -> R) -> R {
        f(&mut self.memory.write())
    }

    /// Runs `f` with a shared reference to physical memory.
    pub fn with_memory<R>(&self, f: impl FnOnce(&PhysMemory) -> R) -> R {
        f(&self.memory.read())
    }

    // ----- access control ----------------------------------------------------

    /// Runs `f` with the mutable access-control table (platform backends use
    /// this to program isolation).
    pub fn with_access_mut<R>(&self, f: impl FnOnce(&mut AccessControl) -> R) -> R {
        f(&mut self.access.write())
    }

    /// Runs `f` with the shared access-control table.
    pub fn with_access<R>(&self, f: impl FnOnce(&AccessControl) -> R) -> R {
        f(&self.access.read())
    }

    /// Convenience wrapper checking whether `domain` may access `addr`.
    pub fn check_access(&self, domain: DomainKind, addr: PhysAddr, perms: MemPerms) -> bool {
        self.access.read().check(domain, addr, perms).is_allowed()
    }

    // ----- trust boundary (checked sinks) -----------------------------------

    /// A [`Sanitizer`] backed by this machine's access table and DRAM
    /// geometry — the only way untrusted addresses become usable.
    pub fn sanitizer(&self) -> Sanitizer<'_> {
        Sanitizer::new(self)
    }

    /// Reads `buf.len()` bytes at `offset` within a span the caller proved
    /// readable. Access was discharged when the proof was minted; DRAM
    /// containment is (deliberately) still checked here, so requests naming
    /// unpopulated addresses keep failing at the copy, exactly where the
    /// unchecked `phys_read` used to fail.
    ///
    /// # Errors
    ///
    /// Returns an error if the window exceeds the proved span or the range
    /// is not populated DRAM.
    pub fn read_span<P: CanRead>(
        &self,
        span: &Checked<Span, P>,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), MachineError> {
        let span = span.get();
        let addr = Self::span_window(span, offset, buf.len())?;
        Ok(self.memory.read().read_bytes(addr, buf)?)
    }

    /// Writes `data` at `offset` within a span the caller proved writable.
    /// Same containment behavior as [`Machine::read_span`].
    ///
    /// # Errors
    ///
    /// Returns an error if the window exceeds the proved span or the range
    /// is not populated DRAM.
    pub fn write_span<P: CanWrite>(
        &self,
        span: &Checked<Span, P>,
        offset: u64,
        data: &[u8],
    ) -> Result<(), MachineError> {
        let span = span.get();
        let addr = Self::span_window(span, offset, data.len())?;
        Ok(self.memory.write().write_bytes(addr, data)?)
    }

    /// Reads one proved-readable page into `buf` (at most [`PAGE_SIZE`]
    /// bytes).
    ///
    /// # Errors
    ///
    /// Returns an error if the page is not populated DRAM.
    pub fn read_page<P: CanRead>(
        &self,
        page: &Checked<PhysAddr, P>,
        buf: &mut [u8],
    ) -> Result<(), MachineError> {
        debug_assert!(buf.len() <= PAGE_SIZE);
        Ok(self.memory.read().read_bytes(page.get(), buf)?)
    }

    /// Bounds-checks a `(offset, len)` window against a proved span and
    /// returns its base address. Exceeding the proof is an SM-internal bug,
    /// never reachable from untrusted arguments; it is reported as the same
    /// out-of-range error a raw access would produce.
    fn span_window(span: Span, offset: u64, len: usize) -> Result<PhysAddr, MachineError> {
        let fits = offset
            .checked_add(len as u64)
            .is_some_and(|end| end <= span.len());
        let addr = span.base().offset(offset);
        if !fits {
            debug_assert!(fits, "sink window exceeds the proved span");
            return Err(MachineError::Memory(MemError::OutOfRange { addr, len }));
        }
        Ok(addr)
    }

    /// Lists the currently programmed protected ranges.
    pub fn protected_ranges(&self) -> Vec<AccessRange> {
        self.access.read().ranges().to_vec()
    }

    /// Monotone mutation counter of the access-control table: unchanged
    /// between two reads ⇒ the protected ranges are identical, so consumers
    /// re-validating range properties after every step (the explorer's
    /// overlap check) can skip the work.
    pub fn access_generation(&self) -> u64 {
        self.access.read().generation()
    }

    // ----- cache and partitions ----------------------------------------------

    /// Runs `f` with the cache model.
    pub fn with_cache_mut<R>(&self, f: impl FnOnce(&mut CacheModel) -> R) -> R {
        f(&mut self.cache.lock())
    }

    /// Assigns `domain` to cache `partition` (Sanctum page colouring). The
    /// default for unknown domains is partition 0.
    pub fn set_partition(&self, domain: DomainKind, partition: PartitionId) {
        self.partition_map.write().insert(domain, partition);
    }

    /// Returns the cache partition used by `domain`.
    pub fn partition_of(&self, domain: DomainKind) -> PartitionId {
        *self
            .partition_map
            .read()
            .get(&domain)
            .unwrap_or(&PartitionId(0))
    }

    // ----- harts and TLBs -----------------------------------------------------

    /// Number of harts on the machine.
    pub fn num_harts(&self) -> usize {
        self.config.num_harts
    }

    /// Locks and returns the state of hart `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn hart(&self, id: CoreId) -> MutexGuard<'_, HartState> {
        self.harts[id.index()].lock()
    }

    /// Locks and returns the TLB of hart `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tlb(&self, id: CoreId) -> MutexGuard<'_, Tlb> {
        self.tlbs[id.index()].lock()
    }

    /// Returns `true` if `id` names a hart on this machine.
    pub fn has_hart(&self, id: CoreId) -> bool {
        id.index() < self.harts.len()
    }

    /// Cleans hart `id`: zeroes architected state, flushes its TLB and
    /// charges the core-flush cost. This is the hardware half of the paper's
    /// "clean the core resource" operation.
    ///
    /// # Errors
    ///
    /// Returns an error if the hart does not exist.
    pub fn clean_core(&self, id: CoreId) -> Result<Cycles, MachineError> {
        if !self.has_hart(id) {
            return Err(MachineError::UnknownHart(id));
        }
        self.harts[id.index()].lock().clean();
        self.tlbs[id.index()].lock().flush_all();
        let cost = self.config.cost.flush_core;
        self.charge(cost);
        Ok(cost)
    }

    /// Performs a TLB shootdown for the physical range `[base, base+len)` on
    /// every hart, returning the total cost (one inter-processor round per
    /// remote hart, as on Sanctum region re-assignment).
    pub fn tlb_shootdown(&self, base: PhysAddr, len: u64) -> Cycles {
        let pages = len / PAGE_SIZE as u64;
        for tlb in &self.tlbs {
            tlb.lock().flush_phys_range(base.page_number(), pages);
        }
        let cost = self
            .config
            .cost
            .tlb_shootdown
            .scaled(self.config.num_harts as u64);
        self.charge(cost);
        cost
    }

    /// Queues an interrupt for hart `id`; it will be delivered at the next
    /// guest-op boundary (this is how the OS model forces an asynchronous
    /// enclave exit).
    ///
    /// # Errors
    ///
    /// Returns an error if the hart does not exist.
    pub fn raise_interrupt(&self, id: CoreId, interrupt: Interrupt) -> Result<(), MachineError> {
        if !self.has_hart(id) {
            return Err(MachineError::UnknownHart(id));
        }
        self.pending_interrupts[id.index()].lock().push(interrupt);
        Ok(())
    }

    fn take_interrupt(&self, id: CoreId) -> Option<Interrupt> {
        let mut pending = self.pending_interrupts[id.index()].lock();
        if pending.is_empty() {
            None
        } else {
            Some(pending.remove(0))
        }
    }

    /// Returns `true` if an interrupt is pending for hart `id`.
    pub fn interrupt_pending(&self, id: CoreId) -> bool {
        self.has_hart(id) && !self.pending_interrupts[id.index()].lock().is_empty()
    }

    // ----- entropy ------------------------------------------------------------

    /// Returns bytes from the simulated hardware TRNG.
    ///
    /// The stream is deterministic per device so experiments are
    /// reproducible; a real platform wires this to a physical noise source.
    pub fn trng_bytes<const N: usize>(&self) -> [u8; N] {
        let mut state = self.trng.lock();
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mixed = (*state ^ (*state >> 29)).wrapping_mul(0xbf58476d1ce4e5b9);
            let bytes = mixed.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        out
    }

    // ----- DMA ----------------------------------------------------------------

    /// Performs a DMA copy on behalf of an untrusted device.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError::Blocked`] if any touched page is protected from
    /// DMA, [`DmaError::OutOfRange`] for unpopulated memory and
    /// [`DmaError::EmptyTransfer`] for zero-length requests. No bytes are
    /// copied if any check fails.
    pub fn dma_copy(&self, src: PhysAddr, dst: PhysAddr, len: u64) -> Result<Cycles, DmaError> {
        if len == 0 {
            return Err(DmaError::EmptyTransfer);
        }
        {
            let access = self.access.read();
            for page in pages_touched(src, len).into_iter().chain(pages_touched(dst, len)) {
                if !access.check_dma(page).is_allowed() {
                    return Err(DmaError::Blocked { addr: page });
                }
            }
        }
        let mut buf = vec![0u8; len as usize];
        {
            let mem = self.memory.read();
            mem.read_bytes(src, &mut buf).map_err(|_| DmaError::OutOfRange)?;
        }
        self.memory
            .write()
            .write_bytes(dst, &buf)
            .map_err(|_| DmaError::OutOfRange)?;
        let cost = self
            .config
            .cost
            .mem_miss
            .scaled(len.div_ceil(self.config.cache.line_size as u64));
        self.charge(cost);
        Ok(cost)
    }

    // ----- guest execution ----------------------------------------------------

    /// Translates `vaddr` for the domain currently installed on `hart`,
    /// consulting the TLB, walking the page table on a miss and enforcing the
    /// isolation primitive on the resulting physical address.
    fn translate(
        &self,
        hart: &HartState,
        vaddr: VirtAddr,
        kind: AccessKind,
        needed: MemPerms,
    ) -> Result<(PhysAddr, Cycles), TrapCause> {
        let mut cost = Cycles::ZERO;
        let root = match hart.page_table_root {
            Some(r) => r,
            None => {
                // Machine-mode physical addressing: the address is physical.
                let paddr = PhysAddr::new(vaddr.as_u64());
                return if self.check_access(hart.domain, paddr, needed) {
                    Ok((paddr, cost))
                } else {
                    Err(TrapCause::IsolationFault { kind, addr: vaddr })
                };
            }
        };

        let vpn = vaddr.page_number();
        let cached = self.tlbs[hart.id.index()].lock().lookup(hart.domain, vpn);
        let (paddr, perms) = match cached {
            Some(entry) => (
                entry.ppn.base_address().offset(vaddr.page_offset() as u64),
                entry.perms,
            ),
            None => {
                let outcome = {
                    let mem = self.memory.read();
                    self.walker.walk(&mem, root, vaddr, needed)
                };
                match outcome {
                    WalkOutcome::Translated { addr, perms, cost: walk_cost } => {
                        cost += walk_cost;
                        self.tlbs[hart.id.index()].lock().insert(TlbEntry {
                            vpn,
                            ppn: addr.page_number(),
                            perms,
                            domain: hart.domain,
                        });
                        (addr, perms)
                    }
                    WalkOutcome::Fault { cost: walk_cost } => {
                        cost += walk_cost;
                        self.charge(cost);
                        return Err(TrapCause::PageFault { kind, addr: vaddr });
                    }
                }
            }
        };

        if !perms.allows(needed) {
            self.charge(cost);
            return Err(TrapCause::PageFault { kind, addr: vaddr });
        }
        if !self.check_access(hart.domain, paddr, needed) {
            self.charge(cost);
            return Err(TrapCause::IsolationFault { kind, addr: vaddr });
        }
        Ok((paddr, cost))
    }

    /// Runs `program` on hart `id` for at most `max_steps` guest ops,
    /// starting from the hart's current PC.
    ///
    /// The hart's privilege, domain and page-table root must have been set up
    /// by the caller (the SM does this on enclave entry; the OS model does it
    /// for untrusted tasks). On return the hart state reflects where
    /// execution stopped, so the caller can resume by calling again.
    ///
    /// # Panics
    ///
    /// Panics if the hart id is out of range.
    pub fn run_guest(&self, id: CoreId, program: &GuestProgram, max_steps: u64) -> RunResult {
        let mut cycles = Cycles::ZERO;
        let mut steps = 0u64;
        let cost = self.config.cost;

        let exit = loop {
            if steps >= max_steps {
                break ExitReason::OutOfSteps;
            }
            // Interrupts are recognised at op boundaries.
            if let Some(irq) = self.take_interrupt(id) {
                let mut hart = self.hart(id);
                hart.pending_trap = Some(TrapCause::Interrupt(irq));
                cycles += cost.trap_entry;
                break ExitReason::Trap(TrapCause::Interrupt(irq));
            }

            let mut hart = self.hart(id);
            let pc = hart.pc;
            let Some(op) = program.op_at(pc) else {
                break ExitReason::Trap(TrapCause::IllegalInstruction);
            };
            steps += 1;
            cycles += cost.alu_op;
            match op {
                GuestOp::MovImm { dst, value } => {
                    hart.regs[dst as usize % 32] = value;
                    hart.pc = pc + 1;
                }
                GuestOp::Add { dst, a, b } => {
                    hart.regs[dst as usize % 32] =
                        hart.regs[a as usize % 32].wrapping_add(hart.regs[b as usize % 32]);
                    hart.pc = pc + 1;
                }
                GuestOp::Compute { cycles: c } => {
                    cycles += Cycles::new(c);
                    hart.pc = pc + 1;
                }
                GuestOp::Jump { target } => {
                    hart.pc = target;
                }
                GuestOp::BranchNonZero { reg, target } => {
                    if hart.regs[reg as usize % 32] != 0 {
                        hart.pc = target;
                    } else {
                        hart.pc = pc + 1;
                    }
                }
                GuestOp::Load { dst, addr } => {
                    let vaddr = VirtAddr::new(hart.regs[addr as usize % 32]);
                    match self.translate(&hart, vaddr, AccessKind::Load, MemPerms::READ) {
                        Ok((paddr, tcost)) => {
                            cycles += tcost;
                            let partition = self.partition_of(hart.domain);
                            cycles += self.cache.lock().access(partition, paddr);
                            match self.memory.read().read_u64(paddr) {
                                Ok(v) => {
                                    hart.regs[dst as usize % 32] = v;
                                    hart.pc = pc + 1;
                                }
                                Err(_) => {
                                    let trap = TrapCause::PageFault {
                                        kind: AccessKind::Load,
                                        addr: vaddr,
                                    };
                                    hart.pending_trap = Some(trap);
                                    cycles += cost.trap_entry;
                                    break ExitReason::Trap(trap);
                                }
                            }
                        }
                        Err(trap) => {
                            hart.pending_trap = Some(trap);
                            cycles += cost.trap_entry;
                            break ExitReason::Trap(trap);
                        }
                    }
                }
                GuestOp::Store { src, addr } => {
                    let vaddr = VirtAddr::new(hart.regs[addr as usize % 32]);
                    match self.translate(&hart, vaddr, AccessKind::Store, MemPerms::WRITE) {
                        Ok((paddr, tcost)) => {
                            cycles += tcost;
                            let partition = self.partition_of(hart.domain);
                            cycles += self.cache.lock().access(partition, paddr);
                            let value = hart.regs[src as usize % 32];
                            match self.memory.write().write_u64(paddr, value) {
                                Ok(()) => {
                                    hart.pc = pc + 1;
                                }
                                Err(_) => {
                                    let trap = TrapCause::PageFault {
                                        kind: AccessKind::Store,
                                        addr: vaddr,
                                    };
                                    hart.pending_trap = Some(trap);
                                    cycles += cost.trap_entry;
                                    break ExitReason::Trap(trap);
                                }
                            }
                        }
                        Err(trap) => {
                            hart.pending_trap = Some(trap);
                            cycles += cost.trap_entry;
                            break ExitReason::Trap(trap);
                        }
                    }
                }
                GuestOp::Ecall => {
                    hart.pc = pc + 1;
                    hart.pending_trap = Some(TrapCause::EnvironmentCall);
                    cycles += cost.trap_entry;
                    break ExitReason::Ecall;
                }
                GuestOp::Exit => {
                    hart.pc = pc + 1;
                    break ExitReason::Completed;
                }
            }
        };

        // Account cycles to the hart and the machine.
        self.hart(id).cycles += cycles;
        self.charge(cycles);
        RunResult { exit, cycles, steps }
    }

    /// Prepares hart `id` to run on behalf of `domain` at `privilege` with
    /// the given page-table root and entry PC. Used by the SM on enclave
    /// entry and by the OS model when scheduling untrusted tasks.
    ///
    /// # Panics
    ///
    /// Panics if the hart id is out of range.
    pub fn install_context(
        &self,
        id: CoreId,
        domain: DomainKind,
        privilege: PrivilegeLevel,
        page_table_root: Option<PhysAddr>,
        pc: u64,
    ) {
        let mut hart = self.hart(id);
        hart.domain = domain;
        hart.privilege = privilege;
        hart.page_table_root = page_table_root;
        hart.pc = pc;
        hart.pending_trap = None;
    }
}

/// The machine *is* the sanitizer's oracle: span access resolves against the
/// access-control table under a single read-lock acquisition, and geometry
/// against the populated DRAM range.
impl AccessOracle for Machine {
    fn allows_span(&self, domain: DomainKind, span: Span, perms: MemPerms) -> bool {
        self.access
            .read()
            .check_span(domain, span.base(), span.len(), perms)
    }

    fn dram_contains(&self, span: Span) -> bool {
        self.memory.read().contains(span.base(), span.len() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::{GuestProgram, REG_A0};
    use crate::pagetable::PageTableBuilder;
    use sanctorum_hal::domain::EnclaveId;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small())
    }

    /// Builds an identity-ish page table mapping `pages` consecutive virtual
    /// pages starting at vaddr 0x10000 to physical pages starting at
    /// `phys_base`, with table pages taken from `table_base`.
    fn build_address_space(
        m: &Machine,
        table_base: PhysAddr,
        phys_base: PhysAddr,
        pages: u64,
    ) -> PhysAddr {
        m.with_memory_mut(|mem| {
            mem.zero_page(table_base).unwrap();
            let mut builder = PageTableBuilder::new(table_base);
            let mut next_table = table_base.offset(PAGE_SIZE as u64);
            for i in 0..pages {
                builder
                    .map(
                        mem,
                        VirtAddr::new(0x10000 + i * PAGE_SIZE as u64).page_number(),
                        phys_base.offset(i * PAGE_SIZE as u64).page_number(),
                        MemPerms::RW,
                        || {
                            let page = next_table;
                            next_table = next_table.offset(PAGE_SIZE as u64);
                            Some(page)
                        },
                    )
                    .unwrap();
            }
            builder.root()
        })
    }

    #[test]
    fn config_sanity() {
        let m = machine();
        assert_eq!(m.num_harts(), 2);
        assert_eq!(m.config().num_regions(), 8);
        assert!(m.has_hart(CoreId::new(1)));
        assert!(!m.has_hart(CoreId::new(2)));
    }

    #[test]
    fn guest_store_and_load_round_trip() {
        let m = machine();
        let base = m.config().memory_base;
        let root = build_address_space(&m, base.offset(0x10_0000), base.offset(0x20_0000), 4);

        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            Some(root),
            0,
        );
        let store = GuestProgram::store_and_exit(0x10008, 0xabcdef);
        let result = m.run_guest(CoreId::new(0), &store, 100);
        assert_eq!(result.exit, ExitReason::Completed);
        assert!(result.cycles > Cycles::ZERO);

        // The value must be visible at the mapped physical address.
        let phys = base.offset(0x20_0000 + 8);
        assert_eq!(m.phys_read_u64(phys).unwrap(), 0xabcdef);

        // And loadable by a second program.
        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            Some(root),
            0,
        );
        let load = GuestProgram::load_and_exit(0x10008);
        let result = m.run_guest(CoreId::new(0), &load, 100);
        assert_eq!(result.exit, ExitReason::Completed);
        assert_eq!(m.hart(CoreId::new(0)).regs[REG_A0 as usize], 0xabcdef);
    }

    #[test]
    fn unmapped_access_page_faults() {
        let m = machine();
        let base = m.config().memory_base;
        let root = build_address_space(&m, base.offset(0x10_0000), base.offset(0x20_0000), 1);
        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            Some(root),
            0,
        );
        let program = GuestProgram::store_and_exit(0xdead_0000, 1);
        let result = m.run_guest(CoreId::new(0), &program, 100);
        assert!(matches!(
            result.exit,
            ExitReason::Trap(TrapCause::PageFault { .. })
        ));
    }

    #[test]
    fn isolation_fault_when_mapping_points_into_protected_range() {
        let m = machine();
        let base = m.config().memory_base;
        let enclave_mem = base.offset(0x40_0000);
        // Protect a range for an enclave.
        m.with_access_mut(|a| {
            a.protect(AccessRange {
                base: enclave_mem,
                len: 0x10_0000,
                owner: DomainKind::Enclave(EnclaveId::new(1)),
                owner_perms: MemPerms::RWX,
                untrusted_perms: MemPerms::NONE,
                dma_blocked: true,
            })
            .unwrap();
        });
        // The OS maliciously maps its own virtual page onto enclave memory.
        let root = build_address_space(&m, base.offset(0x10_0000), enclave_mem, 1);
        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            Some(root),
            0,
        );
        let program = GuestProgram::load_and_exit(0x10000);
        let result = m.run_guest(CoreId::new(0), &program, 100);
        assert!(matches!(
            result.exit,
            ExitReason::Trap(TrapCause::IsolationFault { .. })
        ));
    }

    #[test]
    fn ecall_exits_with_args_visible() {
        let m = machine();
        m.install_context(
            CoreId::new(1),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            None,
            0,
        );
        let program = GuestProgram::new(
            "ecall",
            vec![
                GuestOp::MovImm { dst: REG_A0, value: 42 },
                GuestOp::MovImm { dst: 11, value: 7 },
                GuestOp::Ecall,
                GuestOp::Exit,
            ],
        );
        let result = m.run_guest(CoreId::new(1), &program, 100);
        assert_eq!(result.exit, ExitReason::Ecall);
        let hart = m.hart(CoreId::new(1));
        assert_eq!(hart.regs[REG_A0 as usize], 42);
        assert_eq!(hart.regs[11], 7);
        assert_eq!(hart.pending_trap, Some(TrapCause::EnvironmentCall));
        // PC points past the ecall so execution can resume.
        assert_eq!(hart.pc, 3);
    }

    #[test]
    fn interrupt_preempts_guest() {
        let m = machine();
        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            None,
            0,
        );
        m.raise_interrupt(CoreId::new(0), Interrupt::Timer).unwrap();
        let program = GuestProgram::compute(1_000_000);
        let result = m.run_guest(CoreId::new(0), &program, 100);
        assert_eq!(
            result.exit,
            ExitReason::Trap(TrapCause::Interrupt(Interrupt::Timer))
        );
        assert!(!m.interrupt_pending(CoreId::new(0)));
    }

    #[test]
    fn out_of_steps_allows_resumption() {
        let m = machine();
        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            None,
            0,
        );
        let ops: Vec<GuestOp> = (0..10)
            .map(|i| GuestOp::MovImm { dst: 1, value: i })
            .chain([GuestOp::Exit])
            .collect();
        let program = GuestProgram::new("long", ops);
        let r1 = m.run_guest(CoreId::new(0), &program, 5);
        assert_eq!(r1.exit, ExitReason::OutOfSteps);
        let r2 = m.run_guest(CoreId::new(0), &program, 100);
        assert_eq!(r2.exit, ExitReason::Completed);
        assert_eq!(r1.steps + r2.steps, 11);
    }

    #[test]
    fn clean_core_erases_state_and_flushes_tlb() {
        let m = machine();
        let base = m.config().memory_base;
        let root = build_address_space(&m, base.offset(0x10_0000), base.offset(0x20_0000), 1);
        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            Some(root),
            0,
        );
        let program = GuestProgram::store_and_exit(0x10000, 5);
        m.run_guest(CoreId::new(0), &program, 100);
        assert!(!m.tlb(CoreId::new(0)).is_empty());
        m.clean_core(CoreId::new(0)).unwrap();
        assert!(m.hart(CoreId::new(0)).is_clean());
        assert!(m.tlb(CoreId::new(0)).is_empty());
        assert!(m.clean_core(CoreId::new(5)).is_err());
    }

    #[test]
    fn tlb_shootdown_removes_entries_on_all_harts() {
        let m = machine();
        let base = m.config().memory_base;
        let root = build_address_space(&m, base.offset(0x10_0000), base.offset(0x20_0000), 1);
        for hart in 0..2 {
            m.install_context(
                CoreId::new(hart),
                DomainKind::Untrusted,
                PrivilegeLevel::Supervisor,
                Some(root),
                0,
            );
            m.run_guest(CoreId::new(hart), &GuestProgram::store_and_exit(0x10000, 1), 100);
        }
        assert!(!m.tlb(CoreId::new(0)).is_empty());
        assert!(!m.tlb(CoreId::new(1)).is_empty());
        m.tlb_shootdown(base.offset(0x20_0000), 0x1000);
        assert_eq!(m.tlb(CoreId::new(0)).len(), 0);
        assert_eq!(m.tlb(CoreId::new(1)).len(), 0);
    }

    #[test]
    fn dma_respects_protection() {
        let m = machine();
        let base = m.config().memory_base;
        m.phys_write(base.offset(0x1000), b"public data").unwrap();
        // Unprotected copy succeeds.
        m.dma_copy(base.offset(0x1000), base.offset(0x3000), 16).unwrap();
        let mut buf = [0u8; 11];
        m.phys_read(base.offset(0x3000), &mut buf).unwrap();
        assert_eq!(&buf, b"public data");

        // Protect the destination for an enclave; DMA must now fail.
        m.with_access_mut(|a| {
            a.protect(AccessRange {
                base: base.offset(0x3000),
                len: 0x1000,
                owner: DomainKind::Enclave(EnclaveId::new(2)),
                owner_perms: MemPerms::RW,
                untrusted_perms: MemPerms::NONE,
                dma_blocked: true,
            })
            .unwrap();
        });
        let err = m.dma_copy(base.offset(0x1000), base.offset(0x3000), 16).unwrap_err();
        assert!(matches!(err, DmaError::Blocked { .. }));
        assert!(matches!(
            m.dma_copy(base, base.offset(0x1000), 0),
            Err(DmaError::EmptyTransfer)
        ));
    }

    #[test]
    fn trng_produces_distinct_blocks_and_is_device_deterministic() {
        let m1 = machine();
        let m2 = machine();
        let a: [u8; 32] = m1.trng_bytes();
        let b: [u8; 32] = m1.trng_bytes();
        assert_ne!(a, b);
        let c: [u8; 32] = m2.trng_bytes();
        assert_eq!(a, c, "same device id gives the same stream");
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let m = machine();
        let before = m.total_cycles();
        m.install_context(
            CoreId::new(0),
            DomainKind::Untrusted,
            PrivilegeLevel::Supervisor,
            None,
            0,
        );
        m.run_guest(CoreId::new(0), &GuestProgram::compute(1000), 10);
        assert!(m.total_cycles().count() >= before.count() + 1000);
        assert!(m.hart(CoreId::new(0)).cycles.count() >= 1000);
    }

    #[test]
    fn state_digest_is_deterministic_and_state_sensitive() {
        let drive = |m: &Machine| {
            m.install_context(
                CoreId::new(0),
                DomainKind::Untrusted,
                PrivilegeLevel::Supervisor,
                None,
                0,
            );
            m.run_guest(CoreId::new(0), &GuestProgram::compute(10), 10);
            m.phys_write_u64(m.config().memory_base.offset(0x2000), 0xabcd).unwrap();
        };
        let m1 = machine();
        let m2 = machine();
        drive(&m1);
        drive(&m2);
        assert_eq!(
            m1.state_digest(),
            m2.state_digest(),
            "identical op sequences must fingerprint identically"
        );
        // Any visible state change moves the digest.
        let before = m1.state_digest();
        m1.phys_write_u64(m1.config().memory_base.offset(0x2000), 0xabce).unwrap();
        assert_ne!(before, m1.state_digest());
        let before = m1.state_digest();
        m1.hart(CoreId::new(0)).regs[7] ^= 1;
        assert_ne!(before, m1.state_digest());
    }

    #[test]
    fn partition_map_defaults_to_zero() {
        let m = machine();
        let e = DomainKind::Enclave(EnclaveId::new(9));
        assert_eq!(m.partition_of(e), PartitionId(0));
        m.set_partition(e, PartitionId(3));
        assert_eq!(m.partition_of(e), PartitionId(3));
    }
}
