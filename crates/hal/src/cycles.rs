//! Deterministic cycle accounting.
//!
//! The simulated machine does not run in real time; instead every modelled
//! operation (instruction, memory access, cache flush, TLB shootdown, SM API
//! call) contributes a deterministic number of cycles. Benchmarks report both
//! wall-clock time of the simulation and these architectural cycle counts, the
//! latter being the quantity comparable to numbers a hardware implementation
//! would report.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// A count of simulated processor cycles.
///
/// # Examples
///
/// ```
/// use sanctorum_hal::cycles::Cycles;
/// let a = Cycles::new(100);
/// let b = Cycles::new(20);
/// assert_eq!((a + b).count(), 120);
/// assert_eq!((a - b).count(), 80);
/// assert_eq!([a, b].into_iter().sum::<Cycles>().count(), 120);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(count: u64) -> Self {
        Self(count)
    }

    /// Returns the raw count.
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Returns the count scaled by `factor`.
    #[must_use]
    pub const fn scaled(self, factor: u64) -> Self {
        Self(self.0 * factor)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Self {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// Cost model constants shared across the simulator and platform backends.
///
/// These are rough in-order-core figures (loads hitting L1, LLC misses to
/// DRAM, flush costs) chosen so that relative magnitudes of monitor
/// operations are realistic even though absolute values are arbitrary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of executing one simple ALU guest operation.
    pub alu_op: Cycles,
    /// Cost of a memory access that hits in the cache.
    pub mem_hit: Cycles,
    /// Cost of a memory access that misses to DRAM.
    pub mem_miss: Cycles,
    /// Cost of one level of a page-table walk.
    pub ptw_level: Cycles,
    /// Cost of a trap entry (pipeline flush + CSR save).
    pub trap_entry: Cycles,
    /// Cost of a trap return.
    pub trap_return: Cycles,
    /// Cost of zeroing one 4 KiB page.
    pub zero_page: Cycles,
    /// Cost of flushing one cache line.
    pub flush_line: Cycles,
    /// Cost of flushing architected core state (registers + L1).
    pub flush_core: Cycles,
    /// Cost of a TLB shootdown round (per remote hart).
    pub tlb_shootdown: Cycles,
    /// Cost of reprogramming one PMP entry.
    pub pmp_write: Cycles,
    /// Cost of hashing one 64-byte block with SHA-3.
    pub hash_block: Cycles,
}

impl CostModel {
    /// The default cost model used by both platform backends.
    pub const fn default_model() -> Self {
        Self {
            alu_op: Cycles::new(1),
            mem_hit: Cycles::new(2),
            mem_miss: Cycles::new(120),
            ptw_level: Cycles::new(40),
            trap_entry: Cycles::new(60),
            trap_return: Cycles::new(40),
            zero_page: Cycles::new(512),
            flush_line: Cycles::new(4),
            flush_core: Cycles::new(900),
            tlb_shootdown: Cycles::new(400),
            pmp_write: Cycles::new(8),
            hash_block: Cycles::new(1200),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles::new(5);
        let mut b = Cycles::new(7);
        b += a;
        assert_eq!(b, Cycles::new(12));
        assert_eq!(b - a, Cycles::new(7));
        assert_eq!(Cycles::new(3).scaled(4), Cycles::new(12));
        assert_eq!(Cycles::ZERO.count(), 0);
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        assert_eq!(Cycles::new(1).saturating_sub(Cycles::new(5)), Cycles::ZERO);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn default_cost_model_is_consistent() {
        let m = CostModel::default();
        assert!(m.mem_miss > m.mem_hit);
        assert!(m.flush_core > m.flush_line);
        assert_eq!(m, CostModel::default_model());
    }
}
