//! Fig. 1 — SM event dispatch: latency of the paths through the monitor's
//! event-handling flow (API ecall, OS interrupt delegation, AEX delegation).

use criterion::{criterion_group, criterion_main, Criterion};
use sanctorum_bench::{boot, boot_with_enclave};
use sanctorum_core::api::SmCall;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_machine::trap::{Interrupt, TrapCause};
use sanctorum_os::system::PlatformKind;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_dispatch");

    // Path 1: an SM API call arriving as an environment call (GetField).
    let (system, _os) = boot(PlatformKind::Sanctum);
    let core = CoreId::new(0);
    system.machine.install_context(core, DomainKind::Untrusted, PrivilegeLevel::Supervisor, None, 0);
    group.bench_function("api_ecall_get_field", |b| {
        b.iter(|| {
            system.monitor.stage_call(core, &SmCall::GetField { field: 3 });
            system.monitor.handle_event(core, TrapCause::EnvironmentCall)
        })
    });

    // Path 2: an illegal/unauthorized call is rejected.
    group.bench_function("api_ecall_rejected", |b| {
        b.iter(|| {
            system
                .monitor
                .stage_call(core, &SmCall::AcceptMail { mailbox: 0, sender_id: 0 });
            system.monitor.handle_event(core, TrapCause::EnvironmentCall)
        })
    });

    // Path 3: an OS interrupt with no enclave involved (pure delegation).
    group.bench_function("os_interrupt_delegation", |b| {
        b.iter(|| system.monitor.handle_event(core, TrapCause::Interrupt(Interrupt::Timer)))
    });

    // Path 4: an interrupt landing while an enclave runs — full AEX + resume.
    let (system2, _os2, built) = boot_with_enclave(PlatformKind::Sanctum);
    let core2 = CoreId::new(1);
    group.bench_function("enclave_interrupt_aex", |b| {
        b.iter(|| {
            system2
                .monitor
                .enter_enclave(DomainKind::Untrusted, built.eid, built.main_thread(), core2)
                .unwrap();
            system2
                .monitor
                .handle_event(core2, TrapCause::Interrupt(Interrupt::Timer))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dispatch
}
criterion_main!(benches);
