//! Fig. 5 — mailbox state machine: accept/send/get round trips over message
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot_attestation_setup;
use sanctorum_os::system::PlatformKind;
use sanctorum_trust::Tainted;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_mailbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_mailbox");
    let (system, _os, e1, e2) = boot_attestation_setup(PlatformKind::Sanctum);
    let sm = &system.monitor;
    let sender = CallerSession::enclave(e1.eid);
    let recipient = CallerSession::enclave(e2.eid);

    for size in [16usize, 256, 1024] {
        let message = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("accept_send_get", size),
            &size,
            |b, _| {
                b.iter(|| {
                    sm.accept_mail(recipient, 0, e1.eid.as_u64()).unwrap();
                    sm.send_mail(sender, e2.eid, Tainted::new(&message)).unwrap();
                    sm.get_mail(recipient, 0).unwrap()
                })
            },
        );
    }

    // Fabric burst: fill one wildcard mailbox queue, then peek + drain it
    // FIFO — the amortized multi-slot path the attestation service rides.
    group.bench_function("queued_burst_peek_drain", |b| {
        use sanctorum_core::mailbox::{ANY_SENDER, MAILBOX_QUEUE_DEPTH};
        sm.accept_mail(recipient, 2, ANY_SENDER).unwrap();
        let message = [0xa5u8; 256];
        // The OS is the burst sender: no specific filter matches sender 0,
        // so the burst routes into the wildcard mailbox being measured.
        b.iter(|| {
            for _ in 0..MAILBOX_QUEUE_DEPTH {
                sm.send_mail(CallerSession::os(), e2.eid, Tainted::new(&message)).unwrap();
            }
            for _ in 0..MAILBOX_QUEUE_DEPTH {
                let (len, _) = sm.peek_mail(recipient, 2).unwrap();
                let (bytes, _) = sm.get_mail(recipient, 2).unwrap();
                assert_eq!(len, bytes.len());
            }
        })
    });
    // No wildcard filter left behind: the rejection bench below depends on
    // the OS finding no admitting mailbox.
    sm.accept_mail(recipient, 2, e1.eid.as_u64()).unwrap();

    // Denial-of-service attempt: sends without an accepting mailbox are cheap
    // rejections.
    group.bench_function("unsolicited_send_rejected", |b| {
        b.iter(|| sm.send_mail(CallerSession::os(), e2.eid, b"spam".into()).unwrap_err())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mailbox
}
criterion_main!(benches);
