//! Security-invariant integration tests: the adversarial-OS battery plus the
//! exclusivity and clean-before-reuse invariants of DESIGN.md Section 4.

use sanctorum_bench::boot;
use sanctorum_core::api::SmApi;
use sanctorum_core::error::SmError;
use sanctorum_core::resource::ResourceId;
use sanctorum_core::session::CallerSession;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::perm::MemPerms;
use sanctorum_os::adversary::{self, run_attack_battery};
use sanctorum_os::os::Os;
use sanctorum_os::system::{PlatformKind, System};

#[test]
fn attack_battery_is_fully_blocked_on_both_platforms() {
    for platform in PlatformKind::ALL {
        let system = System::boot_small(platform);
        let mut os = Os::new(&system);
        let victim = os.build_enclave(&EnclaveImage::hello(0xaaaa), 1).unwrap();
        let rogue = os.build_enclave(&EnclaveImage::compute(2, 100), 1).unwrap();
        for (name, outcome) in run_attack_battery(&system, &mut os, &victim, &rogue) {
            assert!(outcome.blocked(), "attack '{name}' succeeded on {platform:?}");
        }
    }
}

#[test]
fn enclave_secrets_never_reach_os_memory_or_registers() {
    let (system, mut os) = boot(PlatformKind::Sanctum);
    let secret = 0x5ec2_e7d4_7a11_u64;
    let built = os.build_enclave(&EnclaveImage::hello(secret), 1).unwrap();
    os.run_thread(&built, built.main_thread(), CoreId::new(0), 10_000)
        .unwrap();

    // 1. No OS-visible register holds the secret after the exit.
    for hart in 0..system.machine.num_harts() {
        let hart = system.machine.hart(CoreId::new(hart as u32));
        assert!(hart.regs.iter().all(|&r| r != secret));
    }
    // 2. The OS cannot read the enclave's physical memory at all.
    let base = adversary::enclave_phys_base(&system, &built);
    assert!(!system.machine.check_access(DomainKind::Untrusted, base, MemPerms::READ));
    // 3. After teardown the memory is zero: the secret is gone before the OS
    //    regains access.
    os.teardown_enclave(&built).unwrap();
    let mut page = vec![0u8; 4096];
    system.machine.phys_read(base.offset(4096 * 4), &mut page).unwrap();
    assert!(page.iter().all(|&b| b == 0));
}

#[test]
fn ownership_is_exclusive_after_random_operation_sequences() {
    // Drive a pseudo-random interleaving of lifecycle operations and check
    // after every step that each region has exactly one owner and protected
    // ranges never overlap.
    let (system, mut os) = boot(PlatformKind::Sanctum);
    let mut live: Vec<_> = Vec::new();
    let mut x = 0x12345678u64;
    for step in 0..40 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        match x % 3 {
            0 => {
                if let Ok(built) = os.build_enclave(&EnclaveImage::hello(step), 1) {
                    live.push(built);
                }
            }
            1 => {
                if !live.is_empty() {
                    let built = live.remove((x as usize / 7) % live.len());
                    os.teardown_enclave(&built).unwrap();
                }
            }
            _ => {
                if let Some(built) = live.last() {
                    let _ = os.run_thread(built, built.main_thread(), CoreId::new(0), 500);
                }
            }
        }
        // Invariant: protected ranges are disjoint (the access-control table
        // rejects overlap, so its length equals the distinct range count) and
        // every live enclave still owns its region.
        for built in &live {
            assert_eq!(
                system.monitor.resource_state(ResourceId::Region(built.regions[0])).unwrap(),
                sanctorum_core::resource::ResourceState::Owned(DomainKind::Enclave(built.eid))
            );
        }
    }
}

#[test]
fn api_rejects_wrong_callers_everywhere() {
    let (system, mut os) = boot(PlatformKind::Keystone);
    let built = os.build_enclave(&EnclaveImage::hello(3), 1).unwrap();
    let enclave_caller = CallerSession::enclave(built.eid);
    let os_caller = CallerSession::os();
    let sm = &system.monitor;

    // Enclaves cannot run OS-only calls.
    assert_eq!(
        sm.create_enclave(enclave_caller, sanctorum_hal::addr::VirtAddr::new(0x1000), 0x1000, &built.regions)
            .unwrap_err(),
        SmError::Unauthorized
    );
    assert_eq!(sm.delete_enclave(enclave_caller, built.eid).unwrap_err(), SmError::Unauthorized);
    assert_eq!(
        sm.enter_enclave(enclave_caller, built.eid, built.main_thread()).unwrap_err(),
        SmError::Unauthorized
    );
    // The OS cannot run enclave-only calls.
    assert_eq!(sm.accept_mail(os_caller, 0, 0).unwrap_err(), SmError::Unauthorized);
    assert_eq!(sm.get_mail(os_caller, 0).unwrap_err(), SmError::Unauthorized);
    assert_eq!(
        sm.get_attestation_key(os_caller).unwrap_err(),
        SmError::Unauthorized
    );
    // Nobody can grant resources to the SM through the API.
    assert!(sm
        .grant_resource(
            os_caller,
            ResourceId::Region(built.regions[0]),
            DomainKind::SecurityMonitor
        )
        .is_err());
}

#[test]
fn concurrent_api_storm_preserves_invariants() {
    use std::sync::Arc;
    // Several OS threads hammer the monitor with lifecycle calls; fine-grained
    // locking may fail individual calls with ConcurrentCall but must never
    // corrupt state or deadlock.
    let system = Arc::new(System::boot_default(PlatformKind::Sanctum));
    let monitor = Arc::clone(&system.monitor);
    let regions: Vec<_> = (1..5).map(sanctorum_hal::isolation::RegionId::new).collect();

    // Make four regions available up front.
    for r in &regions {
        monitor.block_resource(CallerSession::os(), ResourceId::Region(*r)).unwrap();
        monitor.clean_resource(CallerSession::os(), ResourceId::Region(*r)).unwrap();
    }

    let threads: Vec<_> = regions
        .into_iter()
        .map(|region| {
            let monitor = Arc::clone(&monitor);
            std::thread::spawn(move || {
                // ConcurrentCall is the expected "retry" signal of the
                // fine-grained locking discipline.
                fn retry<T>(mut f: impl FnMut() -> Result<T, SmError>) -> T {
                    loop {
                        match f() {
                            Ok(v) => return v,
                            Err(SmError::ConcurrentCall) => std::thread::yield_now(),
                            Err(other) => panic!("unexpected error: {other:?}"),
                        }
                    }
                }
                let mut successes = 0;
                for _ in 0..20 {
                    let eid = retry(|| {
                        monitor.create_enclave(
                            CallerSession::os(),
                            sanctorum_hal::addr::VirtAddr::new(0x10_0000),
                            0x10000,
                            &[region],
                        )
                    });
                    retry(|| monitor.delete_enclave(CallerSession::os(), eid));
                    retry(|| {
                        monitor.clean_resource(CallerSession::os(), ResourceId::Region(region))
                    });
                    successes += 1;
                }
                successes
            })
        })
        .collect();
    let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(total > 0, "at least some transactions must succeed");
    assert!(system.monitor.enclaves().is_empty());
}
