//! Fig. 3 — the enclave lifecycle: create → load page tables/pages/threads →
//! init → delete, swept over the enclave's initial size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_bench::boot;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_os::system::PlatformKind;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_enclave_lifecycle");
    for pages in [4usize, 16, 48] {
        for platform in PlatformKind::ALL {
            let id = format!("{}_{}pages", platform.name(), pages);
            group.bench_with_input(
                BenchmarkId::new("build_and_destroy", id),
                &pages,
                |b, &pages| {
                    let (_system, mut os) = boot(platform);
                    let image = EnclaveImage::compute(pages, 10);
                    b.iter(|| {
                        let built = os.build_enclave(&image, 1).unwrap();
                        os.teardown_enclave(&built).unwrap();
                        built.build_cycles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lifecycle
}
criterion_main!(benches);
