//! Scripted malicious-OS behaviours.
//!
//! Each function mounts one attack from the paper's threat model (Section IV)
//! against a live enclave and reports whether the monitor / isolation
//! primitive stopped it. The security test-suite asserts that every attack is
//! blocked; the functions return structured results rather than panicking so
//! the benchmark harness can also tabulate them.

use crate::os::{BuiltEnclave, Os};
use crate::system::System;
use sanctorum_core::api::SmApi;
use sanctorum_core::error::SmError;
use sanctorum_core::mailbox::SenderIdentity;
use sanctorum_core::session::CallerSession;
use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::guest::{ExitReason, GuestProgram};
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_machine::trap::TrapCause;

/// The outcome of one attack attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack was stopped (by an API error or a hardware fault).
    Blocked,
    /// The attack succeeded — a security failure in the monitor model.
    Succeeded,
}

impl AttackOutcome {
    /// Returns `true` if the attack was stopped.
    pub fn blocked(self) -> bool {
        self == AttackOutcome::Blocked
    }
}

/// Returns the base physical address of an enclave's first region.
pub fn enclave_phys_base(system: &System, enclave: &BuiltEnclave) -> PhysAddr {
    let config = system.machine.config();
    config
        .memory_base
        .offset((enclave.regions[0].index() * config.dram_region_size) as u64)
}

/// Attack 1: the OS directly loads from enclave physical memory using its
/// supervisor privilege (machine-level physical addressing).
pub fn direct_physical_read(system: &System, enclave: &BuiltEnclave, core: CoreId) -> AttackOutcome {
    let target = enclave_phys_base(system, enclave);
    system.machine.install_context(
        core,
        DomainKind::Untrusted,
        PrivilegeLevel::Supervisor,
        None,
        0,
    );
    let program = GuestProgram::load_and_exit(target.as_u64());
    let result = system.machine.run_guest(core, &program, 100);
    match result.exit {
        ExitReason::Trap(TrapCause::IsolationFault { .. }) => AttackOutcome::Blocked,
        ExitReason::Completed => AttackOutcome::Succeeded,
        _ => AttackOutcome::Blocked,
    }
}

/// Attack 2: the OS maps enclave physical memory into its own page tables and
/// reads through the mapping (the classic controlled-channel style mapping
/// attack; the page walk succeeds but the access must still fault).
pub fn malicious_mapping_read(
    system: &System,
    enclave: &BuiltEnclave,
    core: CoreId,
) -> AttackOutcome {
    use sanctorum_machine::pagetable::PageTableBuilder;
    let target = enclave_phys_base(system, enclave);
    // Build an OS page table in the staging area pointing at enclave memory.
    let config = system.machine.config();
    let staging = config
        .memory_base
        .offset(((config.num_regions() - 1) * config.dram_region_size) as u64 + 0x40_000);
    let root = system.machine.with_memory_mut(|mem| {
        // Pre-zero the root and a small pool of table pages in OS memory.
        let mut pool: Vec<PhysAddr> = (1..4).rev().map(|i| staging.offset(i * 4096)).collect();
        mem.zero_page(staging).expect("staging memory is OS-owned");
        for page in &pool {
            mem.zero_page(*page).expect("staging memory is OS-owned");
        }
        let mut builder = PageTableBuilder::new(staging);
        builder
            .map(
                mem,
                sanctorum_hal::addr::VirtAddr::new(0x7000_0000).page_number(),
                target.page_number(),
                MemPerms::RW,
                || pool.pop(),
            )
            .expect("building the malicious mapping itself succeeds");
        builder.root()
    });
    system.machine.install_context(
        core,
        DomainKind::Untrusted,
        PrivilegeLevel::Supervisor,
        Some(root),
        0,
    );
    let program = GuestProgram::load_and_exit(0x7000_0000);
    let result = system.machine.run_guest(core, &program, 100);
    match result.exit {
        ExitReason::Trap(TrapCause::IsolationFault { .. }) => AttackOutcome::Blocked,
        ExitReason::Completed => AttackOutcome::Succeeded,
        _ => AttackOutcome::Blocked,
    }
}

/// Attack 3: an untrusted device DMAs enclave memory out to OS memory.
pub fn dma_exfiltration(system: &System, enclave: &BuiltEnclave) -> AttackOutcome {
    let target = enclave_phys_base(system, enclave);
    let staging = system.machine.config().memory_base.offset(
        ((system.machine.config().num_regions() - 1) * system.machine.config().dram_region_size)
            as u64,
    );
    match system.machine.dma_copy(target, staging, 4096) {
        Err(_) => AttackOutcome::Blocked,
        Ok(_) => AttackOutcome::Succeeded,
    }
}

/// Attack 4: the OS deletes an enclave while one of its threads is running,
/// hoping to reclaim (and read) its memory without cleaning.
pub fn delete_running_enclave(os: &Os, enclave: &BuiltEnclave) -> AttackOutcome {
    match os.monitor().delete_enclave(CallerSession::os(), enclave.eid) {
        Err(SmError::InvalidState { .. }) => AttackOutcome::Blocked,
        Err(_) => AttackOutcome::Blocked,
        Ok(()) => AttackOutcome::Succeeded,
    }
}

/// Attack 5: the OS modifies an enclave after initialization by loading an
/// extra page (which would change its contents without changing its
/// measurement).
pub fn modify_after_init(os: &Os, enclave: &BuiltEnclave) -> AttackOutcome {
    let result = os.monitor().load_page(
        CallerSession::os(),
        enclave.eid,
        sanctorum_hal::addr::VirtAddr::new(0x10_5000),
        os.staging_base(),
        MemPerms::RW,
    );
    match result {
        Err(SmError::InvalidState { .. }) => AttackOutcome::Blocked,
        Err(_) => AttackOutcome::Blocked,
        Ok(_) => AttackOutcome::Succeeded,
    }
}

/// Attack 6: the OS tries to impersonate an enclave over local attestation by
/// mailing the victim directly. The SM tags the message as coming from the
/// untrusted domain, so the recipient cannot be fooled; the attack "succeeds"
/// only if the recipient would see an enclave identity.
pub fn mail_impersonation(os: &Os, victim: &BuiltEnclave) -> AttackOutcome {
    // The attacker cannot mint an authenticated enclave session, so the
    // victim's half of the protocol uses a harness-forged session standing in
    // for the victim itself; the attack is the OS-side send.
    let victim_session = CallerSession::enclave(victim.eid);
    // Victim expects mail from the OS (sender id 0) — e.g. untrusted input.
    if os.monitor().accept_mail(victim_session, 0, 0).is_err() {
        return AttackOutcome::Blocked;
    }
    if os
        .monitor()
        .send_mail(CallerSession::os(), victim.eid, b"i am the signing enclave, honest")
        .is_err()
    {
        return AttackOutcome::Blocked;
    }
    match os.monitor().get_mail(victim_session, 0) {
        Ok((_, SenderIdentity::Untrusted)) => AttackOutcome::Blocked,
        Ok((_, SenderIdentity::Enclave(_))) => AttackOutcome::Succeeded,
        Err(_) => AttackOutcome::Blocked,
    }
}

/// Attack 7: a non-signing enclave asks the SM for the attestation key.
pub fn steal_attestation_key(os: &Os, rogue: &BuiltEnclave) -> AttackOutcome {
    match os
        .monitor()
        .get_attestation_key(CallerSession::enclave(rogue.eid))
    {
        Err(SmError::Unauthorized) | Err(SmError::InvalidState { .. }) => AttackOutcome::Blocked,
        Err(_) => AttackOutcome::Blocked,
        Ok(_) => AttackOutcome::Succeeded,
    }
}

/// Attack 8: the OS grants a region that belongs to a live enclave to itself
/// (resource-state confusion).
pub fn steal_enclave_region(os: &Os, enclave: &BuiltEnclave) -> AttackOutcome {
    use sanctorum_core::resource::ResourceId;
    let result = os.monitor().grant_resource(
        CallerSession::os(),
        ResourceId::Region(enclave.regions[0]),
        DomainKind::Untrusted,
    );
    match result {
        Err(_) => AttackOutcome::Blocked,
        Ok(()) => AttackOutcome::Succeeded,
    }
}

/// Runs the full attack battery against a freshly built victim enclave and
/// returns `(attack name, outcome)` pairs.
pub fn run_attack_battery(
    system: &System,
    os: &mut Os,
    victim: &BuiltEnclave,
    rogue: &BuiltEnclave,
) -> Vec<(&'static str, AttackOutcome)> {
    vec![
        ("direct physical read", direct_physical_read(system, victim, CoreId::new(0))),
        (
            "malicious mapping read",
            malicious_mapping_read(system, victim, CoreId::new(0)),
        ),
        ("dma exfiltration", dma_exfiltration(system, victim)),
        ("modify after init", modify_after_init(os, victim)),
        ("mail impersonation", mail_impersonation(os, victim)),
        ("steal attestation key", steal_attestation_key(os, rogue)),
        ("steal enclave region", steal_enclave_region(os, victim)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PlatformKind;
    use sanctorum_enclave::image::EnclaveImage;

    #[test]
    fn every_attack_is_blocked_on_both_platforms() {
        for platform in PlatformKind::ALL {
            let system = System::boot_small(platform);
            let mut os = Os::new(&system);
            let victim = os.build_enclave(&EnclaveImage::hello(0x5ec2e7), 1).unwrap();
            let rogue = os.build_enclave(&EnclaveImage::compute(1, 10), 1).unwrap();
            for (name, outcome) in run_attack_battery(&system, &mut os, &victim, &rogue) {
                assert!(
                    outcome.blocked(),
                    "attack '{name}' succeeded on {platform:?}"
                );
            }
        }
    }

    #[test]
    fn delete_running_enclave_is_blocked() {
        let system = System::boot_small(PlatformKind::Sanctum);
        let mut os = Os::new(&system);
        let victim = os.build_enclave(&EnclaveImage::spinner(), 1).unwrap();
        // Start the spinner, then preempt it so it remains "assigned" with
        // saved state; delete while it is actually running is exercised by
        // entering and attacking before the run loop exits.
        os.monitor()
            .enter_enclave(
                CallerSession::os_on(CoreId::new(1)),
                victim.eid,
                victim.main_thread(),
            )
            .unwrap();
        assert!(delete_running_enclave(&os, &victim).blocked());
        // Clean up: AEX the thread so other tests are unaffected.
        os.monitor().asynchronous_enclave_exit(CoreId::new(1)).unwrap();
    }
}
