//! The hardware access-control table.
//!
//! Both platform backends ultimately reduce to the same architectural effect:
//! a physical address range is owned by one protection domain and other
//! domains' accesses to it fault. On Sanctum the mechanism is the DRAM-region
//! ownership table consulted during page walks; on Keystone it is the PMP.
//! This module models that *effect* as a table of non-overlapping ranges with
//! an owner, per-owner permissions, an optional "shared with untrusted"
//! window (Keystone's untrusted buffer), and a DMA-block flag. The platform
//! crates are responsible for programming the table in the way their
//! mechanism allows (fixed 32 MB regions vs. arbitrary ranges limited by PMP
//! entry count).

use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::domain::DomainKind;
use sanctorum_hal::perm::MemPerms;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One programmed access-control range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRange {
    /// Base physical address (page aligned).
    pub base: PhysAddr,
    /// Length in bytes (page aligned).
    pub len: u64,
    /// Owning protection domain.
    pub owner: DomainKind,
    /// Permissions granted to the owner.
    pub owner_perms: MemPerms,
    /// Permissions granted to the untrusted domain (e.g. a shared buffer);
    /// `MemPerms::NONE` for fully private ranges.
    pub untrusted_perms: MemPerms,
    /// Whether DMA from untrusted devices is blocked for this range.
    pub dma_blocked: bool,
}

impl AccessRange {
    /// Returns `true` if `addr` falls within the range.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr.as_u64() >= self.base.as_u64() && addr.as_u64() < self.base.as_u64() + self.len
    }

    /// Returns `true` if this range overlaps `other`.
    pub fn overlaps(&self, other: &AccessRange) -> bool {
        self.base.as_u64() < other.base.as_u64() + other.len
            && other.base.as_u64() < self.base.as_u64() + self.len
    }
}

/// The result of an access check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// Access permitted.
    Allowed,
    /// Access denied: the address belongs to another protection domain or the
    /// required permission is missing.
    Denied {
        /// The domain owning the range (if any range matched).
        owner: Option<DomainKind>,
    },
}

impl AccessDecision {
    /// Returns `true` for [`AccessDecision::Allowed`].
    pub fn is_allowed(self) -> bool {
        matches!(self, AccessDecision::Allowed)
    }
}

/// Errors raised when programming the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The new range overlaps an existing one with a different owner.
    Overlap {
        /// Base of the conflicting existing range.
        existing_base: PhysAddr,
    },
    /// Base or length is not page aligned.
    Unaligned,
    /// No range covers the given address.
    NoSuchRange(PhysAddr),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Overlap { existing_base } => {
                write!(f, "range overlaps existing range at {existing_base}")
            }
            AccessError::Unaligned => write!(f, "range is not page aligned"),
            AccessError::NoSuchRange(a) => write!(f, "no access-control range covers {a}"),
        }
    }
}

impl std::error::Error for AccessError {}

/// The machine-wide access-control table.
///
/// Addresses not covered by any programmed range follow the default policy:
/// accessible by the untrusted domain and the SM (the paper's model, where
/// all memory starts out OS-owned and the SM carves out protected ranges).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessControl {
    ranges: Vec<AccessRange>,
    /// Bumped on every table mutation (including handing out a mutable range
    /// reference); lets per-step validators skip unchanged tables.
    generation: u64,
}

impl AccessControl {
    /// Creates an empty table (everything untrusted-accessible).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the currently programmed ranges.
    pub fn ranges(&self) -> &[AccessRange] {
        &self.ranges
    }

    /// Monotone mutation counter: unchanged between two reads ⇒ the table is
    /// identical.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Programs a protected range, replacing any existing range with the same
    /// base and length.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::Unaligned`] for unaligned ranges and
    /// [`AccessError::Overlap`] if the range partially overlaps a different
    /// existing range.
    pub fn protect(&mut self, range: AccessRange) -> Result<(), AccessError> {
        if !range.base.is_page_aligned() || !range.len.is_multiple_of(sanctorum_hal::addr::PAGE_SIZE as u64) {
            return Err(AccessError::Unaligned);
        }
        if let Some(pos) = self
            .ranges
            .iter()
            .position(|r| r.base == range.base && r.len == range.len)
        {
            self.ranges[pos] = range;
            self.generation += 1;
            return Ok(());
        }
        if let Some(existing) = self.ranges.iter().find(|r| r.overlaps(&range)) {
            return Err(AccessError::Overlap {
                existing_base: existing.base,
            });
        }
        self.ranges.push(range);
        self.generation += 1;
        Ok(())
    }

    /// Removes the range starting at `base`, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::NoSuchRange`] if no range starts at `base`.
    pub fn unprotect(&mut self, base: PhysAddr) -> Result<AccessRange, AccessError> {
        let pos = self
            .ranges
            .iter()
            .position(|r| r.base == base)
            .ok_or(AccessError::NoSuchRange(base))?;
        self.generation += 1;
        Ok(self.ranges.swap_remove(pos))
    }

    /// Finds the range covering `addr`.
    pub fn range_of(&self, addr: PhysAddr) -> Option<&AccessRange> {
        self.ranges.iter().find(|r| r.contains(addr))
    }

    /// Finds the range covering `addr` mutably. Conservatively counts as a
    /// mutation (the caller holds a write handle).
    pub fn range_of_mut(&mut self, addr: PhysAddr) -> Option<&mut AccessRange> {
        self.generation += 1;
        self.ranges.iter_mut().find(|r| r.contains(addr))
    }

    /// Checks whether `domain` may access `addr` with permissions `needed`.
    pub fn check(&self, domain: DomainKind, addr: PhysAddr, needed: MemPerms) -> AccessDecision {
        match self.range_of(addr) {
            None => {
                // Unprotected memory: SM and untrusted software may use it;
                // enclaves may only touch it through explicitly shared ranges.
                match domain {
                    DomainKind::SecurityMonitor | DomainKind::Untrusted => AccessDecision::Allowed,
                    DomainKind::Enclave(_) => AccessDecision::Denied { owner: None },
                }
            }
            Some(range) => {
                // The SM retains its elevated view of all physical memory
                // (paper Section IV-B3).
                if domain == DomainKind::SecurityMonitor {
                    return AccessDecision::Allowed;
                }
                let as_owner = domain == range.owner && range.owner_perms.allows(needed);
                let as_untrusted =
                    domain == DomainKind::Untrusted && range.untrusted_perms.allows(needed);
                if as_owner || as_untrusted {
                    AccessDecision::Allowed
                } else {
                    AccessDecision::Denied {
                        owner: Some(range.owner),
                    }
                }
            }
        }
    }

    /// Checks that `domain` may access every byte of `[base, base + len)`
    /// with `needed`. Ranges are page-multiples, so probing each touched
    /// page start (and the final byte) covers the span. Zero-length spans
    /// are trivially allowed.
    ///
    /// This is the single-lock span walk behind the trust-boundary
    /// sanitizer: callers hold the access table's read lock once for the
    /// whole walk instead of re-acquiring it per page.
    pub fn check_span(
        &self,
        domain: DomainKind,
        base: PhysAddr,
        len: u64,
        needed: MemPerms,
    ) -> bool {
        if len == 0 {
            return true;
        }
        let last = base.offset(len - 1);
        let mut probe = base;
        while probe.as_u64() <= last.as_u64() {
            if !self.check(domain, probe, needed).is_allowed() {
                return false;
            }
            probe = probe
                .align_down()
                .offset(sanctorum_hal::addr::PAGE_SIZE as u64);
        }
        self.check(domain, last, needed).is_allowed()
    }

    /// Checks whether a DMA access to `addr` by an untrusted device is
    /// permitted.
    pub fn check_dma(&self, addr: PhysAddr) -> AccessDecision {
        match self.range_of(addr) {
            None => AccessDecision::Allowed,
            Some(range) if range.dma_blocked => AccessDecision::Denied {
                owner: Some(range.owner),
            },
            Some(range) => {
                // DMA counts as an untrusted access.
                if range.untrusted_perms.allows(MemPerms::RW) {
                    AccessDecision::Allowed
                } else {
                    AccessDecision::Denied {
                        owner: Some(range.owner),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::EnclaveId;

    fn enclave(id: u64) -> DomainKind {
        DomainKind::Enclave(EnclaveId::new(id))
    }

    fn range(base: u64, len: u64, owner: DomainKind) -> AccessRange {
        AccessRange {
            base: PhysAddr::new(base),
            len,
            owner,
            owner_perms: MemPerms::RWX,
            untrusted_perms: MemPerms::NONE,
            dma_blocked: true,
        }
    }

    #[test]
    fn default_policy_allows_untrusted_everywhere_but_not_enclaves() {
        let table = AccessControl::new();
        assert!(table
            .check(DomainKind::Untrusted, PhysAddr::new(0x1000), MemPerms::RW)
            .is_allowed());
        assert!(!table
            .check(enclave(1), PhysAddr::new(0x1000), MemPerms::READ)
            .is_allowed());
        assert!(table
            .check(DomainKind::SecurityMonitor, PhysAddr::new(0x1000), MemPerms::RW)
            .is_allowed());
    }

    #[test]
    fn protected_range_excludes_other_domains() {
        let mut table = AccessControl::new();
        table.protect(range(0x10_0000, 0x2000, enclave(1))).unwrap();
        assert!(table
            .check(enclave(1), PhysAddr::new(0x10_1000), MemPerms::RW)
            .is_allowed());
        assert!(!table
            .check(DomainKind::Untrusted, PhysAddr::new(0x10_1000), MemPerms::READ)
            .is_allowed());
        assert!(!table
            .check(enclave(2), PhysAddr::new(0x10_1000), MemPerms::READ)
            .is_allowed());
        // SM retains access.
        assert!(table
            .check(DomainKind::SecurityMonitor, PhysAddr::new(0x10_1000), MemPerms::RW)
            .is_allowed());
    }

    #[test]
    fn shared_buffer_readable_by_untrusted() {
        let mut table = AccessControl::new();
        let mut r = range(0x20_0000, 0x1000, enclave(3));
        r.untrusted_perms = MemPerms::RW;
        table.protect(r).unwrap();
        assert!(table
            .check(DomainKind::Untrusted, PhysAddr::new(0x20_0800), MemPerms::RW)
            .is_allowed());
        assert!(!table
            .check(DomainKind::Untrusted, PhysAddr::new(0x20_0800), MemPerms::EXEC)
            .is_allowed());
    }

    #[test]
    fn overlap_rejected() {
        let mut table = AccessControl::new();
        table.protect(range(0x10_0000, 0x2000, enclave(1))).unwrap();
        let err = table.protect(range(0x10_1000, 0x2000, enclave(2))).unwrap_err();
        assert!(matches!(err, AccessError::Overlap { .. }));
    }

    #[test]
    fn reprotect_same_range_updates_owner() {
        let mut table = AccessControl::new();
        table.protect(range(0x10_0000, 0x2000, enclave(1))).unwrap();
        table.protect(range(0x10_0000, 0x2000, enclave(2))).unwrap();
        assert!(table
            .check(enclave(2), PhysAddr::new(0x10_0000), MemPerms::READ)
            .is_allowed());
        assert!(!table
            .check(enclave(1), PhysAddr::new(0x10_0000), MemPerms::READ)
            .is_allowed());
        assert_eq!(table.ranges().len(), 1);
    }

    #[test]
    fn unaligned_rejected() {
        let mut table = AccessControl::new();
        let r = AccessRange {
            base: PhysAddr::new(0x10_0001),
            len: 0x1000,
            owner: enclave(1),
            owner_perms: MemPerms::RW,
            untrusted_perms: MemPerms::NONE,
            dma_blocked: true,
        };
        assert_eq!(table.protect(r), Err(AccessError::Unaligned));
    }

    #[test]
    fn unprotect_restores_default_policy() {
        let mut table = AccessControl::new();
        table.protect(range(0x10_0000, 0x1000, enclave(1))).unwrap();
        table.unprotect(PhysAddr::new(0x10_0000)).unwrap();
        assert!(table
            .check(DomainKind::Untrusted, PhysAddr::new(0x10_0000), MemPerms::RW)
            .is_allowed());
        assert!(matches!(
            table.unprotect(PhysAddr::new(0x10_0000)),
            Err(AccessError::NoSuchRange(_))
        ));
    }

    #[test]
    fn dma_blocking() {
        let mut table = AccessControl::new();
        table.protect(range(0x30_0000, 0x1000, enclave(1))).unwrap();
        assert!(!table.check_dma(PhysAddr::new(0x30_0000)).is_allowed());
        assert!(table.check_dma(PhysAddr::new(0x40_0000)).is_allowed());
        let mut shared = range(0x50_0000, 0x1000, enclave(1));
        shared.dma_blocked = false;
        shared.untrusted_perms = MemPerms::RW;
        table.protect(shared).unwrap();
        assert!(table.check_dma(PhysAddr::new(0x50_0000)).is_allowed());
    }

    #[test]
    fn missing_permission_denied_even_for_owner() {
        let mut table = AccessControl::new();
        let mut r = range(0x60_0000, 0x1000, enclave(1));
        r.owner_perms = MemPerms::READ;
        table.protect(r).unwrap();
        assert!(table
            .check(enclave(1), PhysAddr::new(0x60_0000), MemPerms::READ)
            .is_allowed());
        assert!(!table
            .check(enclave(1), PhysAddr::new(0x60_0000), MemPerms::WRITE)
            .is_allowed());
    }
}
