//! Fig. 7 — remote attestation: the full ten-step protocol including key
//! agreement, signing-enclave signature and verifier-side validation, plus
//! its building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use sanctorum_bench::boot_attestation_setup;
use sanctorum_enclave::client::AttestationClient;
use sanctorum_enclave::signing::SigningEnclave;
use sanctorum_os::system::PlatformKind;
use sanctorum_verifier::{ManufacturerCa, RemoteVerifier};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_remote_attestation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_remote_attestation");
    let ca = ManufacturerCa::new([0x11; 32]);
    let (system, _os, client_enclave, signing_enclave) =
        boot_attestation_setup(PlatformKind::Sanctum);
    let device_cert = ca.certify_device(system.machine.root_of_trust());
    let sm = system.monitor.as_ref();
    let signing = SigningEnclave::new(signing_enclave.eid);
    let client = AttestationClient::new(client_enclave.eid, [0x33; 32]);

    group.bench_function("full_protocol", |b| {
        b.iter(|| {
            let verifier = RemoteVerifier::new(
                ca.root_public_key(),
                vec![client_enclave.measurement],
                [0x42; 32],
            );
            let challenge = verifier.begin();
            let response = client
                .obtain_attestation(sm, &signing, challenge.nonce, device_cert.clone())
                .unwrap();
            verifier
                .verify(&response.evidence, &response.enclave_dh_public)
                .unwrap()
        })
    });

    group.bench_function("evidence_generation_only", |b| {
        let verifier = RemoteVerifier::new(
            ca.root_public_key(),
            vec![client_enclave.measurement],
            [0x42; 32],
        );
        b.iter(|| {
            let challenge = verifier.begin();
            client
                .obtain_attestation(sm, &signing, challenge.nonce, device_cert.clone())
                .unwrap()
        })
    });

    group.bench_function("verifier_side_only", |b| {
        let verifier = RemoteVerifier::new(
            ca.root_public_key(),
            vec![client_enclave.measurement],
            [0x42; 32],
        );
        let challenge = verifier.begin();
        let response = client
            .obtain_attestation(sm, &signing, challenge.nonce, device_cert.clone())
            .unwrap();
        b.iter(|| {
            // Re-arm the verifier with the same nonce so the evidence stays
            // valid for measurement purposes.
            let v = RemoteVerifier::new(
                ca.root_public_key(),
                vec![client_enclave.measurement],
                [0x42; 32],
            );
            let _ = v.begin();
            v.verify(&response.evidence, &response.enclave_dh_public)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_remote_attestation
}
criterion_main!(benches);
