//! Deterministic stand-in for the subset of `proptest` the workspace uses.
//!
//! The `proptest!` macro here expands each property into a plain `#[test]`
//! that evaluates the body over a fixed number of pseudo-random cases drawn
//! from a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream seeded
//! from the test's name. A failing case's inputs are reported through the
//! panic message via the `prop_assert*` macros. Coverage is deterministic
//! across runs, which suits a CI environment without network access to fetch
//! the real crate.
//!
//! On top of the macro API, the shim provides an explicitly seeded
//! [`Runner`]: it draws cases from a caller-chosen seed (so a failure is
//! replayable from the `(seed, case)` pair alone) and minimizes failing
//! inputs through [`Strategy::shrink`]. Sequence strategies
//! ([`collection::vec`]) shrink structurally — prefix truncation first, then
//! single-element removal — which is the shape op-trace tests want.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom};

/// Number of cases each property is evaluated over.
pub const NUM_CASES: u32 = 64;

/// Deterministic pseudo-random generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a well-spread, stable seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h)
    }

    /// Seeds the generator from an explicit seed value (the [`Runner`]'s
    /// replayable byte source).
    pub const fn with_seed(seed: u64) -> Self {
        Self(seed)
    }

    /// Returns the next value in the SplitMix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns the next 128-bit value.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Fills `buf` from the stream (the byte-source view of the generator).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

/// A source of test-case values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
    /// Proposes strictly "smaller" variants of a failing value, most
    /// aggressive first. The default proposes nothing (scalar strategies
    /// rarely benefit); sequence strategies override this.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Types with a default "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<A>);

/// Returns the default strategy for `A` (subset of `proptest::prelude::any`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty => $draw:ident),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.$draw() as $ty
                }
            }

            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end - self.start;
                    self.start + (rng.$draw() as $ty) % span
                }
            }

            impl Strategy for RangeFrom<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = <$ty>::MAX - self.start;
                    if span == <$ty>::MAX {
                        rng.$draw() as $ty
                    } else {
                        self.start + (rng.$draw() as $ty) % (span + 1)
                    }
                }
            }
        )*
    };
}

arbitrary_uint! {
    u8 => next_u64,
    u16 => next_u64,
    u32 => next_u64,
    u64 => next_u64,
    usize => next_u64,
    u128 => next_u128,
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        out
    }
}

/// Sequence strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Returns a strategy producing vectors of `element`-generated values
    /// whose length lies in `len` (subset of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        /// Structural sequence shrinking: halving prefixes down to the
        /// minimum length first (the cheapest big reductions), then every
        /// single-element removal (to drop irrelevant interior ops).
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut candidates = Vec::new();
            let min = self.len.start;
            let mut keep = value.len() / 2;
            while keep >= min && keep < value.len() {
                candidates.push(value[..keep].to_vec());
                if keep == min {
                    break;
                }
                keep = min + (keep - min) / 2;
            }
            if value.len() > min {
                for skip in 0..value.len() {
                    let mut shorter = Vec::with_capacity(value.len() - 1);
                    shorter.extend_from_slice(&value[..skip]);
                    shorter.extend_from_slice(&value[skip + 1..]);
                    candidates.push(shorter);
                }
            }
            candidates
        }
    }
}

/// A minimized failing case reported by [`Runner::run`].
#[derive(Debug, Clone)]
pub struct CaseFailure<T> {
    /// The seed the runner was constructed with.
    pub seed: u64,
    /// Zero-based index of the failing case within the run.
    pub case: u32,
    /// The (shrunken) failing input.
    pub value: T,
    /// The message the test function failed with on the shrunken input.
    pub message: String,
    /// How many successful shrink steps were applied.
    pub shrink_steps: u32,
}

impl<T: std::fmt::Debug> std::fmt::Display for CaseFailure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "case {} of seed {:#x} failed after {} shrink steps: {}\ninput: {:?}",
            self.case, self.seed, self.shrink_steps, self.message, self.value
        )
    }
}

/// An explicitly seeded property runner with shrinking (the shim's analogue
/// of `proptest::test_runner::TestRunner`).
///
/// Unlike the [`proptest!`] macro — which seeds from the test name — a
/// `Runner` is seeded by the caller, so a failure is reproducible from the
/// reported `(seed, case)` pair alone, and failing inputs are minimized
/// through [`Strategy::shrink`] before being reported.
#[derive(Debug, Clone)]
pub struct Runner {
    seed: u64,
    cases: u32,
    max_shrink_iters: u32,
}

impl Runner {
    /// Creates a runner drawing every case from `seed`.
    pub const fn new(seed: u64) -> Self {
        Self {
            seed,
            cases: NUM_CASES,
            max_shrink_iters: 1024,
        }
    }

    /// Overrides the number of cases to run.
    #[must_use]
    pub const fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Runs `test` over generated cases; on the first failure, shrinks the
    /// input as far as `test` keeps failing and reports the minimized case.
    ///
    /// # Errors
    ///
    /// Returns the minimized [`CaseFailure`] if any case fails.
    pub fn run<S: Strategy>(
        &self,
        strategy: &S,
        mut test: impl FnMut(&S::Value) -> Result<(), String>,
    ) -> Result<(), CaseFailure<S::Value>> {
        let mut rng = TestRng::with_seed(self.seed);
        for case in 0..self.cases {
            let value = strategy.generate(&mut rng);
            if let Err(message) = test(&value) {
                let (value, message, shrink_steps) =
                    self.shrink_failure(strategy, value, message, &mut test);
                return Err(CaseFailure {
                    seed: self.seed,
                    case,
                    value,
                    message,
                    shrink_steps,
                });
            }
        }
        Ok(())
    }

    fn shrink_failure<S: Strategy>(
        &self,
        strategy: &S,
        mut value: S::Value,
        mut message: String,
        test: &mut impl FnMut(&S::Value) -> Result<(), String>,
    ) -> (S::Value, String, u32) {
        let mut steps = 0u32;
        let mut budget = self.max_shrink_iters;
        // Greedy descent: take the first candidate that still fails, restart
        // from it, stop when no candidate fails or the budget runs out.
        'outer: while budget > 0 {
            for candidate in strategy.shrink(&value) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if let Err(new_message) = test(&candidate) {
                    value = candidate;
                    message = new_message;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (value, message, steps)
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{collection, Arbitrary, CaseFailure, Runner, Strategy, TestRng};
}

/// Declares property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-case condition (panics with the case inputs inlined by
/// the standard formatting machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: u64 = {
            let mut rng = TestRng::deterministic("x");
            rng.next_u64()
        };
        let b: u64 = {
            let mut rng = TestRng::deterministic("x");
            rng.next_u64()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_seed_replays_exactly() {
        let mut a = TestRng::with_seed(42);
        let mut b = TestRng::with_seed(42);
        let mut bytes_a = [0u8; 13];
        let mut bytes_b = [0u8; 13];
        a.fill_bytes(&mut bytes_a);
        b.fill_bytes(&mut bytes_b);
        assert_eq!(bytes_a, bytes_b);
        assert_ne!(bytes_a, [0u8; 13]);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strategy = collection::vec(0u64..100, 3..17);
        let mut rng = TestRng::with_seed(1);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((3..17).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 100));
        }
    }

    #[test]
    fn runner_reports_and_minimizes_failures() {
        // Fail whenever the sequence contains a value >= 90; the minimized
        // counterexample must be a single-element offender.
        let strategy = collection::vec(0u64..100, 1..32);
        let failure = Runner::new(0xfeed)
            .cases(256)
            .run(&strategy, |v| {
                if v.iter().any(|x| *x >= 90) {
                    Err("contains a large element".into())
                } else {
                    Ok(())
                }
            })
            .expect_err("large elements appear in 256 cases");
        assert_eq!(failure.seed, 0xfeed);
        assert_eq!(failure.value.len(), 1, "shrunk to one element: {failure}");
        assert!(failure.value[0] >= 90);
        assert!(failure.shrink_steps > 0);

        // A property that holds reports no failure.
        Runner::new(0xfeed)
            .run(&strategy, |v| {
                if v.len() < 32 {
                    Ok(())
                } else {
                    Err("impossible".into())
                }
            })
            .expect("property holds");
    }

    #[test]
    fn runner_failures_replay_from_seed() {
        let strategy = collection::vec(0u64..100, 1..32);
        let test = |v: &Vec<u64>| {
            if v.iter().sum::<u64>() > 500 {
                Err("sum too large".into())
            } else {
                Ok(())
            }
        };
        let a = Runner::new(7).cases(128).run(&strategy, test).expect_err("fails");
        let b = Runner::new(7).cases(128).run(&strategy, test).expect_err("fails");
        assert_eq!(a.case, b.case);
        assert_eq!(a.value, b.value);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 10u64..20, w in 5u128..9, b in any::<[u8; 32]>()) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((5..9).contains(&w));
            prop_assert_eq!(b.len(), 32);
        }

        #[test]
        fn range_from_respects_lower_bound(v in 1u64..) {
            prop_assert!(v >= 1);
        }
    }
}
