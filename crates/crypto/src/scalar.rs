//! Arithmetic modulo the Ed25519 group order
//! `l = 2^252 + 27742317777372353535851937790883648493`.

use crate::bignum::U512;

/// Little-endian byte encoding of the group order `l`.
pub const L_BYTES: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, //
    0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14, //
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

/// A scalar reduced modulo the group order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scalar {
    bytes: [u8; 32],
}

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar { bytes: [0u8; 32] };

    fn order() -> U512 {
        U512::from_le_bytes(&L_BYTES)
    }

    /// Reduces an arbitrary-length little-endian byte string (up to 64 bytes)
    /// modulo `l`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 64`.
    pub fn from_bytes_mod_order(bytes: &[u8]) -> Self {
        let value = U512::from_le_bytes(bytes);
        let reduced = value.reduce_mod(&Self::order());
        Scalar {
            bytes: reduced.to_le_bytes_32(),
        }
    }

    /// Interprets exactly 32 bytes as a scalar **without** checking that the
    /// value is canonical (used for the clamped secret scalar, which may
    /// exceed `l`). All arithmetic still reduces results.
    pub fn from_unreduced_bytes(bytes: &[u8; 32]) -> Self {
        Self::from_bytes_mod_order(bytes)
    }

    /// Returns `Some(scalar)` if `bytes` is a canonical (fully reduced)
    /// encoding, `None` otherwise. Used when verifying signatures to reject
    /// malleable `s` values.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let value = U512::from_le_bytes(bytes);
        if value.cmp_value(&Self::order()) == core::cmp::Ordering::Less {
            Some(Scalar { bytes: *bytes })
        } else {
            None
        }
    }

    /// Returns the canonical 32-byte little-endian encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.bytes
    }

    /// Scalar addition modulo `l`.
    #[must_use]
    pub fn add(&self, other: &Scalar) -> Scalar {
        let a = U512::from_le_bytes(&self.bytes);
        let b = U512::from_le_bytes(&other.bytes);
        let sum = a.wrapping_add(&b).reduce_mod(&Self::order());
        Scalar {
            bytes: sum.to_le_bytes_32(),
        }
    }

    /// Scalar multiplication modulo `l`.
    #[must_use]
    pub fn mul(&self, other: &Scalar) -> Scalar {
        let a = U512::from_le_bytes(&self.bytes);
        let b = U512::from_le_bytes(&other.bytes);
        let product = U512::mul_256(&a, &b).reduce_mod(&Self::order());
        Scalar {
            bytes: product.to_le_bytes_32(),
        }
    }

    /// Computes `self * a + b mod l` (the signing equation `s = r + k·a`).
    #[must_use]
    pub fn mul_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        self.mul(a).add(b)
    }

    /// Returns `true` if the scalar is zero.
    pub fn is_zero(&self) -> bool {
        self.bytes == [0u8; 32]
    }

    /// Returns bit `i` of the scalar encoding.
    pub fn bit(&self, i: usize) -> u8 {
        (self.bytes[i / 8] >> (i % 8)) & 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_from_u64(v: u64) -> Scalar {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&v.to_le_bytes());
        Scalar::from_bytes_mod_order(&bytes)
    }

    #[test]
    fn small_arithmetic() {
        let a = scalar_from_u64(5);
        let b = scalar_from_u64(7);
        assert_eq!(a.add(&b), scalar_from_u64(12));
        assert_eq!(a.mul(&b), scalar_from_u64(35));
        assert_eq!(a.mul_add(&b, &scalar_from_u64(1)), scalar_from_u64(36));
    }

    #[test]
    fn order_reduces_to_zero() {
        let l = Scalar::from_bytes_mod_order(&L_BYTES);
        assert!(l.is_zero());
    }

    #[test]
    fn order_minus_one_plus_one_is_zero() {
        let mut l_minus_1 = L_BYTES;
        l_minus_1[0] -= 1;
        let a = Scalar::from_bytes_mod_order(&l_minus_1);
        assert!(a.add(&scalar_from_u64(1)).is_zero());
    }

    #[test]
    fn canonical_check() {
        assert!(Scalar::from_canonical_bytes(&[0u8; 32]).is_some());
        assert!(Scalar::from_canonical_bytes(&L_BYTES).is_none());
        let mut just_below = L_BYTES;
        just_below[0] -= 1;
        assert!(Scalar::from_canonical_bytes(&just_below).is_some());
    }

    #[test]
    fn wide_reduction_of_64_bytes() {
        let wide = [0xffu8; 64];
        let s = Scalar::from_bytes_mod_order(&wide);
        // The result must itself be canonical.
        assert!(Scalar::from_canonical_bytes(&s.to_bytes()).is_some());
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let a = scalar_from_u64(0xdead_beef);
        let b = scalar_from_u64(0xfeed_f00d);
        let c = scalar_from_u64(0x1234_5678);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn bit_extraction() {
        let a = scalar_from_u64(0b1010);
        assert_eq!(a.bit(0), 0);
        assert_eq!(a.bit(1), 1);
        assert_eq!(a.bit(3), 1);
        assert_eq!(a.bit(200), 0);
    }
}
