//! X25519 Diffie-Hellman key agreement (RFC 7748).
//!
//! Used for step ① of the paper's remote-attestation protocol (Fig. 7): the
//! remote verifier and the enclave derive a shared secret over the untrusted
//! network before attestation authenticates the enclave's half.

use crate::ct::ct_swap_u64;
use crate::ed25519::EdwardsPoint;
use crate::field::FieldElement;
use crate::scalar::Scalar;

/// Length of X25519 public values and shared secrets in bytes.
pub const X25519_LEN: usize = 32;

/// Clamps a 32-byte scalar per RFC 7748.
pub fn clamp_scalar(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// The X25519 function: multiplies the point with u-coordinate `u` by the
/// clamped `scalar` and returns the resulting u-coordinate.
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp_scalar(*scalar);
    let mut u_bytes = *u;
    u_bytes[31] &= 0x7f;
    let x1 = FieldElement::from_bytes(&u_bytes);

    let mut x2 = FieldElement::ONE;
    let mut z2 = FieldElement::ZERO;
    let mut x3 = x1;
    let mut z3 = FieldElement::ONE;
    const A24: u32 = 121665;

    let mut swap = 0u8;
    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        conditional_swap(swap, &mut x2, &mut x3);
        conditional_swap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2 + z2;
        let aa = a.square();
        let b = x2 - z2;
        let bb = b.square();
        let e = aa - bb;
        let c = x3 + z3;
        let d = x3 - z3;
        let da = d * a;
        let cb = c * b;
        x3 = (da + cb).square();
        z3 = x1 * (da - cb).square();
        x2 = aa * bb;
        z2 = e * (aa + e.mul_small(A24));
    }
    conditional_swap(swap, &mut x2, &mut x3);
    conditional_swap(swap, &mut z2, &mut z3);

    (x2 * z2.invert()).to_bytes()
}

fn conditional_swap(choice: u8, a: &mut FieldElement, b: &mut FieldElement) {
    // FieldElement exposes a limb-level swap helper; the types guarantee the
    // limb counts match.
    FieldElement::conditional_swap(choice, a, b);
    let _ = ct_swap_u64; // keep the import obviously intentional
}

/// The base point u = 9.
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Derives the public value for `secret` (i.e. `X25519(secret, 9)`).
///
/// Fixed-base multiplications skip the Montgomery ladder entirely: the
/// Ed25519 base point `B` maps birationally to `u = 9`, so `[s]·9` is the
/// Montgomery image of `[s]B` — computed with the precomputed Edwards comb
/// (≤64 point additions, no doublings) instead of 255 ladder steps. The
/// clamped scalar reduces mod `l` without changing the result because the
/// base point has order `l`.
pub fn public_key(secret: &[u8; 32]) -> [u8; 32] {
    let clamped = clamp_scalar(*secret);
    let s = Scalar::from_bytes_mod_order(&clamped);
    EdwardsPoint::basepoint_mul(&s).montgomery_u()
}

/// Computes the shared secret between `our_secret` and `their_public`.
///
/// # Examples
///
/// ```
/// use sanctorum_crypto::x25519::{public_key, shared_secret};
/// let alice_secret = [1u8; 32];
/// let bob_secret = [2u8; 32];
/// let alice_public = public_key(&alice_secret);
/// let bob_public = public_key(&bob_secret);
/// assert_eq!(
///     shared_secret(&alice_secret, &bob_public),
///     shared_secret(&bob_secret, &alice_public),
/// );
/// ```
pub fn shared_secret(our_secret: &[u8; 32], their_public: &[u8; 32]) -> [u8; 32] {
    x25519(our_secret, their_public)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha3::to_hex;

    fn from_hex(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    #[test]
    fn rfc7748_test_vector_1() {
        let scalar =
            from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &u);
        assert_eq!(
            to_hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_alice_bob_key_agreement() {
        let alice_secret =
            from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_secret =
            from_hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_public = public_key(&alice_secret);
        let bob_public = public_key(&bob_secret);
        assert_eq!(
            to_hex(&alice_public),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            to_hex(&bob_public),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = shared_secret(&alice_secret, &bob_public);
        let shared_b = shared_secret(&bob_secret, &alice_public);
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            to_hex(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn key_agreement_with_random_style_keys() {
        let a = clamp_scalar([0x11; 32]);
        let b = clamp_scalar([0x22; 32]);
        let pa = public_key(&a);
        let pb = public_key(&b);
        assert_eq!(shared_secret(&a, &pb), shared_secret(&b, &pa));
        assert_ne!(pa, pb);
    }

    #[test]
    fn clamping_is_idempotent() {
        let s = [0xffu8; 32];
        assert_eq!(clamp_scalar(clamp_scalar(s)), clamp_scalar(s));
        let c = clamp_scalar(s);
        assert_eq!(c[0] & 7, 0);
        assert_eq!(c[31] & 0x80, 0);
        assert_eq!(c[31] & 0x40, 0x40);
    }

    #[test]
    fn edwards_route_matches_the_montgomery_ladder() {
        // `public_key` takes the comb + birational-map shortcut; it must
        // agree bit-for-bit with the general ladder on the base point.
        let mut drbg = crate::drbg::ChaChaDrbg::from_seed([0xB9u8; 32]);
        for _ in 0..24 {
            let secret: [u8; 32] = drbg.random_array();
            assert_eq!(public_key(&secret), x25519(&secret, &BASEPOINT));
        }
    }

    #[test]
    fn different_secrets_give_different_shared_keys() {
        let base = clamp_scalar([0x33; 32]);
        let peer = public_key(&clamp_scalar([0x44; 32]));
        let other = clamp_scalar([0x55; 32]);
        assert_ne!(shared_secret(&base, &peer), shared_secret(&other, &peer));
    }
}
