//! Enclave images, guest programs and enclave-side protocol logic.
//!
//! An [`image::EnclaveImage`] describes everything the untrusted OS needs to
//! build an enclave through the SM API: the enclave virtual range, the
//! initial contents of its private pages, and its threads (each with a guest
//! program to run). The [`signing`] module implements the trusted signing
//! enclave of paper Section VI-C, and [`client`] the enclave-side half of the
//! remote-attestation protocol of Fig. 7.
//!
//! ## Enclave code substitution
//!
//! On real hardware the signing enclave and the attestation client are RISC-V
//! binaries executing inside their enclaves. The simulated machine executes
//! abstract guest programs that exercise every *architectural* interaction
//! (memory isolation, entry/exit, AEX, mailbox ecalls), but it cannot run a
//! full Ed25519 implementation as guest ops. The cryptographic steps of those
//! two enclaves therefore run host-side in this crate, invoked at the points
//! where the corresponding guest program would perform them, and interact
//! with the monitor through exactly the same API calls (with the enclave's
//! own caller identity). DESIGN.md records this substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod image;
pub mod signing;

pub use image::{EnclaveImage, ThreadSpec};
