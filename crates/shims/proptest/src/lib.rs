//! Deterministic stand-in for the subset of `proptest` the workspace uses.
//!
//! The `proptest!` macro here expands each property into a plain `#[test]`
//! that evaluates the body over a fixed number of pseudo-random cases drawn
//! from a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream seeded
//! from the test's name. There is no shrinking and no persistence file: a
//! failing case's inputs are reported through the panic message via the
//! `prop_assert*` macros. Coverage is deterministic across runs, which suits
//! a CI environment without network access to fetch the real crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom};

/// Number of cases each property is evaluated over.
pub const NUM_CASES: u32 = 64;

/// Deterministic pseudo-random generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a well-spread, stable seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h)
    }

    /// Returns the next value in the SplitMix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns the next 128-bit value.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// A source of test-case values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a default "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<A>);

/// Returns the default strategy for `A` (subset of `proptest::prelude::any`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty => $draw:ident),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.$draw() as $ty
                }
            }

            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end - self.start;
                    self.start + (rng.$draw() as $ty) % span
                }
            }

            impl Strategy for RangeFrom<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = <$ty>::MAX - self.start;
                    if span == <$ty>::MAX {
                        rng.$draw() as $ty
                    } else {
                        self.start + (rng.$draw() as $ty) % (span + 1)
                    }
                }
            }
        )*
    };
}

arbitrary_uint! {
    u8 => next_u64,
    u16 => next_u64,
    u32 => next_u64,
    u64 => next_u64,
    usize => next_u64,
    u128 => next_u128,
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        out
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Strategy, TestRng};
}

/// Declares property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-case condition (panics with the case inputs inlined by
/// the standard formatting machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: u64 = {
            let mut rng = TestRng::deterministic("x");
            rng.next_u64()
        };
        let b: u64 = {
            let mut rng = TestRng::deterministic("x");
            rng.next_u64()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 10u64..20, w in 5u128..9, b in any::<[u8; 32]>()) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((5..9).contains(&w));
            prop_assert_eq!(b.len(), 32);
        }

        #[test]
        fn range_from_respects_lower_bound(v in 1u64..) {
            prop_assert!(v >= 1);
        }
    }
}
