//! Hardware abstraction layer for the Sanctorum security monitor.
//!
//! The security monitor in [`sanctorum-core`] is written entirely against the
//! traits and base types defined here, mirroring the paper's claim that the
//! same monitor logic can run on different hardware platforms (the MIT Sanctum
//! processor and Keystone-class PMP machines) as long as the platform provides
//! a minimal set of isolation mechanisms (paper Section IV-B).
//!
//! The crate has three parts:
//!
//! * **Base types** — strongly typed addresses, page numbers, core identifiers
//!   and cycle counts ([`addr`], [`cycles`]).
//! * **Platform requirement traits** — [`isolation::IsolationBackend`],
//!   [`entropy::EntropySource`] and [`root::RootOfTrust`], one per requirement
//!   class of paper Section IV-B (memory isolation, isolated computation,
//!   exclusive elevated privilege, cryptography for attestation).
//! * **Access-control vocabulary** — [`perm::MemPerms`] and
//!   [`domain::DomainKind`], shared by the machine simulator, the monitor and
//!   the platform backends.
//!
//! # Examples
//!
//! ```
//! use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
//!
//! let base = PhysAddr::new(0x8000_0000);
//! assert_eq!(base.page_number().index(), 0x8000_0000 / PAGE_SIZE as u64);
//! assert!(base.is_page_aligned());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cycles;
pub mod domain;
pub mod entropy;
pub mod fnv;
pub mod isolation;
pub mod perm;
pub mod root;

pub use addr::{PhysAddr, PhysPageNum, VirtAddr, VirtPageNum, PAGE_SIZE};
pub use cycles::Cycles;
pub use domain::{CoreId, DomainKind, EnclaveId};
pub use entropy::EntropySource;
pub use isolation::{FlushKind, IsolationBackend, IsolationError, RegionId};
pub use perm::MemPerms;
pub use root::{DeviceSecret, RootOfTrust};
