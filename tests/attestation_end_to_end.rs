//! Local (Fig. 6) and remote (Fig. 7) attestation, end to end, across both
//! platform backends.

use sanctorum_bench::boot_attestation_setup;
use sanctorum_core::api::SmApi;
use sanctorum_core::mailbox::SenderIdentity;
use sanctorum_core::session::CallerSession;
use sanctorum_enclave::client::AttestationClient;
use sanctorum_enclave::signing::SigningEnclave;
use sanctorum_os::system::PlatformKind;
use sanctorum_verifier::{ManufacturerCa, RemoteVerifier, SecureSession, VerifyError};

#[test]
fn local_attestation_via_mailboxes() {
    // Fig. 6: E2 attests E1 using only mutual trust in the SM.
    let (system, _os, e1, e2) = boot_attestation_setup(PlatformKind::Sanctum);
    let sm = system.monitor.as_ref();
    let e1_session = CallerSession::enclave(e1.eid);
    let e2_session = CallerSession::enclave(e2.eid);

    // ① E2 signals intent to receive from E1; ② E1 sends a message.
    sm.accept_mail(e2_session, 0, e1.eid.as_u64()).unwrap();
    sm.send_mail(e1_session, e2.eid, b"hello from E1".into()).unwrap();
    // ③ E2 fetches it; ④ the SM-recorded sender measurement matches E1's.
    let (message, sender) = sm.get_mail(e2_session, 0).unwrap();
    assert_eq!(message, b"hello from E1");
    assert_eq!(
        sender,
        SenderIdentity::Enclave { id: e1.eid, measurement: e1.measurement }
    );

    // A message from the OS is clearly labelled untrusted.
    sm.accept_mail(e2_session, 0, 0).unwrap();
    sm.send_mail(CallerSession::os(), e2.eid, b"os input".into()).unwrap();
    let (_, sender) = sm.get_mail(e2_session, 0).unwrap();
    assert_eq!(sender, SenderIdentity::Untrusted);
}

#[test]
fn remote_attestation_succeeds_on_both_platforms() {
    for platform in PlatformKind::ALL {
        let ca = ManufacturerCa::new([0x11; 32]);
        let (system, _os, client_enclave, signing_enclave) = boot_attestation_setup(platform);
        let device_cert = ca.certify_device(system.machine.root_of_trust());

        let verifier = RemoteVerifier::new(
            ca.root_public_key(),
            vec![client_enclave.measurement],
            [0x42; 32],
        );
        let challenge = verifier.begin();

        let sm = system.monitor.as_ref();
        let signing = SigningEnclave::new(signing_enclave.eid);
        let client = AttestationClient::new(client_enclave.eid, [0x33; 32]);
        let response = client
            .obtain_attestation(sm, &signing, challenge.nonce, device_cert)
            .unwrap();

        let mut session = verifier
            .verify(&response.evidence, &response.enclave_dh_public)
            .unwrap_or_else(|e| panic!("verification failed on {platform:?}: {e}"));

        // The attested channel works in both directions.
        let shared = client.shared_secret(&challenge.verifier_dh_public);
        let mut enclave_session = SecureSession::new(&shared, &challenge.nonce);
        let sealed = session.seal(b"ping");
        assert_eq!(enclave_session.open(&sealed).unwrap(), b"ping");
    }
}

#[test]
fn verifier_rejects_untrusted_enclaves_and_wrong_devices() {
    let ca = ManufacturerCa::new([0x11; 32]);
    let rogue_ca = ManufacturerCa::new([0x99; 32]);
    let (system, _os, client_enclave, signing_enclave) =
        boot_attestation_setup(PlatformKind::Keystone);
    let device_cert = ca.certify_device(system.machine.root_of_trust());

    let sm = system.monitor.as_ref();
    let signing = SigningEnclave::new(signing_enclave.eid);
    let client = AttestationClient::new(client_enclave.eid, [0x33; 32]);

    // Case 1: the verifier does not trust this enclave's measurement.
    let verifier = RemoteVerifier::new(ca.root_public_key(), vec![], [0x42; 32]);
    let challenge = verifier.begin();
    let response = client
        .obtain_attestation(sm, &signing, challenge.nonce, device_cert.clone())
        .unwrap();
    assert_eq!(
        verifier
            .verify(&response.evidence, &response.enclave_dh_public)
            .unwrap_err(),
        VerifyError::UnexpectedMeasurement
    );

    // Case 2: the device certificate chains to a CA the verifier does not pin.
    let verifier = RemoteVerifier::new(
        ca.root_public_key(),
        vec![client_enclave.measurement],
        [0x42; 32],
    );
    let challenge = verifier.begin();
    let bogus_device_cert = rogue_ca.certify_device(system.machine.root_of_trust());
    let response = client
        .obtain_attestation(sm, &signing, challenge.nonce, bogus_device_cert)
        .unwrap();
    assert_eq!(
        verifier
            .verify(&response.evidence, &response.enclave_dh_public)
            .unwrap_err(),
        VerifyError::UntrustedRoot
    );
}

#[test]
fn non_signing_enclave_cannot_obtain_the_attestation_key() {
    let (system, _os, client_enclave, _signing_enclave) =
        boot_attestation_setup(PlatformKind::Sanctum);
    let sm = system.monitor.as_ref();
    assert!(sm
        .get_attestation_key(CallerSession::enclave(client_enclave.eid))
        .is_err());
}
