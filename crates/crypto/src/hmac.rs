//! HMAC over SHA3-256 (RFC 2104 construction, SHA-3 block size = sponge rate).

use crate::sha3::Sha3_256;

/// HMAC-SHA3-256 output length in bytes.
pub const TAG_LEN: usize = 32;

/// Computes `HMAC-SHA3-256(key, message)`.
///
/// # Examples
///
/// ```
/// use sanctorum_crypto::hmac::hmac_sha3_256;
/// let tag = hmac_sha3_256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// assert_ne!(tag, hmac_sha3_256(b"other key", b"message"));
/// ```
pub fn hmac_sha3_256(key: &[u8], message: &[u8]) -> [u8; TAG_LEN] {
    const BLOCK: usize = Sha3_256::RATE;

    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = Sha3_256::digest(key);
        key_block[..digest.len()].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha3_256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha3_256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verifies an HMAC-SHA3-256 tag in constant time.
pub fn hmac_verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    crate::ct::ct_eq(&hmac_sha3_256(key, message), tag)
}

/// An incremental HMAC-SHA3-256 computation.
#[derive(Debug, Clone)]
pub struct HmacSha3_256 {
    inner: Sha3_256,
    outer_key: [u8; Sha3_256::RATE],
}

impl HmacSha3_256 {
    /// Creates an incremental MAC keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        const BLOCK: usize = Sha3_256::RATE;
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            let digest = Sha3_256::digest(key);
            key_block[..digest.len()].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha3_256::new();
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);
        let mut outer_key = [0u8; BLOCK];
        for (o, k) in outer_key.iter_mut().zip(key_block.iter()) {
            *o = k ^ 0x5c;
        }
        Self { inner, outer_key }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes and returns the tag.
    pub fn finalize(self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha3_256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_one_shot() {
        let key = b"0123456789abcdef";
        let msg = b"the message to authenticate, somewhat longer than a block? not quite";
        let mut m = HmacSha3_256::new(key);
        m.update(&msg[..10]);
        m.update(&msg[10..]);
        assert_eq!(m.finalize(), hmac_sha3_256(key, msg));
    }

    #[test]
    fn long_key_is_hashed() {
        let long_key = vec![0xabu8; 500];
        let tag = hmac_sha3_256(&long_key, b"m");
        // Equivalent to using the hash of the key directly.
        let short = Sha3_256::digest(&long_key);
        assert_eq!(tag, hmac_sha3_256(&short, b"m"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha3_256(b"k", b"m");
        assert!(hmac_verify(b"k", b"m", &tag));
        assert!(!hmac_verify(b"k", b"m2", &tag));
        assert!(!hmac_verify(b"k2", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!hmac_verify(b"k", b"m", &bad));
    }

    #[test]
    fn tag_depends_on_key_and_message() {
        assert_ne!(hmac_sha3_256(b"a", b"m"), hmac_sha3_256(b"b", b"m"));
        assert_ne!(hmac_sha3_256(b"a", b"m"), hmac_sha3_256(b"a", b"n"));
    }

    #[test]
    fn empty_key_and_message_are_valid_inputs() {
        let tag = hmac_sha3_256(b"", b"");
        assert_eq!(tag.len(), TAG_LEN);
    }
}
