//! Crash-point sweep statistics — the fault-site coverage and sweep
//! throughput numbers EXPERIMENTS.md records, optionally emitted as
//! `BENCH_faultsweep.json` and gated against a committed baseline.
//!
//! The run is the acceptance sweep (`explorer::crash::sweep_all` over the
//! depth-6 lifecycle trace set on both platforms): every fault-point
//! crossing of every trace step gets one crash re-run through the full
//! invariant kernel plus `recover()`, and every distinct site crossed
//! gets one persistent-fault run through the quarantine path. The gates:
//! any violation exits 1 (with the replayable counterexample on stdout),
//! as does a compiled-in fault site the trace set never crosses — untested
//! crash surface is a coverage failure, not a statistic. A
//! machine-normalized sweeps/sec regression beyond 2× against the
//! baseline exits 2.
//!
//! Usage:
//!
//! ```text
//! faultsweep_stats [--out PATH] [--baseline PATH]
//! ```
//!
//! Run with: `cargo run --release -p sanctorum-bench --bin faultsweep_stats`

use sanctorum_bench::{calibrate, extract_number};
use sanctorum_explorer::crash::{crash_machine_config, lifecycle_traces, sweep_all};
use sanctorum_machine::fault::ALL_SITES;

/// Throughput regression tolerance for the `--baseline` gate (matches the
/// other bench gates: CI machines are noisy, a 2× cliff is a regression).
const MAX_REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let calibration = calibrate();
    let traces = lifecycle_traces();
    let start = std::time::Instant::now();
    let report = sweep_all(&crash_machine_config(), None, &traces);
    let wall = start.elapsed();
    let sweeps = report.crash_sweeps + report.fault_runs;
    let sweeps_per_second = sweeps as f64 / wall.as_secs_f64().max(1e-9);

    let uncovered: Vec<&&str> = ALL_SITES
        .iter()
        .filter(|site| !report.site_inventory.contains_key(*site))
        .collect();
    let undeclared: Vec<&&str> = report
        .site_inventory
        .keys()
        .filter(|site| !ALL_SITES.contains(site))
        .collect();

    println!("# crash-point sweep (lifecycle trace set, both platforms)");
    println!("traces swept:     {}", report.traces);
    println!("fault sites:      {} of {} declared", report.site_inventory.len(), ALL_SITES.len());
    println!("crossings:        {}", report.crossings);
    println!("crash re-runs:    {}", report.crash_sweeps);
    println!("fault runs:       {}", report.fault_runs);
    println!("violations:       {}", report.violations.len());
    println!("wall clock:       {wall:.2?}");
    println!("sweeps/sec:       {sweeps_per_second:.1}");
    println!("calibration:      {calibration:.0} hashes/sec");
    println!("\n# per-site crossings");
    for (site, count) in &report.site_inventory {
        println!("{site:<28} {count}");
    }

    for counterexample in &report.violations {
        println!("\nVIOLATION: {counterexample}");
    }
    if !uncovered.is_empty() {
        println!("\nUNCOVERED SITES (declared but never crossed): {uncovered:?}");
    }
    if !undeclared.is_empty() {
        println!("\nUNDECLARED SITES (crossed but not in the inventory): {undeclared:?}");
    }

    if let Some(path) = &out {
        let json = render_json(&report, wall.as_secs_f64(), sweeps_per_second, calibration);
        std::fs::write(path, json).expect("write result JSON");
        println!("\nwrote {path}");
    }

    if !report.clean() || !uncovered.is_empty() || !undeclared.is_empty() {
        eprintln!("FAIL: the sweep must cover every declared site and find no violations");
        std::process::exit(1);
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).expect("read baseline JSON");
        let reference = extract_number(&text, "sweeps_per_second")
            .expect("baseline JSON has a sweeps_per_second field");
        let reference_calibration =
            extract_number(&text, "calibration_hashes_per_second").unwrap_or(calibration);
        let normalized_current = sweeps_per_second / calibration;
        let normalized_reference = reference / reference_calibration;
        println!(
            "baseline {path}: {reference:.0} sweeps/sec at {reference_calibration:.0} hashes/sec \
             (normalized gate: {normalized_current:.2e} vs floor {:.2e})",
            normalized_reference / MAX_REGRESSION_FACTOR
        );
        if normalized_current * MAX_REGRESSION_FACTOR < normalized_reference {
            eprintln!(
                "FAIL: throughput regressed more than {MAX_REGRESSION_FACTOR}x \
                 (machine-normalized {normalized_current:.2e} vs baseline {normalized_reference:.2e})"
            );
            std::process::exit(2);
        }
    }
}

fn render_json(
    report: &sanctorum_explorer::crash::CrashSweepReport,
    wall_clock_seconds: f64,
    sweeps_per_second: f64,
    calibration: f64,
) -> String {
    let sites = report
        .site_inventory
        .iter()
        .map(|(site, count)| format!("    \"{site}\": {count}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        r#"{{
  "bench": "crash_point_sweep",
  "config": {{
    "traces": {traces},
    "platforms": 2,
    "declared_sites": {declared}
  }},
  "fault_points_covered": {covered},
  "crossings": {crossings},
  "crash_sweeps": {crash_sweeps},
  "fault_runs": {fault_runs},
  "site_inventory": {{
{sites}
  }},
  "wall_clock_seconds": {wall_clock_seconds:.3},
  "sweeps_per_second": {sweeps_per_second:.1},
  "calibration_hashes_per_second": {calibration:.1},
  "violations": {violations}
}}
"#,
        traces = report.traces / 2,
        declared = ALL_SITES.len(),
        covered = report.site_inventory.len(),
        crossings = report.crossings,
        crash_sweeps = report.crash_sweeps,
        fault_runs = report.fault_runs,
        violations = report.violations.len(),
    )
}
