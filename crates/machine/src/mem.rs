//! Simulated physical memory.

use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use std::fmt;

pub(crate) use sanctorum_hal::fnv::fnv1a;

/// Errors raised by physical-memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The access touches addresses outside the populated DRAM range.
    OutOfRange {
        /// Address that failed.
        addr: PhysAddr,
        /// Length of the failed access.
        len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "physical access out of range: {addr} (+{len} bytes)")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable simulated DRAM starting at a configurable base address.
///
/// # Examples
///
/// ```
/// use sanctorum_machine::mem::PhysMemory;
/// use sanctorum_hal::addr::PhysAddr;
///
/// let mut mem = PhysMemory::new(PhysAddr::new(0x8000_0000), 64 * 1024);
/// mem.write_u64(PhysAddr::new(0x8000_0100), 0xdead_beef)?;
/// assert_eq!(mem.read_u64(PhysAddr::new(0x8000_0100))?, 0xdead_beef);
/// # Ok::<(), sanctorum_machine::mem::MemError>(())
/// ```
#[derive(Clone)]
pub struct PhysMemory {
    base: PhysAddr,
    bytes: Vec<u8>,
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PhysMemory {{ base: {}, size: {:#x} }}",
            self.base,
            self.bytes.len()
        )
    }
}

impl PhysMemory {
    /// Creates zero-initialized memory of `size` bytes starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not page aligned.
    pub fn new(base: PhysAddr, size: usize) -> Self {
        assert_eq!(size % PAGE_SIZE, 0, "memory size must be page aligned");
        Self {
            base,
            bytes: vec![0u8; size],
        }
    }

    /// Returns the base address of DRAM.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Returns the size of DRAM in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Folds `seed` through an FNV-1a pass over all of DRAM. Used by
    /// [`crate::Machine::state_digest`] to fingerprint machine state for
    /// replay-determinism checks.
    pub fn digest(&self, seed: u64) -> u64 {
        fnv1a(seed, &self.bytes)
    }

    /// Returns `true` if the whole `[addr, addr+len)` range is populated.
    pub fn contains(&self, addr: PhysAddr, len: usize) -> bool {
        let Some(offset) = addr.checked_sub(self.base) else {
            return false;
        };
        (offset as usize)
            .checked_add(len)
            .is_some_and(|end| end <= self.bytes.len())
    }

    fn offset_of(&self, addr: PhysAddr, len: usize) -> Result<usize, MemError> {
        if self.contains(addr, len) {
            Ok((addr.as_u64() - self.base.as_u64()) as usize)
        } else {
            Err(MemError::OutOfRange { addr, len })
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let offset = self.offset_of(addr, buf.len())?;
        buf.copy_from_slice(&self.bytes[offset..offset + buf.len()]);
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn write_bytes(&mut self, addr: PhysAddr, data: &[u8]) -> Result<(), MemError> {
        let offset = self.offset_of(addr, data.len())?;
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Zeroes the 4 KiB page containing `addr` (used when cleaning memory
    /// before re-allocation to another protection domain).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the page is not populated.
    pub fn zero_page(&mut self, addr: PhysAddr) -> Result<(), MemError> {
        let page_base = addr.align_down();
        let offset = self.offset_of(page_base, PAGE_SIZE)?;
        self.bytes[offset..offset + PAGE_SIZE].fill(0);
        Ok(())
    }

    /// Zeroes an arbitrary page-aligned range.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn zero_range(&mut self, addr: PhysAddr, len: usize) -> Result<(), MemError> {
        let offset = self.offset_of(addr, len)?;
        self.bytes[offset..offset + len].fill(0);
        Ok(())
    }

    /// Reads one page (4 KiB) into a freshly allocated buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the page is not populated.
    pub fn read_page(&self, addr: PhysAddr) -> Result<Vec<u8>, MemError> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.read_bytes(addr.align_down(), &mut buf)?;
        Ok(buf)
    }

    /// Returns the highest populated physical address plus one.
    pub fn end(&self) -> PhysAddr {
        PhysAddr::new(self.base.as_u64() + self.bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMemory {
        PhysMemory::new(PhysAddr::new(0x8000_0000), 16 * PAGE_SIZE)
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        m.write_bytes(PhysAddr::new(0x8000_0010), b"sanctorum").unwrap();
        let mut buf = [0u8; 9];
        m.read_bytes(PhysAddr::new(0x8000_0010), &mut buf).unwrap();
        assert_eq!(&buf, b"sanctorum");
    }

    #[test]
    fn u64_round_trip() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x8000_1000), u64::MAX - 3).unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(0x8000_1000)).unwrap(), u64::MAX - 3);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut m = mem();
        assert!(m.read_u64(PhysAddr::new(0x7fff_ffff)).is_err());
        assert!(m.write_u64(m.end(), 1).is_err());
        // An access straddling the end is rejected too.
        let last = PhysAddr::new(m.end().as_u64() - 4);
        assert!(m.read_u64(last).is_err());
    }

    #[test]
    fn zero_page_clears_only_that_page() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x8000_1008), 0x1111).unwrap();
        m.write_u64(PhysAddr::new(0x8000_2008), 0x2222).unwrap();
        m.zero_page(PhysAddr::new(0x8000_1123)).unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(0x8000_1008)).unwrap(), 0);
        assert_eq!(m.read_u64(PhysAddr::new(0x8000_2008)).unwrap(), 0x2222);
    }

    #[test]
    fn contains_checks_full_range() {
        let m = mem();
        assert!(m.contains(PhysAddr::new(0x8000_0000), 16 * PAGE_SIZE));
        assert!(!m.contains(PhysAddr::new(0x8000_0000), 16 * PAGE_SIZE + 1));
        assert!(!m.contains(PhysAddr::new(0x7fff_f000), PAGE_SIZE));
    }

    #[test]
    fn read_page_returns_full_page() {
        let mut m = mem();
        m.write_bytes(PhysAddr::new(0x8000_3000), &[7u8; 16]).unwrap();
        let page = m.read_page(PhysAddr::new(0x8000_3abc)).unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        assert_eq!(&page[..16], &[7u8; 16]);
        assert_eq!(page[16], 0);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_size_panics() {
        let _ = PhysMemory::new(PhysAddr::new(0), 100);
    }
}
