//! The trusted first party of the paper's remote-attestation protocol
//! (Fig. 7): a manufacturer PKI, a remote verifier, and the secure session
//! established over the attested key agreement.
//!
//! * [`pki::ManufacturerCa`] plays the processor manufacturer: it knows each
//!   device's provisioning secret (it fused it), re-derives the device public
//!   key, and issues the device certificate that roots the chain.
//! * [`remote::RemoteVerifier`] issues nonces, performs the verifier half of
//!   the X25519 key agreement, validates attestation evidence (certificate
//!   chain, report signature, nonce freshness, channel binding, expected
//!   measurement) and produces a [`session::SecureSession`].
//! * [`session::SecureSession`] protects application traffic with the agreed
//!   key (Fig. 7 step ⑩), enforcing strict message ordering.
//!
//! The whole tier is shared-state concurrent: `RemoteVerifier` and
//! `SessionPool` take `&self` everywhere and are safe to drive from many
//! threads at once — challenges and sessions live in index-interleaved
//! shards under ranked locks, while the read-mostly trust state (manufacturer
//! roots, revocation list, chain cache) flips atomically between epochs via
//! `sanctorum_core::epoch::EpochCell`, so verification never blocks on a
//! certificate rotation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pki;
pub mod remote;
pub mod session;

pub use pki::ManufacturerCa;
pub use remote::{Challenge, RemoteVerifier, VerifierStats, VerifyError};
pub use session::{InsertOutcome, SecureSession, SessionPool};
