//! Ablation A4 — single-pass span proofs versus per-page lock
//! re-acquisition on the OS-boundary hot path.
//!
//! Before the trust-boundary refactor, every span-shaped argument (batch
//! tables, mail buffers) was validated by a loop that called the machine's
//! `check_access` once per page — and each call acquired the shared
//! access-control `RwLock` afresh. The sanitizer's `check_span` mints one
//! `Checked` proof by walking the same pages under a *single* read
//! acquisition, and the proof then rides through the call so no sink has to
//! re-validate. This bench keeps the old shape alive (as a plain loop over
//! `check_access`) and races it against proof minting at several span sizes,
//! plus the batch-table case the win was built for: one 64-entry table proof
//! versus 64 per-entry window proofs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_bench::boot;
use sanctorum_hal::addr::PAGE_SIZE;
use sanctorum_hal::domain::DomainKind;
use sanctorum_hal::perm::MemPerms;
use sanctorum_os::system::PlatformKind;
use sanctorum_trust::{RwAccess, SpanPolicy, Tainted};
use std::time::Duration;

/// Batch geometry mirrored from the dispatcher: 8 argument words plus a
/// status word, 64 bytes per entry, 64 entries max.
const ENTRY_BYTES: u64 = 64;
const MAX_ENTRIES: u64 = 64;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_span_validation(c: &mut Criterion) {
    let (system, os) = boot(PlatformKind::Sanctum);
    let machine = &system.machine;
    let base = os.staging_base();

    let mut group = c.benchmark_group("ablation_span_validation");
    for pages in [1u64, 4, 16] {
        let len = pages * PAGE_SIZE as u64;

        // The retired shape: one lock acquisition per page.
        group.bench_with_input(
            BenchmarkId::new("per_page_lock", pages),
            &pages,
            |b, _| {
                b.iter(|| {
                    let mut ok = true;
                    let mut probe = base;
                    let last = base.offset(len - 1);
                    while probe <= last {
                        ok &= machine.check_access(
                            DomainKind::Untrusted,
                            probe,
                            MemPerms::RW,
                        );
                        probe = probe.offset(PAGE_SIZE as u64);
                    }
                    assert!(ok);
                })
            },
        );

        // The shipped shape: one proof, one lock acquisition, walked once.
        group.bench_with_input(
            BenchmarkId::new("single_pass_proof", pages),
            &pages,
            |b, _| {
                b.iter(|| {
                    machine
                        .sanitizer()
                        .check_span::<RwAccess>(
                            DomainKind::Untrusted,
                            Tainted::new(base).spanning(len),
                            SpanPolicy::PLAIN,
                        )
                        .unwrap()
                })
            },
        );
    }

    // The batch-table case: a full 64-entry table proved once, versus the
    // fallback the dispatcher drops to only after an isolation-mutating
    // entry invalidates the whole-table token (one 64-byte window per
    // entry). The gap is what hoisting validation out of the entry loop
    // buys on the common, non-mutating path.
    group.bench_function("table_64_entries/whole_table_proof", |b| {
        b.iter(|| {
            machine
                .sanitizer()
                .check_span::<RwAccess>(
                    DomainKind::Untrusted,
                    Tainted::new(base).spanning(MAX_ENTRIES * ENTRY_BYTES),
                    SpanPolicy::table(8),
                )
                .unwrap()
        })
    });
    group.bench_function("table_64_entries/per_entry_windows", |b| {
        b.iter(|| {
            for idx in 0..MAX_ENTRIES {
                machine
                    .sanitizer()
                    .check_span::<RwAccess>(
                        DomainKind::Untrusted,
                        Tainted::new(base)
                            .offset(idx * ENTRY_BYTES)
                            .spanning(ENTRY_BYTES),
                        SpanPolicy::PLAIN,
                    )
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_span_validation
}
criterion_main!(benches);
