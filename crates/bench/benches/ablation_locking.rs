//! Ablation A1 — fine-grained locking with transaction failures
//! (paper Section V-A) versus a single global monitor lock: single-caller
//! latency and multi-threaded OS call throughput.
//!
//! Ablation A2 — incremental (generation-cached) audit snapshots versus a
//! from-scratch rebuild per snapshot, over a populated monitor: the speedup
//! that lets the explorer's invariant kernel run after every step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot_with_locking;
use sanctorum_core::error::SmError;
use sanctorum_core::monitor::LockingMode;
use sanctorum_core::resource::ResourceId;
use sanctorum_hal::addr::VirtAddr;
use sanctorum_hal::isolation::RegionId;
use sanctorum_os::system::PlatformKind;
use std::sync::Arc;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200))
}

fn mode_name(mode: LockingMode) -> &'static str {
    match mode {
        LockingMode::FineGrained => "fine_grained",
        LockingMode::Global => "global_lock",
    }
}

fn bench_locking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_locking");
    for mode in [LockingMode::FineGrained, LockingMode::Global] {
        // Uncontended single-caller latency of a metadata-only API call.
        group.bench_with_input(
            BenchmarkId::new("uncontended_call", mode_name(mode)),
            &mode,
            |b, &mode| {
                let (system, _os) = boot_with_locking(PlatformKind::Sanctum, mode);
                b.iter(|| system.monitor.resource_state(ResourceId::Region(RegionId::new(1))))
            },
        );

        // Contended throughput: four OS threads performing create/delete
        // cycles on disjoint regions. Fine-grained locking lets them proceed
        // in parallel (with occasional retries); the global lock serializes
        // everything.
        group.bench_with_input(
            BenchmarkId::new("contended_4_threads", mode_name(mode)),
            &mode,
            |b, &mode| {
                b.iter_custom(|iters| {
                    let (system, _os) = boot_with_locking(PlatformKind::Sanctum, mode);
                    let monitor = Arc::clone(&system.monitor);
                    // Make regions 1..5 available.
                    for r in 1..5u32 {
                        monitor
                            .block_resource(CallerSession::os(), ResourceId::Region(RegionId::new(r)))
                            .unwrap();
                        monitor
                            .clean_resource(CallerSession::os(), ResourceId::Region(RegionId::new(r)))
                            .unwrap();
                    }
                    let start = std::time::Instant::now();
                    let handles: Vec<_> = (1..5u32)
                        .map(|r| {
                            let monitor = Arc::clone(&monitor);
                            std::thread::spawn(move || {
                                let region = RegionId::new(r);
                                // Retry helper: fine-grained locking reports
                                // conflicts as ConcurrentCall, which callers
                                // are expected to retry.
                                fn retry<T>(mut f: impl FnMut() -> Result<T, SmError>) -> T {
                                    loop {
                                        match f() {
                                            Ok(v) => return v,
                                            Err(SmError::ConcurrentCall) => continue,
                                            Err(other) => panic!("unexpected error: {other:?}"),
                                        }
                                    }
                                }
                                for _ in 0..iters {
                                    let eid = retry(|| {
                                        monitor.create_enclave(
                                            CallerSession::os(),
                                            VirtAddr::new(0x10_0000),
                                            0x10000,
                                            &[region],
                                        )
                                    });
                                    retry(|| monitor.delete_enclave(CallerSession::os(), eid));
                                    retry(|| {
                                        monitor.clean_resource(
                                            CallerSession::os(),
                                            ResourceId::Region(region),
                                        )
                                    });
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                    start.elapsed()
                })
            },
        );
    }
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    use sanctorum_bench::boot;
    use sanctorum_enclave::image::EnclaveImage;
    use sanctorum_hal::domain::CoreId;

    // A populated monitor: several live enclaves, one of them running a
    // thread, so snapshots carry real window/thread payloads.
    let (system, mut os) = boot(PlatformKind::Sanctum);
    for param in 0..3u64 {
        os.build_enclave(&EnclaveImage::hello(param), 1)
            .expect("bench enclave builds");
    }
    let spinner = os.build_enclave(&EnclaveImage::spinner(), 1).expect("spinner builds");
    os.run_thread(&spinner, spinner.main_thread(), CoreId::new(0), 16)
        .expect("spinner preempts");

    let mut group = c.benchmark_group("ablation_audit");
    // Steady state of the explorer loop: audit after a step that changed
    // nothing — the incremental path is pure cache reuse.
    group.bench_function("incremental_unchanged", |b| {
        let _ = system.monitor.audit(); // warm the cache
        b.iter(|| system.monitor.audit())
    });
    // Audit under ongoing mutation traffic: each iteration churns the
    // thread table (two API calls) and snapshots; the incremental path pays
    // the generation compare plus only the component that moved, still
    // reusing every cached enclave record and window list.
    group.bench_function("incremental_after_mutation", |b| {
        let session = CallerSession::os();
        b.iter(|| {
            let tid = system.monitor.create_thread(session, 0x4000).expect("create");
            system.monitor.delete_thread(session, tid).expect("delete");
            system.monitor.audit()
        })
    });
    // The ablated baseline: every snapshot rebuilt from scratch (the PR 2
    // behaviour), cloning every window list and thread table.
    group.bench_function("full_rebuild", |b| b.iter(|| system.monitor.audit_full()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_locking, bench_audit
}
criterion_main!(benches);
