//! Minimal fixed-width big-integer arithmetic.
//!
//! [`U512`] supports exactly what the Ed25519 scalar field needs: conversion
//! from little-endian byte strings, comparison, addition, schoolbook
//! multiplication of 256-bit halves, and reduction modulo an arbitrary
//! 256-bit modulus via binary long division. Performance is irrelevant here —
//! signing happens a handful of times per attestation — so clarity wins.

use core::cmp::Ordering;

/// A 512-bit unsigned integer stored as eight little-endian `u64` limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U512 {
    limbs: [u64; 8],
}

impl U512 {
    /// The value zero.
    pub const ZERO: U512 = U512 { limbs: [0; 8] };

    /// Constructs a value from little-endian bytes (at most 64).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 64`.
    pub fn from_le_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 64, "at most 64 bytes fit in a U512");
        let mut limbs = [0u64; 8];
        for (i, byte) in bytes.iter().enumerate() {
            limbs[i / 8] |= (*byte as u64) << ((i % 8) * 8);
        }
        Self { limbs }
    }

    /// Returns the low 32 little-endian bytes.
    pub fn to_le_bytes_32(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = ((self.limbs[i / 8] >> ((i % 8) * 8)) & 0xff) as u8;
        }
        out
    }

    /// Returns the index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<u32> {
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if *limb != 0 {
                return Some(i as u32 * 64 + 63 - limb.leading_zeros());
            }
        }
        None
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= 8 {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Compares two values.
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        for i in (0..8).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Wrapping addition (overflow beyond 512 bits is discarded; callers
    /// guarantee it cannot occur for the scalar-arithmetic use cases).
    #[must_use]
    pub fn wrapping_add(&self, other: &Self) -> Self {
        let mut out = [0u64; 8];
        let mut carry = 0u64;
        for i in 0..8 {
            let (sum1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (sum2, c2) = sum1.overflowing_add(carry);
            out[i] = sum2;
            carry = (c1 as u64) + (c2 as u64);
        }
        Self { limbs: out }
    }

    /// Wrapping subtraction (callers guarantee `self >= other`).
    #[must_use]
    pub fn wrapping_sub(&self, other: &Self) -> Self {
        let mut out = [0u64; 8];
        let mut borrow = 0u64;
        for i in 0..8 {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        Self { limbs: out }
    }

    /// Logical left shift by one bit.
    #[must_use]
    pub fn shl1(&self) -> Self {
        let mut out = [0u64; 8];
        let mut carry = 0u64;
        for i in 0..8 {
            out[i] = (self.limbs[i] << 1) | carry;
            carry = self.limbs[i] >> 63;
        }
        Self { limbs: out }
    }

    /// Full 256×256→512-bit product of the low halves of `a` and `b`.
    pub fn mul_256(a: &Self, b: &Self) -> Self {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let cur = out[i + j] as u128
                    + (a.limbs[i] as u128) * (b.limbs[j] as u128)
                    + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        Self { limbs: out }
    }

    /// Reduces `self` modulo `modulus` (binary long division).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    #[must_use]
    pub fn reduce_mod(&self, modulus: &Self) -> Self {
        assert_ne!(modulus, &U512::ZERO, "modulus must be non-zero");
        if self.cmp_value(modulus) == Ordering::Less {
            return *self;
        }
        let self_bits = self.highest_bit().unwrap_or(0);
        let mod_bits = modulus.highest_bit().expect("non-zero modulus");
        let mut remainder = *self;
        let mut shift = self_bits - mod_bits;
        // Build modulus << shift by repeated shl1 (at most 511 iterations).
        let mut shifted = *modulus;
        for _ in 0..shift {
            shifted = shifted.shl1();
        }
        loop {
            if remainder.cmp_value(&shifted) != Ordering::Less {
                remainder = remainder.wrapping_sub(&shifted);
            }
            if shift == 0 {
                break;
            }
            shift -= 1;
            shifted = shr1(&shifted);
        }
        remainder
    }
}

fn shr1(v: &U512) -> U512 {
    let mut out = [0u64; 8];
    let mut carry = 0u64;
    for i in (0..8).rev() {
        out[i] = (v.limbs[i] >> 1) | (carry << 63);
        carry = v.limbs[i] & 1;
    }
    U512 { limbs: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn from_u128(v: u128) -> U512 {
        U512::from_le_bytes(&v.to_le_bytes())
    }

    #[test]
    fn round_trip_bytes() {
        let bytes: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let v = U512::from_le_bytes(&bytes);
        assert_eq!(v.to_le_bytes_32()[..], bytes[..32]);
    }

    #[test]
    fn add_sub_inverse() {
        let a = from_u128(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let b = from_u128(0x0fed_cba9_8765_4321);
        assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn mul_small_values() {
        let a = from_u128(1_000_000_007);
        let b = from_u128(998_244_353);
        let p = U512::mul_256(&a, &b);
        assert_eq!(p, from_u128(1_000_000_007u128 * 998_244_353u128));
    }

    #[test]
    fn reduce_small_values() {
        let a = from_u128(1_000_000);
        let m = from_u128(997);
        let r = a.reduce_mod(&m);
        assert_eq!(r, from_u128(1_000_000 % 997));
    }

    #[test]
    fn reduce_identity_when_smaller() {
        let a = from_u128(5);
        let m = from_u128(997);
        assert_eq!(a.reduce_mod(&m), a);
    }

    #[test]
    fn highest_bit_and_bit() {
        let v = from_u128(0b1010);
        assert_eq!(v.highest_bit(), Some(3));
        assert!(v.bit(1));
        assert!(!v.bit(0));
        assert_eq!(U512::ZERO.highest_bit(), None);
    }

    #[test]
    fn shl1_doubles() {
        let v = from_u128(12345);
        assert_eq!(v.shl1(), from_u128(24690));
    }

    proptest! {
        #[test]
        fn mod_matches_u128_arithmetic(a in 0u128..u128::MAX / 2, m in 1u128..u128::MAX / 4) {
            let r = from_u128(a).reduce_mod(&from_u128(m));
            prop_assert_eq!(r, from_u128(a % m));
        }

        #[test]
        fn mul_matches_u128_for_u64_inputs(a in any::<u64>(), b in any::<u64>()) {
            let p = U512::mul_256(&from_u128(a as u128), &from_u128(b as u128));
            prop_assert_eq!(p, from_u128(a as u128 * b as u128));
        }

        #[test]
        fn add_then_mod_matches_u128(a in 0u128..u128::MAX/2, b in 0u128..u128::MAX/2, m in 1u128..u128::MAX/4) {
            let sum = from_u128(a).wrapping_add(&from_u128(b));
            prop_assert_eq!(sum.reduce_mod(&from_u128(m)), from_u128((a + b) % m));
        }
    }
}
