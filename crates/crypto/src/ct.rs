//! Constant-time comparison helpers.
//!
//! Measurement and MAC comparisons inside the monitor must not leak which
//! byte differed through timing (the paper's threat model includes software
//! side-channel adversaries observing shared resources).

/// Compares two byte slices in constant time with respect to their contents.
///
/// Returns `false` immediately (and without inspecting contents) if the
/// lengths differ — length is considered public.
///
/// # Examples
///
/// ```
/// use sanctorum_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time conditional select: returns `a` if `choice` is 1, `b` if 0.
///
/// # Panics
///
/// Panics if `choice` is not 0 or 1.
pub fn ct_select_u64(choice: u8, a: u64, b: u64) -> u64 {
    assert!(choice <= 1, "choice must be 0 or 1");
    let mask = (choice as u64).wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Conditionally swaps two `u64` slices in place when `choice` is 1.
///
/// # Panics
///
/// Panics if `choice` is not 0 or 1 or the slices differ in length.
pub fn ct_swap_u64(choice: u8, a: &mut [u64], b: &mut [u64]) {
    assert!(choice <= 1, "choice must be 0 or 1");
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    let mask = (choice as u64).wrapping_neg();
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let t = mask & (*x ^ *y);
        *x ^= t;
        *y ^= t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u64(1, 10, 20), 10);
        assert_eq!(ct_select_u64(0, 10, 20), 20);
    }

    #[test]
    fn swap() {
        let mut a = [1u64, 2, 3];
        let mut b = [4u64, 5, 6];
        ct_swap_u64(0, &mut a, &mut b);
        assert_eq!(a, [1, 2, 3]);
        ct_swap_u64(1, &mut a, &mut b);
        assert_eq!(a, [4, 5, 6]);
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "choice must be 0 or 1")]
    fn select_rejects_bad_choice() {
        let _ = ct_select_u64(2, 0, 0);
    }
}
