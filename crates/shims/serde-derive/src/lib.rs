//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives serde traits on many plain-old-data types but never
//! actually serializes through a serde data format (there is no serde_json /
//! bincode in the dependency tree). The trait impls come from a blanket impl
//! in the sibling `serde` shim, so the derives here expand to nothing; they
//! exist only so `#[derive(Serialize, Deserialize)]` keeps compiling against
//! the same source as the real crates would.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Declares the `#[serde(...)]` helper
/// attribute so field annotations like `#[serde(skip)]` parse exactly as
/// they would against the real crate.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Declares the `#[serde(...)]` helper
/// attribute so field annotations like `#[serde(skip)]` parse exactly as
/// they would against the real crate.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
