//! Workspace umbrella crate: hosts the repo-level integration tests under
//! `tests/` and the examples under `examples/`. The actual implementation
//! lives in the `crates/` members; this crate only re-exports them so the
//! integration surface is importable from one place.

#![forbid(unsafe_code)]

pub use sanctorum_bench as bench;
pub use sanctorum_core as core;
pub use sanctorum_crypto as crypto;
pub use sanctorum_enclave as enclave;
pub use sanctorum_hal as hal;
pub use sanctorum_machine as machine;
pub use sanctorum_os as os;
pub use sanctorum_verifier as verifier;
