//! Event dispatch: the paper's Fig. 1 decision flow.
//!
//! Every machine event — interrupt, fault or SM API environment call — lands
//! in the monitor first. The monitor authenticates the caller from the hart
//! state it configured itself, validates the request against the security
//! policy, and either performs the API call, delegates a fault to the
//! enclave's own handler, or performs an asynchronous enclave exit (AEX) and
//! delegates the event to the OS.

use crate::api::{status, status_of, SmCall};
use crate::error::SmError;
use crate::monitor::{PublicField, SecurityMonitor};
use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::domain::{CoreId, DomainKind, EnclaveId};
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::guest::{REG_A0, REG_A1};
use sanctorum_machine::trap::TrapCause;

/// The monitor's decision about an event (the exit arcs of Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventOutcome {
    /// The event belongs to the OS. If it arrived while an enclave occupied
    /// the core, an AEX was performed first and `aex_performed` is set.
    DelegateToOs {
        /// The original trap cause to forward to the OS handler.
        cause: TrapCause,
        /// Whether an asynchronous enclave exit was performed.
        aex_performed: bool,
    },
    /// A synchronous fault is delegated to the enclave's registered fault
    /// handler; the hart stays inside the enclave with `pc = handler_pc`.
    DelegateToEnclave {
        /// The handler entry point installed on the hart.
        handler_pc: u64,
    },
    /// An SM API call was processed; the status/value registers have been
    /// written back into the hart (unless the call switched context).
    SmCallDone {
        /// Status code (see [`crate::api::status`]).
        status: u64,
        /// Call-specific return value.
        value: u64,
    },
    /// The event was an environment call that did not decode to a known SM
    /// call; it is treated as an illegal call and reported to the caller.
    IllegalCall,
}

impl SecurityMonitor {
    /// Handles a machine event on `core` (Fig. 1).
    ///
    /// The hart's `pending_trap` should already describe the event (the
    /// simulator sets it when `run_guest` stops); `cause` is passed
    /// explicitly so the harness can also inject events.
    pub fn handle_event(&self, core: CoreId, cause: TrapCause) -> EventOutcome {
        let domain = self.machine().hart(core).domain;
        match cause {
            TrapCause::EnvironmentCall => self.handle_ecall(core, domain),
            TrapCause::Interrupt(_) => {
                // The OS is always able to de-schedule an enclave by
                // interrupting it; the SM interposes to clean the core first.
                if domain.is_enclave() {
                    let _ = self.asynchronous_enclave_exit(core);
                    EventOutcome::DelegateToOs { cause, aex_performed: true }
                } else {
                    EventOutcome::DelegateToOs { cause, aex_performed: false }
                }
            }
            TrapCause::PageFault { .. }
            | TrapCause::IllegalInstruction
            | TrapCause::IsolationFault { .. } => {
                if let DomainKind::Enclave(_) = domain {
                    // Enclaves may register fault handlers for synchronous
                    // exceptions (demand paging inside evrange, emulation).
                    if cause.enclave_handleable() {
                        if let Some(tid) = self.thread_on_core(core) {
                            if let Ok(info) = self.thread_info(tid) {
                                if let Some(handler) = info.fault_handler_pc {
                                    let mut hart = self.machine().hart(core);
                                    hart.pc = handler;
                                    hart.pending_trap = None;
                                    return EventOutcome::DelegateToEnclave {
                                        handler_pc: handler,
                                    };
                                }
                            }
                        }
                    }
                    // No handler: the enclave cannot make progress; perform
                    // an AEX and let the OS decide what to do with it.
                    let _ = self.asynchronous_enclave_exit(core);
                    EventOutcome::DelegateToOs { cause, aex_performed: true }
                } else {
                    EventOutcome::DelegateToOs { cause, aex_performed: false }
                }
            }
        }
    }

    fn read_args(&self, core: CoreId) -> [u64; 6] {
        let hart = self.machine().hart(core);
        [
            hart.regs[10], hart.regs[11], hart.regs[12], hart.regs[13], hart.regs[14],
            hart.regs[15],
        ]
    }

    fn write_result(&self, core: CoreId, status_code: u64, value: u64) {
        let mut hart = self.machine().hart(core);
        hart.regs[REG_A0 as usize] = status_code;
        hart.regs[REG_A1 as usize] = value;
        hart.pending_trap = None;
    }

    fn handle_ecall(&self, core: CoreId, caller: DomainKind) -> EventOutcome {
        let args = self.read_args(core);
        let call = match SmCall::decode(&args) {
            Ok(call) => call,
            Err(_) => {
                self.write_result(core, status::INVALID, 0);
                return EventOutcome::IllegalCall;
            }
        };

        // Context-switching calls manage the hart themselves; everything else
        // writes (status, value) back to the caller's registers.
        let context_switches = matches!(call, SmCall::EnterEnclave { .. } | SmCall::ExitEnclave);
        let result: Result<u64, SmError> = self.perform_call(core, caller, call);
        match result {
            Ok(value) => {
                if !context_switches {
                    self.write_result(core, status::OK, value);
                }
                EventOutcome::SmCallDone { status: status::OK, value }
            }
            Err(err) => {
                let code = status_of(&err);
                self.write_result(core, code, 0);
                EventOutcome::SmCallDone { status: code, value: 0 }
            }
        }
    }

    fn perform_call(
        &self,
        core: CoreId,
        caller: DomainKind,
        call: SmCall,
    ) -> Result<u64, SmError> {
        match call {
            SmCall::CreateEnclave { evrange_base, evrange_len, region } => self
                .create_enclave(caller, evrange_base, evrange_len, &[region])
                .map(|eid| eid.as_u64()),
            SmCall::AllocatePageTable { eid } => {
                self.allocate_page_table(caller, eid).map(|root| root.as_u64())
            }
            SmCall::LoadPage { eid, vaddr, src, perms } => {
                self.load_page(caller, eid, vaddr, src, perms).map(|p| p.as_u64())
            }
            SmCall::LoadThread { eid, entry_pc } => {
                self.load_thread(caller, eid, entry_pc, None)
            }
            SmCall::InitEnclave { eid } => {
                self.init_enclave(caller, eid).map(|_| 0)
            }
            SmCall::DeleteEnclave { eid } => self.delete_enclave(caller, eid).map(|_| 0),
            SmCall::EnterEnclave { eid, tid } => self
                .enter_enclave(caller, eid, tid, core)
                .map(|entry| entry.entry_pc),
            SmCall::ExitEnclave => self.exit_enclave(caller, core).map(|c| c.count()),
            SmCall::BlockRegion { region } => self
                .block_resource(caller, crate::resource::ResourceId::Region(region))
                .map(|_| 0),
            SmCall::CleanRegion { region } => self
                .clean_resource(caller, crate::resource::ResourceId::Region(region))
                .map(|c| c.count()),
            SmCall::GrantRegion { region, owner_eid } => {
                let owner = if owner_eid == 0 {
                    DomainKind::Untrusted
                } else {
                    DomainKind::Enclave(EnclaveId::new(owner_eid))
                };
                self.grant_resource(caller, crate::resource::ResourceId::Region(region), owner)
                    .map(|_| 0)
            }
            SmCall::AcceptMail { mailbox, sender_id } => self
                .accept_mail(caller, mailbox as usize, sender_id)
                .map(|_| 0),
            SmCall::SendMail { recipient, msg_addr, msg_len } => {
                if msg_len as usize > crate::mailbox::MAX_MAIL_LEN {
                    return Err(SmError::InvalidArgument { reason: "mail message too large" });
                }
                // The caller must itself be able to read the message buffer.
                if !self.machine().check_access(caller, msg_addr, MemPerms::READ) {
                    return Err(SmError::Unauthorized);
                }
                let mut buf = vec![0u8; msg_len as usize];
                self.machine().phys_read(msg_addr, &mut buf)?;
                self.send_mail(caller, recipient, &buf).map(|_| 0)
            }
            SmCall::GetMail { mailbox, out_addr, out_len } => {
                if !self.machine().check_access(caller, out_addr, MemPerms::WRITE) {
                    return Err(SmError::Unauthorized);
                }
                let (message, _sender) = self.get_mail(caller, mailbox as usize)?;
                if message.len() as u64 > out_len {
                    return Err(SmError::InvalidArgument { reason: "output buffer too small" });
                }
                self.machine().phys_write(out_addr, &message)?;
                Ok(message.len() as u64)
            }
            SmCall::GetField { field } => {
                let field = match field {
                    0 => PublicField::AttestationPublicKey,
                    1 => PublicField::SmCertificate,
                    2 => PublicField::DevicePublicKey,
                    3 => PublicField::SmMeasurement,
                    _ => return Err(SmError::InvalidArgument { reason: "unknown field" }),
                };
                Ok(self.get_field(field).len() as u64)
            }
        }
    }

    /// Helper for callers driving the register ABI: writes an [`SmCall`] into
    /// the argument registers of `core` so the next `Ecall` guest op invokes
    /// it.
    pub fn stage_call(&self, core: CoreId, call: &SmCall) {
        let encoded = call.encode();
        let mut hart = self.machine().hart(core);
        for (i, value) in encoded.iter().enumerate() {
            hart.regs[10 + i] = *value;
        }
    }

    /// Helper reading back the (status, value) pair after an API ecall.
    pub fn read_call_result(&self, core: CoreId) -> (u64, u64) {
        let hart = self.machine().hart(core);
        (hart.regs[REG_A0 as usize], hart.regs[REG_A1 as usize])
    }

    /// Convenience: copies `data` into untrusted physical memory at `addr`
    /// (test/bench helper for staging mail buffers through the ABI).
    ///
    /// # Errors
    ///
    /// Fails if the destination is outside populated memory.
    pub fn stage_untrusted_buffer(&self, addr: PhysAddr, data: &[u8]) -> Result<(), SmError> {
        self.machine().phys_write(addr, data)?;
        Ok(())
    }
}
